"""Ablation — sampling-based approximation vs. exact incremental maintenance.

The paper's related-work section argues that randomized approximations
(source sampling) are the usual way around Brandes' cost but lose accuracy,
while the incremental framework keeps *exact* scores at a comparable or
lower per-update cost.  This ablation quantifies both halves on one graph:

* accuracy of source sampling at several sample sizes (Spearman, top-10
  overlap against the exact scores);
* cost of a sampled recomputation per update vs. the incremental repair.
"""

import time

from repro.algorithms import approximate_betweenness, vertex_betweenness
from repro.analysis import Variant, build_framework, compare_rankings, format_table
from repro.generators import addition_stream

from .conftest import stream_length

DATASET = "synthetic-10k"
SAMPLE_FRACTIONS = [0.05, 0.2, 0.5, 1.0]


def bench_ablation_approximation_accuracy(benchmark, datasets, report):
    graph = datasets.graph(DATASET)

    def run():
        exact = vertex_betweenness(graph)
        rows = []
        for fraction in SAMPLE_FRACTIONS:
            num_sources = max(1, int(fraction * graph.num_vertices))
            start = time.perf_counter()
            approx, _ = approximate_betweenness(graph, num_sources, rng=3)
            elapsed = time.perf_counter() - start
            comparison = compare_rankings(exact, approx, k=10)
            rows.append(
                [
                    f"{int(100 * fraction)}% sources",
                    num_sources,
                    f"{comparison.spearman:.3f}",
                    f"{comparison.top_k_overlap:.2f}",
                    f"{elapsed:.3f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    # Cost of the exact incremental repair per update, for context.
    framework = build_framework(graph, Variant.MO)
    updates = addition_stream(graph, stream_length(), rng=4)
    start = time.perf_counter()
    for update in updates:
        framework.apply(update)
    per_update = (time.perf_counter() - start) / len(updates)

    table = format_table(
        ["sampling", "sources", "spearman", "top-10 overlap", "seconds"], rows
    )
    table += (
        f"\nexact incremental repair: {per_update:.3f} s per update "
        f"(always spearman = 1.0)"
    )
    report("ablation_approximation", table)

    # Shape: accuracy improves with the sample size and full sampling is exact.
    spearmans = [float(row[2]) for row in rows]
    assert spearmans[-1] > 0.999
    assert spearmans[0] <= spearmans[-1] + 1e-9
