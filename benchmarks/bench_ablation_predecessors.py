"""Ablation — the predecessor-list memory optimisation (Section 3).

Two measurements back the paper's claim that dropping the predecessor lists
does not hurt (and in practice helps):

1. static Brandes with vs. without predecessor lists (the effect previously
   reported by Green & Bader [18] and reproduced here);
2. the incremental framework with (MP) vs. without (MO) predecessor-list
   maintenance, on the same update stream.
"""

from repro.analysis import Variant, format_table, measure_brandes_seconds, measure_stream_speedups
from repro.generators import addition_stream
from repro.utils.stats import median

from .conftest import stream_length

DATASETS = ["synthetic-10k", "facebook"]


def bench_ablation_static_predecessor_lists(benchmark, datasets, report):
    def run():
        rows = []
        for name in DATASETS:
            graph = datasets.graph(name)
            with_preds = measure_brandes_seconds(graph, keep_predecessors=True)
            without = measure_brandes_seconds(graph, keep_predecessors=False)
            rows.append(
                [name, f"{with_preds:.3f}", f"{without:.3f}",
                 f"{with_preds / without:.2f}x"]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["dataset", "Brandes w/ preds (s)", "Brandes w/o preds (s)", "ratio"], rows
    )
    report("ablation_static_predecessors", table)
    # Dropping the lists must not make the static algorithm meaningfully slower.
    for row in rows:
        assert float(row[3].rstrip("x")) > 0.75


def bench_ablation_incremental_predecessor_lists(benchmark, datasets, report):
    def run():
        rows = []
        for name in DATASETS:
            graph = datasets.graph(name)
            baseline = datasets.brandes_seconds(name)
            updates = addition_stream(graph, stream_length(), rng=71)
            mp = measure_stream_speedups(
                graph, updates, Variant.MP, label=name, baseline_seconds=baseline
            )
            mo = measure_stream_speedups(
                graph, updates, Variant.MO, label=name, baseline_seconds=baseline
            )
            rows.append(
                [name, round(median(mp.speedups), 1), round(median(mo.speedups), 1)]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["dataset", "MP median speedup", "MO median speedup"], rows
    )
    report("ablation_incremental_predecessors", table)
    # MO (no predecessor lists) is at least as fast as MP.  The expected gap
    # is 10-15 %, which sits inside wall-clock noise for short streams at
    # this scale, so only gross inversions fail the benchmark.
    for row in rows:
        assert row[2] >= row[1] * 0.7
