"""Ablation — the ``dd == 0`` source-skip optimisation (Sections 3.1 / 5.1).

Two questions:

1. what fraction of sources does a typical update skip (Proposition 3.1)?
   This fraction is the main reason the incremental repair is cheap, and the
   paper links it to the clustering coefficient of the graph;
2. how much disk traffic does the out-of-core store save by peeking at two
   distances instead of loading whole records for skipped sources?
"""

from repro.analysis import Variant, build_framework, format_table
from repro.generators import addition_stream
from repro.storage.codec import DISTANCE_DTYPE, record_size

from .conftest import stream_length

DATASETS = ["synthetic-10k", "wikielections", "dblp", "amazon"]


def bench_ablation_skip_fraction(benchmark, datasets, report):
    def run():
        rows = []
        for name in DATASETS:
            graph = datasets.graph(name)
            framework = build_framework(graph, Variant.MO)
            updates = addition_stream(graph, stream_length(), rng=81)
            skip_fractions = []
            for update in updates:
                result = framework.apply(update)
                skip_fractions.append(result.skip_fraction)
            average_skip = sum(skip_fractions) / len(skip_fractions)

            # Disk traffic with and without the skip fast path, per update.
            capacity = graph.num_vertices
            full_record = record_size(capacity)
            peek = 2 * DISTANCE_DTYPE.itemsize
            with_skip = graph.num_vertices * (
                average_skip * peek + (1 - average_skip) * (peek + 2 * full_record)
            )
            without_skip = graph.num_vertices * 2 * full_record
            rows.append(
                [
                    name,
                    f"{100 * average_skip:.1f}%",
                    f"{without_skip / 1e6:.2f}",
                    f"{with_skip / 1e6:.2f}",
                    f"{without_skip / max(with_skip, 1e-9):.2f}x",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["dataset", "sources skipped", "I/O w/o skip (MB)", "I/O with skip (MB)", "saving"],
        rows,
    )
    report("ablation_skip_fraction", table)

    # The skip optimisation always reduces projected I/O, and the highly
    # clustered dblp stand-in skips more sources than the amazon stand-in.
    by_name = {row[0]: row for row in rows}
    for row in rows:
        assert float(row[4].rstrip("x")) >= 1.0
    dblp_skip = float(by_name["dblp"][1].rstrip("%"))
    amazon_skip = float(by_name["amazon"][1].rstrip("%"))
    assert dblp_skip >= amazon_skip
