"""Batched update pipeline — per-update cost and I/O vs batch size.

The batched engine (``IncrementalBetweenness.apply_updates``) sweeps the
source store once per *batch* instead of once per update, so each non-skip
``BD[s]`` record is loaded and saved at most once however many updates the
batch carries.  This benchmark replays the same update stream at batch
sizes {1, 8, 64} for the in-memory (MO) and out-of-core (DO) configurations
and reports, per update: wall-clock time, record loads, and (for DO) disk
bytes moved.  Expected shape: record loads per update drop monotonically as
the batch grows, and the DO configuration — whose per-update cost is
dominated by those loads — gets the larger wall-clock win.
"""

from repro.analysis import Variant, build_framework, format_table
from repro.core.updates import batches
from repro.generators import addition_stream

BATCH_SIZES = [1, 8, 64]
STREAM_EDGES = 64  # enough to fill the largest batch exactly once


def _measure(graph, variant, size):
    """Replay the stream in batches of ``size``; return per-update metrics."""
    framework = build_framework(graph, variant)
    updates = addition_stream(graph, STREAM_EDGES, rng=23)
    total_seconds = 0.0
    total_loads = 0
    total_peeks = 0
    try:
        for chunk in batches(updates, size):
            result = framework.apply_updates(chunk)
            total_seconds += result.elapsed_seconds or 0.0
            total_loads += result.sources_loaded
            total_peeks += result.sources_peek_skipped
        store = framework.store
        bytes_moved = (
            store.bytes_read + store.bytes_written
            if hasattr(store, "bytes_read")
            else None
        )
    finally:
        framework.store.close()
    count = len(updates)
    return {
        "seconds_per_update": total_seconds / count,
        "loads_per_update": total_loads / count,
        "peeks_per_update": total_peeks / count,
        "bytes_per_update": None if bytes_moved is None else bytes_moved / count,
    }


def bench_batched_updates(benchmark, datasets, report):
    def run():
        output = {}
        for name in ("synthetic-10k", "facebook"):
            graph = datasets.graph(name)
            for variant in (Variant.MO, Variant.DO):
                for size in BATCH_SIZES:
                    output[(name, variant, size)] = _measure(graph, variant, size)
        return output

    output = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (name, variant, size), metrics in output.items():
        rows.append(
            [
                name,
                variant.value,
                size,
                f"{metrics['seconds_per_update'] * 1000:.2f}",
                f"{metrics['loads_per_update']:.1f}",
                f"{metrics['peeks_per_update']:.1f}",
                (
                    "-"
                    if metrics["bytes_per_update"] is None
                    else f"{metrics['bytes_per_update'] / 1024:.0f}"
                ),
            ]
        )
    table = format_table(
        ["dataset", "variant", "batch", "ms / update", "BD loads / update",
         "peek-skipped / update", "KiB I/O / update"],
        rows,
    )
    report("batched_updates", table)

    # Shape check: one sweep per batch can only merge record loads, so the
    # per-update load count must fall (weakly) as the batch size grows.
    for name in ("synthetic-10k", "facebook"):
        for variant in (Variant.MO, Variant.DO):
            loads = [
                output[(name, variant, size)]["loads_per_update"]
                for size in BATCH_SIZES
            ]
            assert all(
                later <= earlier + 1e-9 for earlier, later in zip(loads, loads[1:])
            ), (name, variant, loads)
