"""Figure 5 — CDF of speedup for the MP / MO / DO variants (additions).

The paper's findings to reproduce in shape:

* MO (in memory, no predecessor lists) is the fastest variant — removing the
  predecessor lists does not slow the repair down, it speeds it up;
* DO (out of core) is slower than MO because every non-skipped source pays
  file I/O, but it still beats from-scratch recomputation comfortably;
* speedups grow with the graph size.
"""

from repro.analysis import Variant, format_table, measure_stream_speedups
from repro.generators import addition_stream
from repro.utils.stats import median

from .conftest import stream_length

DATASETS = ["synthetic-1k", "synthetic-10k", "wikielections", "facebook"]


def bench_fig5_variant_cdfs(benchmark, datasets, report):
    def run():
        series = {}
        for name in DATASETS:
            graph = datasets.graph(name)
            baseline = datasets.brandes_seconds(name)
            updates = addition_stream(graph, stream_length(), rng=41)
            for variant in (Variant.MP, Variant.MO, Variant.DO):
                series[(name, variant)] = measure_stream_speedups(
                    graph, updates, variant, label=name, baseline_seconds=baseline
                )
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = []
    rows = []
    for (name, variant), data in series.items():
        rows.append(
            [name, variant.value, round(median(data.speedups), 1),
             round(min(data.speedups), 1), round(max(data.speedups), 1)]
        )
        cdf_points = ", ".join(f"({value:.1f}, {frac:.2f})" for value, frac in data.cdf())
        lines.append(f"{name} [{variant.value}] CDF: {cdf_points}")
    table = format_table(["dataset", "variant", "median", "min", "max"], rows)
    report("fig5_variants_cdf", table + "\n\n" + "\n".join(lines))

    for name in DATASETS:
        mo = median(series[(name, Variant.MO)].speedups)
        mp = median(series[(name, Variant.MP)].speedups)
        do = median(series[(name, Variant.DO)].speedups)
        # MO beats MP (predecessor-list maintenance is pure overhead) and DO
        # pays an I/O penalty relative to MO.  Both still beat recomputation.
        # At the scaled-down sizes used here the MP/MO gap is only ~10-15 %,
        # which is within run-to-run wall-clock noise for 10-edge streams, so
        # the assertion only flags gross inversions; the representative
        # numbers are recorded in EXPERIMENTS.md.
        assert mo >= mp * 0.7, f"{name}: MO ({mo}) unexpectedly slower than MP ({mp})"
        assert do <= mo * 1.1, f"{name}: DO ({do}) unexpectedly faster than MO ({mo})"
        assert do > 1.0
