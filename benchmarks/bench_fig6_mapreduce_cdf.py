"""Figure 6 — CDF of speedup of the DO/partitioned execution on a (simulated)
MapReduce cluster, for additions and removals, synthetic and real graphs.

As in the paper, the comparison is between Brandes' single-machine run time
and the *cumulative* execution time across all mappers (sum of per-partition
times plus the merge), so the curves show algorithmic savings rather than
parallel wall-clock savings (those are Figure 7's subject).
"""

from repro.core.updates import additions, removals
from repro.analysis import format_table
from repro.generators import addition_stream, removal_stream
from repro.parallel import MapReduceBetweenness
from repro.utils.stats import empirical_cdf, median

from .conftest import stream_length

SYNTHETIC = ["synthetic-1k", "synthetic-10k"]
REAL = ["wikielections", "facebook"]

#: Sources per mapper (the paper assigns 1k sources per mapper).
SOURCES_PER_MAPPER = 100


def _run_stream(graph, updates, baseline_seconds):
    num_mappers = max(1, graph.num_vertices // SOURCES_PER_MAPPER)
    cluster = MapReduceBetweenness(graph, num_mappers=num_mappers)
    speedups = []
    for update in updates:
        report = cluster.apply(update)
        speedups.append(baseline_seconds / max(report.cumulative_seconds, 1e-9))
    return num_mappers, speedups


def bench_fig6_mapreduce_speedup_cdfs(benchmark, datasets, report):
    def run():
        results = {}
        for name in SYNTHETIC + REAL:
            graph = datasets.graph(name)
            baseline = datasets.brandes_seconds(name)
            add_updates = addition_stream(graph, stream_length(), rng=51)
            rem_updates = removal_stream(graph, stream_length(), rng=52)
            mappers, add_speedups = _run_stream(graph, add_updates, baseline)
            _, rem_speedups = _run_stream(graph, rem_updates, baseline)
            results[name] = (mappers, add_speedups, rem_speedups)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    lines = []
    for name, (mappers, add_speedups, rem_speedups) in results.items():
        rows.append(
            [name, mappers, round(median(add_speedups), 1), round(median(rem_speedups), 1)]
        )
        add_cdf = ", ".join(f"({v:.1f}, {f:.2f})" for v, f in empirical_cdf(add_speedups))
        rem_cdf = ", ".join(f"({v:.1f}, {f:.2f})" for v, f in empirical_cdf(rem_speedups))
        lines.append(f"{name} additions CDF: {add_cdf}")
        lines.append(f"{name} removals  CDF: {rem_cdf}")
    table = format_table(
        ["dataset", "mappers", "median speedup (add)", "median speedup (remove)"], rows
    )
    report("fig6_mapreduce_cdf", table + "\n\n" + "\n".join(lines))

    by_name = {row[0]: row for row in rows}
    # Shape: larger synthetic graphs enjoy larger median speedups, and every
    # dataset beats from-scratch recomputation for both update kinds.
    assert by_name["synthetic-10k"][2] > by_name["synthetic-1k"][2]
    assert all(row[2] > 1 and row[3] > 1 for row in rows)
