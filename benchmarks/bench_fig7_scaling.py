"""Figure 7 — strong scaling (a-b) and weak scaling (c-d).

The per-source repair cost ``tS`` and merge cost ``tM`` are measured on one
machine; the cluster wall-clock for ``p`` mappers is then given by the
paper's model ``tU = tS * n/p + tM`` (Section 5.3).  Expected shapes:

* strong scaling: per-update wall-clock time drops almost linearly as the
  number of mappers grows, independently of the number of streamed edges;
* weak scaling: the total time for a workload proportional to the number of
  mappers stays flat.

A second benchmark replaces the model with measurement: the same stream is
replayed on the real process-parallel executor
(:class:`repro.parallel.ProcessParallelBetweenness`) for 1/2/4 worker
processes.  The per-worker *CPU* time per update — the measured counterpart
of ``tS * n/p`` — must shrink as workers are added even when this host has
fewer physical cores than workers (wall-clock speedup additionally requires
real cores; the report shows both).
"""

from repro.analysis import build_framework, Variant, format_table
from repro.generators import addition_stream
from repro.parallel import (
    OnlineCapacityModel,
    ProcessParallelBetweenness,
    strong_scaling,
    weak_scaling,
)
from repro.storage.buffers import shm_available

from .conftest import stream_length

MAPPER_COUNTS = [1, 2, 4, 8, 16, 32]
EXECUTOR_WORKER_COUNTS = [1, 2, 4]


def _fit_capacity_model(graph, sample_updates):
    """Measure tS and tM on one machine and return the capacity model."""
    framework = build_framework(graph, Variant.MO)
    per_source_times = []
    for update in sample_updates:
        result = framework.apply(update)
        per_source_times.append(
            (result.elapsed_seconds or 0.0) / max(1, result.sources_processed)
        )
    time_per_source = sum(per_source_times) / len(per_source_times)
    # Merge cost: proportional to the number of score entries to aggregate.
    merge_time = 1e-7 * (graph.num_vertices + graph.num_edges)
    return OnlineCapacityModel(
        time_per_source=time_per_source,
        num_sources=graph.num_vertices,
        merge_time=merge_time,
    )


def bench_fig7_strong_and_weak_scaling(benchmark, datasets, report):
    def run():
        output = {}
        for name in ("synthetic-10k", "synthetic-100k"):
            graph = datasets.graph(name)
            updates = addition_stream(graph, stream_length(), rng=61)
            model = _fit_capacity_model(graph, updates)
            strong = {
                edges: strong_scaling(model, MAPPER_COUNTS, num_updates=edges)
                for edges in (100, 200, 300)
            }
            weak = {
                ratio: weak_scaling(model, MAPPER_COUNTS, updates_per_worker_ratio=ratio)
                for ratio in (1, 2, 3)
            }
            output[name] = (model, strong, weak)
        return output

    output = benchmark.pedantic(run, rounds=1, iterations=1)

    sections = []
    for name, (model, strong, weak) in output.items():
        rows = []
        for edges, curve in strong.items():
            for point in curve:
                rows.append(
                    ["strong", edges, point.num_workers,
                     f"{point.seconds_per_update:.4f}", f"{point.total_seconds:.2f}"]
                )
        for ratio, curve in weak.items():
            for point in curve.values():
                rows.append(
                    ["weak", f"r={ratio}", point.num_workers,
                     f"{point.seconds_per_update:.4f}", f"{point.total_seconds:.2f}"]
                )
        table = format_table(
            ["mode", "edges / ratio", "mappers", "s per update", "total s"], rows
        )
        sections.append(
            f"{name}: tS={model.time_per_source:.6f}s, n={model.num_sources}, "
            f"tM={model.merge_time:.6f}s\n{table}"
        )
    report("fig7_scaling", "\n\n".join(sections))

    # Shape checks: strong scaling decreases wall-clock per update nearly
    # linearly; weak scaling keeps the total roughly flat.
    for name, (model, strong, weak) in output.items():
        curve = strong[100]
        assert curve[0].seconds_per_update > curve[-1].seconds_per_update
        ideal = curve[0].seconds_per_update / MAPPER_COUNTS[-1]
        assert curve[-1].seconds_per_update <= 3 * ideal + model.merge_time
        totals = [point.total_seconds for point in weak[2].values()]
        assert max(totals) / min(totals) < 1.5


def bench_fig7_executor_measured(benchmark, datasets, report):
    """Strong scaling measured on real worker processes (no capacity model)."""

    planes = ("heap", "shm") if shm_available() else ("heap",)

    def run():
        graph = datasets.graph("synthetic-10k")
        updates = addition_stream(graph, min(stream_length(), 10), rng=61)
        measurements = {}
        scores = {}
        for workers in EXECUTOR_WORKER_COUNTS:
            for plane in planes:
                with ProcessParallelBetweenness(
                    graph, num_workers=workers, shared_memory=plane == "shm"
                ) as cluster:
                    reports = [cluster.apply(update) for update in updates]
                    payload = cluster.batch_payload_bytes
                    if workers == EXECUTOR_WORKER_COUNTS[-1]:
                        scores[plane] = cluster.vertex_betweenness()
                    measurements[workers, plane] = {
                        "init_wall": cluster.init_wall_clock_seconds,
                        "cpu_per_update": sum(
                            r.max_cpu_seconds for r in reports
                        ) / len(reports),
                        "wall_per_update": sum(
                            r.wall_clock_seconds for r in reports
                        ) / len(reports),
                        "driver_per_update": sum(
                            r.elapsed_seconds for r in reports
                        ) / len(reports),
                        "payload_per_update": sum(payload) / len(payload),
                    }
        return measurements, scores

    measurements, scores = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [
            workers,
            plane,
            f"{m['init_wall']:.3f}",
            f"{m['cpu_per_update'] * 1000:.2f}",
            f"{m['wall_per_update'] * 1000:.2f}",
            f"{m['driver_per_update'] * 1000:.2f}",
            f"{m['payload_per_update']:.0f}",
        ]
        for (workers, plane), m in measurements.items()
    ]
    table = format_table(
        ["workers", "plane", "init wall s", "max CPU ms / update",
         "max wall ms / update", "driver ms / update", "payload B / update"],
        rows,
    )
    report("fig7_executor_measured", table)

    # The slowest worker's CPU time per update must shrink with the source
    # partition — this is measured tS * n/p, independent of host core count.
    cpu_1 = measurements[1, "heap"]["cpu_per_update"]
    cpu_4 = measurements[4, "heap"]["cpu_per_update"]
    assert cpu_4 < cpu_1, (cpu_1, cpu_4)

    if "shm" in planes:
        # The descriptor plane must dispatch fewer bytes than pickled
        # update lists and change nothing about the result.
        heap_payload = measurements[4, "heap"]["payload_per_update"]
        shm_payload = measurements[4, "shm"]["payload_per_update"]
        assert shm_payload < heap_payload, (heap_payload, shm_payload)
        assert scores["shm"] == scores["heap"]
