"""Figure 8 — inter-arrival time of new edges vs. betweenness update time.

Replays the tail of an evolving graph's edge history (synthetic exponential
timestamps stand in for the real KONECT arrival times, see DESIGN.md) and
compares, edge by edge, the arrival gap against the time the framework needs
to refresh the scores with 1 and with many mappers.  Expected shape: with a
single mapper many updates finish after the next arrival; adding mappers
pushes the update time below the inter-arrival time for almost all edges.
"""

from repro.analysis import format_table
from repro.generators import load_dataset
from repro.parallel import simulate_online_updates

from .conftest import scaled_size, stream_length

DATASETS = ["slashdot", "facebook"]
MAPPER_COUNTS = [1, 10, 50]

#: Arrival times are compressed so that a single worker cannot keep up (the
#: real graphs arrive orders of magnitude faster than a scaled-down Python
#: run; compressing the synthetic timestamps recreates that pressure).
TIME_SCALE = 0.002


def bench_fig8_online_updates(benchmark, report):
    def run():
        output = {}
        for name in DATASETS:
            evolving = load_dataset(
                name, num_vertices=scaled_size(name), rng=7, as_evolving=True
            )
            replay_length = max(stream_length(), 10)
            prefix = evolving.num_edges - replay_length
            base = evolving.base_graph(prefix)
            future = evolving.future_updates(prefix)
            interarrivals = evolving.interarrival_times(prefix)
            per_mappers = {
                mappers: simulate_online_updates(
                    base, future, num_mappers=mappers, time_scale=TIME_SCALE
                )
                for mappers in MAPPER_COUNTS
            }
            output[name] = (interarrivals, per_mappers)
        return output

    output = benchmark.pedantic(run, rounds=1, iterations=1)

    sections = []
    for name, (interarrivals, per_mappers) in output.items():
        rows = []
        for mappers, result in per_mappers.items():
            rows.append(
                [
                    name,
                    mappers,
                    result.num_updates,
                    f"{100 * result.missed_fraction:.1f}%",
                    f"{result.average_delay:.3f}",
                ]
            )
        table = format_table(
            ["dataset", "mappers", "edges", "missed", "avg delay (s)"], rows
        )
        series = ", ".join(f"{dt * TIME_SCALE:.4f}" for dt in interarrivals[:20])
        sections.append(f"{table}\ninter-arrival times (first 20, scaled): {series}")
    report("fig8_online_arrival", "\n\n".join(sections))

    for name, (_, per_mappers) in output.items():
        missed = [per_mappers[m].missed_fraction for m in MAPPER_COUNTS]
        # More mappers never miss more updates, and the largest configuration
        # keeps up with (nearly) the whole stream.
        assert missed[0] >= missed[-1]
        assert missed[-1] <= 0.5
