"""Figure 9 — Girvan–Newman community detection speedup.

The paper's use case: repeatedly remove the edge with the highest edge
betweenness.  With the incremental framework each removal costs a partial
repair instead of a full recomputation, giving an order-of-magnitude
speedup that grows with the graph size.  The benchmark measures, for every
removal step, the ratio between a from-scratch Brandes recomputation and the
incremental repair, as a function of how many top-betweenness edges have
been removed so far (the x-axis of Figure 9).
"""

import time

from repro.analysis import format_table
from repro.applications.girvan_newman import girvan_newman
from repro.core import IncrementalBetweenness
from repro.generators import synthetic_social_graph
from repro.utils.stats import median

from .conftest import scaled_size, stream_length

SIZES = {
    "synthetic-1k": None,   # filled from scaled_size at run time
    "synthetic-10k": None,
    "synthetic-100k": None,
}


def _girvan_newman_speedups(graph, num_removals, baseline_seconds):
    """Per-removal speedup of incremental EBC maintenance over recomputation."""
    framework = IncrementalBetweenness(graph)
    working = graph.copy()
    speedups = []
    for _ in range(num_removals):
        if working.num_edges == 0:
            break
        edge_scores = framework.edge_betweenness()
        target = max(edge_scores.items(), key=lambda item: (item[1], repr(item[0])))[0]
        start = time.perf_counter()
        framework.remove_edge(*target)
        elapsed = time.perf_counter() - start
        working.remove_edge(*target)
        speedups.append(baseline_seconds / max(elapsed, 1e-9))
    return speedups


def bench_fig9_girvan_newman_speedup(benchmark, datasets, report):
    num_removals = max(2 * stream_length(), 20)

    def run():
        output = {}
        for name in SIZES:
            graph = datasets.graph(name)
            baseline = datasets.brandes_seconds(name)
            output[name] = _girvan_newman_speedups(graph, num_removals, baseline)
        return output

    output = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    lines = []
    for name, speedups in output.items():
        rows.append(
            [name, len(speedups), round(median(speedups), 1),
             round(min(speedups), 1), round(max(speedups), 1)]
        )
        series = ", ".join(f"{value:.1f}" for value in speedups)
        lines.append(f"{name}: speedup per removal step: {series}")
    table = format_table(
        ["dataset", "edges removed", "median speedup", "min", "max"], rows
    )
    report("fig9_girvan_newman", table + "\n\n" + "\n".join(lines))

    by_name = {row[0]: row for row in rows}
    # Shape: the speedup is substantial everywhere and the larger stand-ins
    # beat the smallest one.  (Per-size monotonicity is noisy at this scale
    # because removing the globally most-central edge triggers the largest
    # possible structural repairs; the paper's trend is asserted on the best
    # of the two larger sizes.)
    assert all(row[2] > 1 for row in rows)
    larger = max(by_name["synthetic-10k"][2], by_name["synthetic-100k"][2])
    assert larger > by_name["synthetic-1k"][2]


def bench_fig9_hierarchy_consistency(benchmark, datasets):
    """The incremental and recompute drivers must build the same dendrogram."""
    graph = synthetic_social_graph(max(40, scaled_size("synthetic-1k") // 3), rng=5)

    def run():
        incremental = girvan_newman(graph, max_removals=12, use_incremental=True)
        recompute = girvan_newman(graph, max_removals=12, use_incremental=False)
        return incremental, recompute

    incremental, recompute = benchmark.pedantic(run, rounds=1, iterations=1)
    assert incremental.removed_edges == recompute.removed_edges
