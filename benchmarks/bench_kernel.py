"""Array kernel vs dict backend: bootstrap and batched update sweeps.

Measures the two compute backends of :class:`IncrementalBetweenness` on the
same random graph and the same update stream, in both storage
configurations:

* **bootstrap (MO)** — Step 1 (modified Brandes over every source).  The
  array backend runs the vectorized CSR kernel; the dict backend runs the
  scalar label-keyed implementation.  The speedup here is the acceptance
  bar: the arrays backend must be at least ``MIN_BOOTSTRAP_SPEEDUP`` times
  faster, *and* both backends must return bit-identical scores.
* **batched updates (MO)** — Step 2 against the in-RAM stores.  The dict
  backend's in-memory store hands out live dictionaries (no
  serialisation), so this measures pure repair-loop cost; the array
  backend pays a small adapter overhead for running the shared repair code
  over column views and lands near parity.
* **batched updates (DO)** — Step 2 against the on-disk columnar store,
  the configuration the kernel targets: the dict backend decodes and
  re-encodes every loaded record, while the array kernel repairs the
  store's mmap column views in place (zero copies, zero dictionaries).

Results are printed and written to ``BENCH_kernel.json`` at the repository
root, seeding the cross-PR performance trajectory.

Run directly (``PYTHONPATH=src python benchmarks/bench_kernel.py``) for the
full 2000-vertex configuration, or with ``--smoke`` (CI) for a small graph
and a relaxed speedup bar.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import tempfile
import time
from pathlib import Path

from repro.core import jit
from repro.core.framework import IncrementalBetweenness
from repro.core.updates import EdgeUpdate, batches
from repro.graph import Graph
from repro.storage import DiskBDStore

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_kernel.json"

#: Acceptance bar: array bootstrap must beat the dict bootstrap by this
#: factor on the full configuration (2k-vertex random graph).
MIN_BOOTSTRAP_SPEEDUP = 5.0
#: Relaxed bar for the CI smoke configuration (vectorization amortizes
#: less on small graphs).
MIN_BOOTSTRAP_SPEEDUP_SMOKE = 1.5
#: Acceptance bar for the vectorized update sweep: the in-memory batched
#: MO sweep must beat the dict backend by this factor on the full
#: undirected configuration, and by the directed bar on the directed one.
MIN_SWEEP_SPEEDUP = 3.0
MIN_SWEEP_SPEEDUP_DIRECTED = 1.5
#: Smoke floors — the cohort sweep reaches ~2.9x (undirected) / ~2.8x
#: (directed) even on the tiny CI configuration, so a floor halfway to
#: parity catches a fallback to the per-source solo path (~1.0x) while
#: leaving ample headroom for scheduler noise.
MIN_SWEEP_SPEEDUP_SMOKE = 1.5
MIN_SWEEP_SPEEDUP_DIRECTED_SMOKE = 1.2

#: Keys the flat kernel reports in ``phase_timings`` (plus the derived
#: ``other`` bucket for snapshot compilation, peeks and write-backs).
PHASE_KEYS = ("classify", "repair", "accumulate")

FULL = {
    "vertices": 2000,
    "directed_vertices": 1000,
    "extra_edges_per_vertex": 3,
    "updates": 40,
    "batch_size": 10,
}
SMOKE = {
    "vertices": 300,
    "directed_vertices": 150,
    "extra_edges_per_vertex": 3,
    "updates": 16,
    "batch_size": 4,
}


def build_graph(
    num_vertices: int, extra_edges_per_vertex: int, seed: int, directed: bool = False
) -> Graph:
    """Connected random graph: spanning tree plus random extra edges.

    The directed variant orients the same construction (tree arcs point
    child -> parent, extras in the drawn order), giving both orientations
    comparable size and density.
    """
    rng = random.Random(seed)
    graph = Graph(directed=directed)
    graph.add_vertex(0)
    for vertex in range(1, num_vertices):
        graph.add_edge(vertex, rng.randrange(vertex))
    added = 0
    while added < extra_edges_per_vertex * num_vertices:
        u, v = rng.sample(range(num_vertices), 2)
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
            added += 1
    return graph


def build_stream(graph: Graph, num_updates: int, seed: int):
    """Mixed addition/removal stream valid against ``graph``."""
    rng = random.Random(seed)
    edges = set(graph.edge_list())
    vertices = graph.vertex_list()
    directed = graph.directed
    stream = []
    for _ in range(num_updates):
        if rng.random() < 0.4 and len(edges) > 1:
            edge = rng.choice(sorted(edges))
            edges.discard(edge)
            stream.append(EdgeUpdate.removal(*edge))
        else:
            while True:
                u, v = rng.sample(vertices, 2)
                key = (u, v) if directed or u <= v else (v, u)
                if key not in edges:
                    edges.add(key)
                    stream.append(EdgeUpdate.addition(u, v))
                    break
    return stream


def identical_scores(a: IncrementalBetweenness, b: IncrementalBetweenness) -> bool:
    """Bit-for-bit equality of both score mappings (no tolerance)."""
    return (
        a.vertex_betweenness() == b.vertex_betweenness()
        and a.edge_betweenness() == b.edge_betweenness()
    )


def bench_orientation(graph: Graph, stream, batch_size: int, label: str = "") -> dict:
    """Bootstrap + batched MO sweep for both backends on one graph/stream.

    Shared by the undirected and directed configurations so both
    orientations in ``BENCH_kernel.json`` are always measured the same way
    (same rounds policy, same bit-identity checks).
    """
    prefix = f"{label} " if label else ""
    frameworks = {}
    bootstrap = {}
    # The dict bootstrap runs long enough (~tens of seconds) for scheduler
    # noise to amortize; the short array bootstrap is measured best-of-3 so
    # a single noisy slot cannot distort the ratio.
    rounds = {"dicts": 1, "arrays": 3}
    for backend in ("dicts", "arrays"):
        times = []
        for _ in range(rounds[backend]):
            start = time.perf_counter()
            frameworks[backend] = IncrementalBetweenness(graph, backend=backend)
            times.append(time.perf_counter() - start)
        bootstrap[backend] = min(times)
        print(f"{prefix}bootstrap[{backend:6s}]: {bootstrap[backend]:8.3f}s")
    bootstrap_identical = identical_scores(frameworks["arrays"], frameworks["dicts"])
    bootstrap_speedup = bootstrap["dicts"] / bootstrap["arrays"]
    print(
        f"{prefix}bootstrap speedup: {bootstrap_speedup:.1f}x  "
        f"bit-identical: {bootstrap_identical}"
    )

    sweep = {}
    kernel = frameworks["arrays"]._kernel
    for backend in ("dicts", "arrays"):
        framework = frameworks[backend]
        if backend == "arrays":
            kernel.phase_timings = {}
        start = time.perf_counter()
        for chunk in batches(iter(stream), batch_size):
            framework.apply_updates(chunk)
        sweep[backend] = time.perf_counter() - start
        print(f"{prefix}batched updates[MO {backend:6s}]: {sweep[backend]:8.3f}s")
    phases = {key: kernel.phase_timings.get(key, 0.0) for key in PHASE_KEYS}
    kernel.phase_timings = None
    # Everything outside the three flat phases: snapshot compilation, the
    # vectorized classification peek, record loads and write-backs.
    phases["other"] = max(0.0, sweep["arrays"] - sum(phases.values()))
    print(
        f"{prefix}arrays sweep phases: "
        + "  ".join(f"{key}={value:.3f}s" for key, value in phases.items())
    )
    sweep_identical = identical_scores(frameworks["arrays"], frameworks["dicts"])
    sweep_speedup = sweep["dicts"] / sweep["arrays"]
    print(
        f"{prefix}batched-update (MO) speedup: {sweep_speedup:.1f}x  "
        f"bit-identical after stream: {sweep_identical}"
    )
    return {
        "graph": {"vertices": graph.num_vertices, "edges": graph.num_edges},
        "bootstrap": {
            "dicts_seconds": bootstrap["dicts"],
            "arrays_seconds": bootstrap["arrays"],
            "speedup": bootstrap_speedup,
            "bit_identical": bootstrap_identical,
        },
        "batched_updates_memory": {
            "dicts_seconds": sweep["dicts"],
            "arrays_seconds": sweep["arrays"],
            "speedup": sweep_speedup,
            "bit_identical": sweep_identical,
            "phases_seconds": phases,
        },
    }


def run(config: dict, smoke: bool) -> dict:
    graph = build_graph(
        config["vertices"], config["extra_edges_per_vertex"], seed=11
    )
    stream = build_stream(graph, config["updates"], seed=13)
    print(
        f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges; "
        f"stream: {len(stream)} updates in batches of {config['batch_size']}"
    )
    main_report = bench_orientation(graph, stream, config["batch_size"])

    disk_sweep = {}
    disk_frameworks = {}
    with tempfile.TemporaryDirectory(prefix="bench-kernel-") as tmp:
        for backend in ("dicts", "arrays"):
            store = DiskBDStore(
                graph.vertex_list(), path=Path(tmp) / f"bd-{backend}.bin"
            )
            disk_frameworks[backend] = IncrementalBetweenness(
                graph, store=store, backend=backend
            )
            start = time.perf_counter()
            for chunk in batches(iter(stream), config["batch_size"]):
                disk_frameworks[backend].apply_updates(chunk)
            disk_sweep[backend] = time.perf_counter() - start
            print(f"batched updates[DO {backend:6s}]: {disk_sweep[backend]:8.3f}s")
        disk_identical = identical_scores(
            disk_frameworks["arrays"], disk_frameworks["dicts"]
        )
        for backend in ("dicts", "arrays"):
            disk_frameworks[backend].store.close()
    disk_speedup = disk_sweep["dicts"] / disk_sweep["arrays"]
    print(
        f"batched-update (DO) speedup: {disk_speedup:.1f}x  "
        f"bit-identical after stream: {disk_identical}"
    )

    directed_report = run_directed(config)

    return {
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "jit": {"available": jit.jit_available(), "enabled": jit.jit_enabled()},
        "graph": main_report["graph"],
        "directed": directed_report,
        "stream": {
            "updates": len(stream),
            "batch_size": config["batch_size"],
        },
        "bootstrap": main_report["bootstrap"],
        "batched_updates_memory": main_report["batched_updates_memory"],
        "batched_updates_disk": {
            "dicts_seconds": disk_sweep["dicts"],
            "arrays_seconds": disk_sweep["arrays"],
            "speedup": disk_speedup,
            "bit_identical": disk_identical,
        },
    }


def run_directed(config: dict) -> dict:
    """Directed orientation: bootstrap + batched MO sweep, both backends.

    Directed workloads are an extension beyond the paper's experiments, so
    no speedup bar is enforced here — the hard requirement is that both
    backends stay bit-identical on the directed stream, mirroring the
    undirected acceptance.  Timings land in ``BENCH_kernel.json`` next to
    the undirected ones so the trajectory covers both orientations.
    """
    graph = build_graph(
        config["directed_vertices"],
        config["extra_edges_per_vertex"],
        seed=17,
        directed=True,
    )
    stream = build_stream(graph, config["updates"], seed=19)
    print(
        f"\ndirected graph: {graph.num_vertices} vertices, "
        f"{graph.num_edges} arcs; stream: {len(stream)} updates in "
        f"batches of {config['batch_size']}"
    )
    return bench_orientation(
        graph, stream, config["batch_size"], label="directed"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI configuration (relaxed speedup bar)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=OUTPUT_PATH,
        help=f"where to write the JSON report (default: {OUTPUT_PATH})",
    )
    args = parser.parse_args(argv)

    config = SMOKE if args.smoke else FULL
    report = run(config, smoke=args.smoke)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")

    minimum = MIN_BOOTSTRAP_SPEEDUP_SMOKE if args.smoke else MIN_BOOTSTRAP_SPEEDUP
    assert report["bootstrap"]["bit_identical"], (
        "array and dict backends returned different bootstrap scores"
    )
    assert report["batched_updates_memory"]["bit_identical"], (
        "array and dict backends diverged over the update stream (MO)"
    )
    assert report["batched_updates_disk"]["bit_identical"], (
        "array and dict backends diverged over the update stream (DO)"
    )
    assert report["directed"]["bootstrap"]["bit_identical"], (
        "array and dict backends returned different directed bootstrap scores"
    )
    assert report["directed"]["batched_updates_memory"]["bit_identical"], (
        "array and dict backends diverged over the directed update stream"
    )
    speedup = report["bootstrap"]["speedup"]
    assert speedup >= minimum, (
        f"array bootstrap only {speedup:.2f}x faster than dicts "
        f"(bar: {minimum}x)"
    )
    sweep_bar = MIN_SWEEP_SPEEDUP_SMOKE if args.smoke else MIN_SWEEP_SPEEDUP
    directed_bar = (
        MIN_SWEEP_SPEEDUP_DIRECTED_SMOKE if args.smoke else MIN_SWEEP_SPEEDUP_DIRECTED
    )
    sweep_speedup = report["batched_updates_memory"]["speedup"]
    assert sweep_speedup >= sweep_bar, (
        f"in-memory batched sweep only {sweep_speedup:.2f}x faster than "
        f"dicts (bar: {sweep_bar}x)"
    )
    directed_speedup = report["directed"]["batched_updates_memory"]["speedup"]
    assert directed_speedup >= directed_bar, (
        f"directed in-memory batched sweep only {directed_speedup:.2f}x "
        f"faster than dicts (bar: {directed_bar}x)"
    )
    print(
        f"OK: bootstrap {speedup:.1f}x >= {minimum}x, "
        f"sweep {sweep_speedup:.1f}x >= {sweep_bar}x "
        f"(directed {directed_speedup:.1f}x >= {directed_bar}x), "
        "scores bit-identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
