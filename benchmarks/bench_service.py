"""Service front end under load: ingest throughput, read latency, SSE fan-out.

A raw-asyncio load generator against a real :class:`ServiceServer` on a
loopback socket (the dependency-free transport — no HTTP library in the
measurement path), reporting:

* **sustained updates/sec** — concurrent writer clients posting edge-update
  batches to one session; the single-writer worker serializes them, so this
  is the end-to-end ingest rate including HTTP framing, validation and the
  checkpoint cadence;
* **read latency** — top-k requests from concurrent reader clients while a
  writer streams updates, reported as p50/p99 (batch-boundary reads racing
  the writer, the service's locking contract under fire);
* **SSE fan-out** — N subscribers on one session's event stream while
  batches land; every subscriber must see every batch frame, in order,
  with no ``lagged`` markers at this rate.

Results are printed and written to ``BENCH_service.json`` at the repository
root.  Run directly (``PYTHONPATH=src python benchmarks/bench_service.py``)
for the full configuration, or with ``--smoke`` (CI) for a small one with
hard floors asserted.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import platform
import random
import sys
import tempfile
import time
from pathlib import Path

from repro.service import ServiceClient, ServiceServer, ServiceSettings

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_service.json"

FULL = {
    "vertices": 200,
    "writers": 4,
    "batches_per_writer": 30,
    "batch_size": 4,
    "checkpoint_every": 8,
    "readers": 4,
    "reads_per_reader": 50,
    "subscribers": 16,
    "fanout_batches": 30,
}
SMOKE = {
    "vertices": 80,
    "writers": 2,
    "batches_per_writer": 10,
    "batch_size": 3,
    "checkpoint_every": 5,
    "readers": 2,
    "reads_per_reader": 15,
    "subscribers": 8,
    "fanout_batches": 10,
}

#: Smoke floors — deliberately far below any healthy run (CI machines are
#: noisy); a breach means the service path regressed catastrophically.
SMOKE_FLOOR_UPDATES_PER_SECOND = 5.0
SMOKE_CEILING_READ_P99_SECONDS = 2.0


def base_edges(num_vertices: int, seed: int = 11):
    """Random connected graph: spanning tree plus two extra edges per
    vertex.  (Deliberately not a ring/path — those are the incremental
    kernel's worst case and would measure repair cost, not service
    overhead.)"""
    rng = random.Random(seed)
    edges = {(rng.randrange(v), v) for v in range(1, num_vertices)}
    added = 0
    while added < 2 * num_vertices:
        u, v = rng.sample(range(num_vertices), 2)
        key = (u, v) if u < v else (v, u)
        if key not in edges:
            edges.add(key)
            added += 1
    return [list(edge) for edge in sorted(edges)]


def fresh_edge_batches(writer: int, count: int, size: int, num_vertices: int):
    """Unique vertex-birth additions per writer — no batch can conflict."""
    base = 100_000 * (writer + 1)
    return [
        [
            ("add", (batch * size + i) % num_vertices, base + batch * size + i)
            for i in range(size)
        ]
        for batch in range(count)
    ]


def percentile(latencies, fraction: float) -> float:
    ranked = sorted(latencies)
    index = max(0, math.ceil(fraction * len(ranked)) - 1)
    return ranked[index]


async def bench_ingest(port: int, config: dict) -> dict:
    async with ServiceClient("127.0.0.1", port) as admin:
        await admin.create_session(
            "ingest",
            edges=base_edges(config["vertices"]),
            config={"backend": "arrays"},
            checkpoint_every=config["checkpoint_every"],
        )

        async def writer(index: int) -> int:
            applied = 0
            batches = fresh_edge_batches(
                index,
                config["batches_per_writer"],
                config["batch_size"],
                config["vertices"],
            )
            async with ServiceClient("127.0.0.1", port) as client:
                for batch in batches:
                    summary = await client.post_updates("ingest", batch)
                    applied += summary["applied"]
            return applied

        start = time.perf_counter()
        applied = await asyncio.gather(
            *(writer(i) for i in range(config["writers"]))
        )
        elapsed = time.perf_counter() - start
        final = await admin.expect("GET", "/sessions/ingest")
        await admin.delete_session("ingest", purge=True)
    total_updates = sum(applied)
    total_batches = config["writers"] * config["batches_per_writer"]
    assert final["batches_applied"] == total_batches
    report = {
        "writers": config["writers"],
        "batches": total_batches,
        "updates": total_updates,
        "elapsed_seconds": elapsed,
        "updates_per_second": total_updates / elapsed,
        "batches_per_second": total_batches / elapsed,
    }
    print(
        f"ingest: {total_updates} updates / {total_batches} batches from "
        f"{config['writers']} writers in {elapsed:6.2f}s "
        f"→ {report['updates_per_second']:8.1f} updates/s"
    )
    return report


async def bench_read_latency(port: int, config: dict) -> dict:
    async with ServiceClient("127.0.0.1", port) as admin:
        await admin.create_session(
            "reads",
            edges=base_edges(config["vertices"]),
            config={"backend": "arrays"},
            checkpoint_every=config["checkpoint_every"],
        )
        stop = asyncio.Event()

        async def background_writer() -> None:
            batches = fresh_edge_batches(
                0, 10_000, config["batch_size"], config["vertices"]
            )
            async with ServiceClient("127.0.0.1", port) as client:
                for batch in batches:
                    if stop.is_set():
                        return
                    await client.post_updates("reads", batch)

        async def reader() -> list:
            latencies = []
            async with ServiceClient("127.0.0.1", port) as client:
                for _ in range(config["reads_per_reader"]):
                    begin = time.perf_counter()
                    payload = await client.top_k("reads", k=10)
                    latencies.append(time.perf_counter() - begin)
                    assert len(payload["top"]) == 10
            return latencies

        writer_task = asyncio.create_task(background_writer())
        per_reader = await asyncio.gather(
            *(reader() for _ in range(config["readers"]))
        )
        stop.set()
        await writer_task
        await admin.delete_session("reads", purge=True)
    latencies = [latency for chunk in per_reader for latency in chunk]
    report = {
        "readers": config["readers"],
        "reads": len(latencies),
        "p50_seconds": percentile(latencies, 0.50),
        "p99_seconds": percentile(latencies, 0.99),
        "max_seconds": max(latencies),
    }
    print(
        f"reads:  {report['reads']} top-k reads under a live writer "
        f"→ p50 {report['p50_seconds'] * 1e3:6.1f}ms  "
        f"p99 {report['p99_seconds'] * 1e3:6.1f}ms"
    )
    return report


async def bench_sse_fanout(port: int, config: dict) -> dict:
    async with ServiceClient("127.0.0.1", port) as admin:
        await admin.create_session(
            "events",
            edges=base_edges(config["vertices"]),
            config={"backend": "arrays"},
            # Far beyond the batch count: only batch_applied frames flow,
            # so every subscriber expects exactly fanout_batches frames.
            checkpoint_every=10 ** 6,
        )
        expected = config["fanout_batches"]

        async def subscriber() -> dict:
            frames = []
            client = ServiceClient("127.0.0.1", port)
            try:
                async for frame in client.events("events", max_frames=expected):
                    frames.append(frame)
            finally:
                await client.close()
            indexes = [
                f["batch_index"]
                for f in frames
                if f["type"] == "batch_applied"
            ]
            return {
                "frames": len(frames),
                "in_order": indexes == sorted(indexes),
                "lagged": sum(1 for f in frames if f["type"] == "lagged"),
            }

        subscriber_tasks = [
            asyncio.create_task(subscriber())
            for _ in range(config["subscribers"])
        ]
        await asyncio.sleep(0.2)  # let every stream attach

        start = time.perf_counter()
        async with ServiceClient("127.0.0.1", port) as writer:
            for batch in fresh_edge_batches(
                7, expected, config["batch_size"], config["vertices"]
            ):
                await writer.post_updates("events", batch)
        outcomes = await asyncio.wait_for(
            asyncio.gather(*subscriber_tasks), timeout=60
        )
        elapsed = time.perf_counter() - start
        await admin.delete_session("events", purge=True)
    delivered = sum(o["frames"] for o in outcomes)
    report = {
        "subscribers": config["subscribers"],
        "batches": expected,
        "frames_delivered": delivered,
        "complete": all(o["frames"] == expected for o in outcomes),
        "in_order": all(o["in_order"] for o in outcomes),
        "lagged_frames": sum(o["lagged"] for o in outcomes),
        "elapsed_seconds": elapsed,
        "frames_per_second": delivered / elapsed,
    }
    print(
        f"sse:    {delivered} frames to {config['subscribers']} subscribers "
        f"in {elapsed:6.2f}s → {report['frames_per_second']:8.1f} frames/s "
        f"(complete: {report['complete']}, in order: {report['in_order']})"
    )
    return report


async def run(config: dict) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        server = ServiceServer(ServiceSettings(root=Path(tmp)))
        port = await server.start(host="127.0.0.1", port=0)
        try:
            ingest = await bench_ingest(port, config)
            reads = await bench_read_latency(port, config)
            fanout = await bench_sse_fanout(port, config)
        finally:
            await server.stop()
    return {
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": config,
        "ingest": ingest,
        "read_latency": reads,
        "sse_fanout": fanout,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small CI configuration"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=OUTPUT_PATH,
        help=f"where to write the JSON report (default: {OUTPUT_PATH})",
    )
    args = parser.parse_args(argv)

    report = asyncio.run(run(SMOKE if args.smoke else FULL))
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")

    fanout = report["sse_fanout"]
    assert fanout["complete"], "a subscriber missed batch frames"
    assert fanout["in_order"], "a subscriber saw out-of-order batch frames"
    assert fanout["lagged_frames"] == 0, (
        f"{fanout['lagged_frames']} lagged frames at benchmark rate"
    )
    if args.smoke:
        ups = report["ingest"]["updates_per_second"]
        p99 = report["read_latency"]["p99_seconds"]
        assert ups >= SMOKE_FLOOR_UPDATES_PER_SECOND, (
            f"ingest floor breached: {ups:.1f} < "
            f"{SMOKE_FLOOR_UPDATES_PER_SECOND} updates/s"
        )
        assert p99 <= SMOKE_CEILING_READ_P99_SECONDS, (
            f"read p99 ceiling breached: {p99:.3f}s > "
            f"{SMOKE_CEILING_READ_P99_SECONDS}s"
        )
        print(
            f"OK: {ups:.1f} updates/s (floor {SMOKE_FLOOR_UPDATES_PER_SECOND}), "
            f"read p99 {p99 * 1e3:.1f}ms "
            f"(ceiling {SMOKE_CEILING_READ_P99_SECONDS * 1e3:.0f}ms)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
