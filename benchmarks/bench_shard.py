"""Sharded executor: dispatch overhead, checkpoint rounds and recovery cost.

Measures :class:`repro.parallel.ShardCoordinator` on a random evolving
graph across shard counts:

* **bootstrap** — spawning the workers, partitioned Brandes on every shard,
  and the durable round-0 checkpoint;
* **dispatch overhead** — per batch, the driver's wall-clock minus the
  slowest worker's in-worker time: what coordination (pipes, adoption
  bookkeeping, graph sync) costs on top of the actual repair work;
* **checkpoint round** — one full round: every shard writes its stamped
  store + sidecar, the coordinator rewrites the manifest;
* **recovery** — a worker is killed mid-stream (the coordinator's chaos
  hook SIGKILLs it after applying a batch but before acknowledging, the
  worst case) and the time to re-seed a replacement from the shard
  checkpoint and replay the logged batches is taken from the coordinator's
  ``shard_recovered`` notification.

The acceptance bar is exactness, not speed: the chaos run's final scores
must be **bit-identical** to the clean run's.  Results are printed and
written to ``BENCH_shard.json`` at the repository root.

Run directly (``PYTHONPATH=src python benchmarks/bench_shard.py``) for the
full configuration, or with ``--smoke`` (CI) for a small one.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import tempfile
import time
from pathlib import Path

from repro.core.updates import EdgeUpdate, batches
from repro.graph import Graph
from repro.parallel import ShardCoordinator
from repro.storage.shard import ShardLayout

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_shard.json"

FULL = {
    "vertices": 400,
    "extra_edges_per_vertex": 3,
    "updates": 24,
    "batch_size": 4,
    "checkpoint_every": 2,
    "shard_counts": [1, 2, 4],
}
SMOKE = {
    "vertices": 100,
    "extra_edges_per_vertex": 2,
    "updates": 12,
    "batch_size": 3,
    "checkpoint_every": 2,
    "shard_counts": [1, 2],
}


def build_graph(num_vertices: int, extra_edges_per_vertex: int, seed: int) -> Graph:
    """Connected random graph: spanning tree plus random extra edges."""
    rng = random.Random(seed)
    graph = Graph()
    graph.add_vertex(0)
    for vertex in range(1, num_vertices):
        graph.add_edge(vertex, rng.randrange(vertex))
    added = 0
    while added < extra_edges_per_vertex * num_vertices:
        u, v = rng.sample(range(num_vertices), 2)
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
            added += 1
    return graph


def build_stream(graph: Graph, num_updates: int, seed: int):
    """Mixed addition/removal stream (with vertex births) valid on ``graph``."""
    rng = random.Random(seed)
    edges = set(graph.edge_list())
    vertices = list(graph.vertex_list())
    next_vertex = graph.num_vertices
    stream = []
    for _ in range(num_updates):
        roll = rng.random()
        if roll < 0.3 and len(edges) > 1:
            edge = rng.choice(sorted(edges))
            edges.discard(edge)
            stream.append(EdgeUpdate.removal(*edge))
        elif roll < 0.45:
            anchor = rng.choice(vertices)
            stream.append(EdgeUpdate.addition(anchor, next_vertex))
            edges.add((anchor, next_vertex))
            vertices.append(next_vertex)
            next_vertex += 1
        else:
            while True:
                u, v = rng.sample(vertices, 2)
                key = (u, v) if u <= v else (v, u)
                if key not in edges:
                    edges.add(key)
                    stream.append(EdgeUpdate.addition(u, v))
                    break
    return stream


def stream_once(coordinator, stream, batch_size):
    """Drive the stream; returns (reports, per-batch dispatch overheads)."""
    reports = []
    overheads = []
    for chunk in batches(iter(stream), batch_size):
        report = coordinator.apply_batch(chunk)
        reports.append(report)
        slowest = max(report.worker_seconds) if report.worker_seconds else 0.0
        overheads.append(max(0.0, (report.elapsed_seconds or 0.0) - slowest))
    return reports, overheads


def bench_shard_count(graph, stream, config, num_shards, root) -> dict:
    layout = ShardLayout(
        root=Path(root) / f"shards-{num_shards}",
        num_shards=num_shards,
        checkpoint_every=10 ** 9,  # rounds measured explicitly below
    )
    start = time.perf_counter()
    coordinator = ShardCoordinator(graph, layout)
    bootstrap_seconds = time.perf_counter() - start
    try:
        stream_start = time.perf_counter()
        _, overheads = stream_once(coordinator, stream, config["batch_size"])
        stream_seconds = time.perf_counter() - stream_start
        round_start = time.perf_counter()
        coordinator.checkpoint()
        round_seconds = time.perf_counter() - round_start
        vertex_scores = coordinator.vertex_betweenness()
    finally:
        coordinator.close(checkpoint=False)
    report = {
        "num_shards": num_shards,
        "bootstrap_seconds": bootstrap_seconds,
        "stream_seconds": stream_seconds,
        "mean_batch_seconds": stream_seconds / max(1, len(overheads)),
        "mean_dispatch_overhead_seconds": sum(overheads) / max(1, len(overheads)),
        "checkpoint_round_seconds": round_seconds,
    }
    print(
        f"shards={num_shards}: bootstrap {bootstrap_seconds:6.2f}s  "
        f"stream {stream_seconds:6.2f}s  "
        f"dispatch overhead {report['mean_dispatch_overhead_seconds'] * 1e3:6.1f}ms/batch  "
        f"round {round_seconds * 1e3:6.1f}ms"
    )
    return report, vertex_scores


def bench_recovery(graph, stream, config, num_shards, root, clean_scores) -> dict:
    """Kill one worker mid-stream; time the recovery, demand exact scores."""
    num_batches = (len(stream) + config["batch_size"] - 1) // config["batch_size"]
    kill_cursor = num_batches // 2
    if kill_cursor % config["checkpoint_every"] == 0 and kill_cursor + 1 < num_batches:
        # Land between checkpoint rounds so the recovery includes a real
        # replay, not just a re-seed.
        kill_cursor += 1
    events = []
    layout = ShardLayout(
        root=Path(root) / "shards-chaos",
        num_shards=num_shards,
        checkpoint_every=config["checkpoint_every"],
    )
    coordinator = ShardCoordinator(
        graph,
        layout,
        notify=lambda kind, **fields: events.append((kind, fields)),
        chaos={num_shards - 1: {"cursor": kill_cursor, "when": "after"}},
    )
    try:
        stream_once(coordinator, stream, config["batch_size"])
        vertex_scores = coordinator.vertex_betweenness()
    finally:
        coordinator.close(checkpoint=False)
    recoveries = [fields for kind, fields in events if kind == "shard_recovered"]
    report = {
        "num_shards": num_shards,
        "killed_shard": num_shards - 1,
        "kill_cursor": kill_cursor,
        "recoveries": len(recoveries),
        "recovery_seconds": recoveries[0]["seconds"] if recoveries else None,
        "replayed_batches": recoveries[0]["replayed_batches"] if recoveries else None,
        "bit_identical": vertex_scores == clean_scores,
    }
    print(
        f"recovery (shards={num_shards}, kill at batch {kill_cursor}): "
        f"{report['recovery_seconds']:.3f}s, "
        f"{report['replayed_batches']} batches replayed, "
        f"bit-identical: {report['bit_identical']}"
    )
    return report


def run(config: dict) -> dict:
    graph = build_graph(
        config["vertices"], config["extra_edges_per_vertex"], seed=11
    )
    stream = build_stream(graph, config["updates"], seed=13)
    print(
        f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges; "
        f"stream: {len(stream)} updates in batches of {config['batch_size']}"
    )
    per_shard_count = []
    scores_by_count = {}
    with tempfile.TemporaryDirectory(prefix="bench-shard-") as tmp:
        for num_shards in config["shard_counts"]:
            report, scores = bench_shard_count(graph, stream, config, num_shards, tmp)
            per_shard_count.append(report)
            scores_by_count[num_shards] = scores
        max_shards = config["shard_counts"][-1]
        recovery = bench_recovery(
            graph, stream, config, max_shards, tmp, scores_by_count[max_shards]
        )
    return {
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": config,
        "shard_counts": per_shard_count,
        "recovery": recovery,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI configuration",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=OUTPUT_PATH,
        help=f"where to write the JSON report (default: {OUTPUT_PATH})",
    )
    args = parser.parse_args(argv)

    report = run(SMOKE if args.smoke else FULL)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")

    recovery = report["recovery"]
    assert recovery["recoveries"] == 1, (
        f"expected exactly one recovery, saw {recovery['recoveries']}"
    )
    assert recovery["bit_identical"], (
        "post-recovery scores differ from the clean run — the replay path "
        "is not exact"
    )
    print(
        f"OK: recovered one killed worker in {recovery['recovery_seconds']:.3f}s "
        f"({recovery['replayed_batches']} batches replayed), scores bit-identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
