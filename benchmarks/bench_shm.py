"""Zero-copy data plane: bootstrap and dispatch cost, heap vs shared memory.

Measures :class:`repro.parallel.ProcessParallelBetweenness` on the same
snapshot-seeded workload twice — once with the classic heap data plane
(every worker receives its pickled snapshot partition and the pickled
update list of every batch) and once with ``shared_memory=True`` (workers
attach the driver's columnar segments and read batches from the shared
update ring; the per-batch pipe message is a tiny descriptor):

* **bootstrap-to-first-update** — executor construction through the first
  applied update: seed-snapshot transfer plus worker store build, the
  latency before the stream goes live;
* **dispatch payload** — exact pickled bytes written to the worker pipes
  per steady-state batch (``batch_payload_bytes``), the driver-side cost
  the update ring removes;
* **per-batch overhead** — driver wall-clock minus the slowest worker's
  in-worker repair time, per batch.

The acceptance bars: final vertex and edge scores of the two legs must be
**bit-identical**, the mean dispatch payload must shrink by the configured
ratio (10x at the full batch size), and the shared-memory bootstrap must
beat the heap bootstrap by the configured ratio.  Results are printed and
written to ``BENCH_shm.json`` at the repository root.

Run directly (``PYTHONPATH=src python benchmarks/bench_shm.py``) for the
full configuration, or with ``--smoke`` (CI) for a small one.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.algorithms import brandes_betweenness
from repro.core.updates import batches
from repro.parallel import ProcessParallelBetweenness
from repro.storage.buffers import active_segments, shm_available

from bench_shard import build_graph, build_stream

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_shm.json"

FULL = {
    "vertices": 500,
    "extra_edges_per_vertex": 3,
    "updates": 128,
    "batch_size": 32,
    "workers": 4,
    "min_payload_ratio": 10.0,
    "min_bootstrap_ratio": 2.0,
}
SMOKE = {
    "vertices": 120,
    "extra_edges_per_vertex": 2,
    "updates": 24,
    "batch_size": 8,
    "workers": 2,
    "min_payload_ratio": 2.0,
    "min_bootstrap_ratio": None,  # too noisy at toy sizes for a hard bar
}


def bench_leg(graph, seed_data, stream, config, shared_memory) -> dict:
    """One full run; returns metrics and the final score dictionaries."""
    # The first update goes alone — it marks the moment the stream is
    # live.  The rest flows in full batches, the steady-state regime the
    # payload and overhead metrics describe.
    chunks = list(batches(iter(stream[1:]), config["batch_size"]))
    start = time.perf_counter()
    executor = ProcessParallelBetweenness(
        graph,
        num_workers=config["workers"],
        store="memory",
        source_data=seed_data,
        backend="arrays",
        shared_memory=shared_memory,
    )
    try:
        first_report = executor.apply_batch([stream[0]])
        bootstrap_seconds = time.perf_counter() - start
        reports = [first_report]
        for chunk in chunks:
            reports.append(executor.apply_batch(chunk))
        overheads = [
            max(0.0, (r.elapsed_seconds or 0.0) - max(r.worker_seconds))
            for r in reports[1:]
        ]
        payload_bytes = executor.batch_payload_bytes[1:]
        vertex_scores, edge_scores = executor.betweenness()
        init_wall_clock = executor.init_wall_clock_seconds
    finally:
        executor.close()
    leg = {
        "shared_memory": shared_memory,
        "bootstrap_to_first_update_seconds": bootstrap_seconds,
        "worker_init_wall_clock_seconds": init_wall_clock,
        "batches": len(reports),
        "mean_batch_payload_bytes": sum(payload_bytes) / len(payload_bytes),
        "total_batch_payload_bytes": sum(payload_bytes),
        "mean_dispatch_overhead_seconds": sum(overheads) / len(overheads),
    }
    print(
        f"{'shm ' if shared_memory else 'heap'}: "
        f"bootstrap {bootstrap_seconds:6.3f}s  "
        f"payload {leg['mean_batch_payload_bytes']:8.0f} B/batch  "
        f"overhead {leg['mean_dispatch_overhead_seconds'] * 1e3:6.1f}ms/batch"
    )
    return leg, vertex_scores, edge_scores


def run(config: dict) -> dict:
    graph = build_graph(
        config["vertices"], config["extra_edges_per_vertex"], seed=17
    )
    stream = build_stream(graph, config["updates"], seed=19)
    print(
        f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges; "
        f"stream: {len(stream)} updates in batches of {config['batch_size']} "
        f"on {config['workers']} workers"
    )
    seed_data = brandes_betweenness(graph, collect_source_data=True).source_data

    heap, heap_vertex, heap_edge = bench_leg(
        graph, seed_data, stream, config, shared_memory=False
    )
    shm, shm_vertex, shm_edge = bench_leg(
        graph, seed_data, stream, config, shared_memory=True
    )

    payload_ratio = (
        heap["mean_batch_payload_bytes"] / shm["mean_batch_payload_bytes"]
    )
    bootstrap_ratio = (
        heap["bootstrap_to_first_update_seconds"]
        / shm["bootstrap_to_first_update_seconds"]
    )
    return {
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": config,
        "heap": heap,
        "shm": shm,
        "payload_ratio": payload_ratio,
        "bootstrap_ratio": bootstrap_ratio,
        "bit_identical": heap_vertex == shm_vertex and heap_edge == shm_edge,
        "leaked_segments": active_segments(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI configuration",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=OUTPUT_PATH,
        help=f"where to write the JSON report (default: {OUTPUT_PATH})",
    )
    args = parser.parse_args(argv)

    if not shm_available():  # pragma: no cover - linux CI
        print("multiprocessing.shared_memory unavailable; nothing to compare")
        return 0

    config = SMOKE if args.smoke else FULL
    report = run(config)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")

    assert report["bit_identical"], (
        "shared-memory scores differ from the heap run — the zero-copy "
        "data plane is not exact"
    )
    assert not report["leaked_segments"], (
        f"leaked shared-memory segments: {report['leaked_segments']}"
    )
    assert report["payload_ratio"] >= config["min_payload_ratio"], (
        f"dispatch payload shrank only {report['payload_ratio']:.1f}x "
        f"(bar: {config['min_payload_ratio']}x)"
    )
    if config["min_bootstrap_ratio"] is not None:
        assert report["bootstrap_ratio"] >= config["min_bootstrap_ratio"], (
            f"bootstrap improved only {report['bootstrap_ratio']:.2f}x "
            f"(bar: {config['min_bootstrap_ratio']}x)"
        )
    print(
        f"OK: payload {report['payload_ratio']:.1f}x smaller, "
        f"bootstrap {report['bootstrap_ratio']:.2f}x faster, "
        f"scores bit-identical, no leaked segments"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
