"""Disk-store record throughput: mmap views vs buffered seek/read.

The durable ``DiskBDStore`` serves record loads from strided numpy views
over an mmap of the record area by default; ``use_mmap=False`` keeps the
classic buffered path (seek + read + frombuffer) for comparison.  This
benchmark fills one store file with real Brandes records, then measures —
on the *same* file — three access patterns in both modes:

* raw record loads (``record_columns``): the three column arrays of every
  source, the unit of work of an update sweep;
* distance peeks (``endpoint_distances``): the 4-byte read behind the
  Proposition 3.1 skip;
* full decodes (``get``): record load plus dictionary materialisation.

Expected shape: the mmap path wins big on raw loads and peeks (no syscall,
no copy) and retains a smaller edge on full decodes, where dictionary
construction dominates both modes.  The raw-load advantage is asserted
(≥ 2x) — it is the acceptance bar for the mmap backend.
"""

import time

from repro.algorithms import brandes_betweenness
from repro.analysis import format_table
from repro.storage import DiskBDStore

ROUNDS = 30  # full-store sweeps per access pattern


def _fill_store(graph, path):
    result = brandes_betweenness(graph, collect_source_data=True)
    store = DiskBDStore(graph.vertex_list(), path=path)
    for data in result.source_data.values():
        store.put(data)
    store.close()


def _sweep_seconds(store, action, sources):
    start = time.perf_counter()
    for _ in range(ROUNDS):
        for source in sources:
            action(store, source)
    return time.perf_counter() - start


def _measure_mode(path, use_mmap):
    store = DiskBDStore.open(path, use_mmap=use_mmap)
    sources = list(store.sources())
    u, v = sources[0], sources[-1]
    try:
        load_seconds = _sweep_seconds(
            store, lambda s, src: s.record_columns(src), sources
        )
        peek_seconds = _sweep_seconds(
            store, lambda s, src: s.endpoint_distances(src, u, v), sources
        )
        decode_seconds = _sweep_seconds(store, lambda s, src: s.get(src), sources)
    finally:
        store.close()
    operations = ROUNDS * len(sources)
    return {
        "loads_per_second": operations / load_seconds,
        "peeks_per_second": operations / peek_seconds,
        "decodes_per_second": operations / decode_seconds,
    }


def bench_store_io(benchmark, datasets, report, tmp_path_factory):
    graph = datasets.graph("facebook")
    path = tmp_path_factory.mktemp("store-io") / "bd.bin"
    _fill_store(graph, path)

    def run():
        return {
            "mmap": _measure_mode(path, use_mmap=True),
            "buffered": _measure_mode(path, use_mmap=False),
        }

    output = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for mode in ("mmap", "buffered"):
        metrics = output[mode]
        rows.append(
            [
                mode,
                f"{metrics['loads_per_second']:.0f}",
                f"{metrics['peeks_per_second']:.0f}",
                f"{metrics['decodes_per_second']:.0f}",
            ]
        )
    ratio = (
        output["mmap"]["loads_per_second"]
        / output["buffered"]["loads_per_second"]
    )
    table = format_table(
        ["mode", "record loads / s", "peeks / s", "full decodes / s"], rows
    )
    table += f"\nmmap record-load speedup over buffered: {ratio:.1f}x"
    report("store_io", table)

    # Acceptance bar: mmap record loads at least 2x the buffered path.
    assert ratio >= 2.0, f"mmap only {ratio:.2f}x faster than buffered"
