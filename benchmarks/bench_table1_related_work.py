"""Table 1 — capability/complexity comparison with prior dynamic methods.

The table is static information quoted from the paper; regenerating it here
keeps the benchmark harness complete (one target per numbered table) and
costs nothing.
"""

from repro.analysis import related_work_table


def bench_table1_related_work(benchmark, report):
    table = benchmark(related_work_table)
    report("table1_related_work", table)
    assert "This work" in table
