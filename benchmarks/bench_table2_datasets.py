"""Table 2 — dataset statistics (|V|, |E|, average degree, clustering, ED).

Profiles every scaled-down dataset stand-in.  The absolute sizes are much
smaller than the paper's, but the qualitative ordering the evaluation relies
on must hold: the social stand-ins have clustering around 0.2, dblp is the
most clustered, slashdot/amazon the least, and average degrees follow the
originals.
"""

from repro.analysis import format_table, table2_rows
from repro.generators import available_datasets
from repro.graph import profile


def bench_table2_dataset_profiles(benchmark, datasets, report):
    names = available_datasets()

    def build_profiles():
        return [
            profile(datasets.graph(name), name=name, rng=1)
            for name in names
        ]

    profiles = benchmark.pedantic(build_profiles, rounds=1, iterations=1)
    table = format_table(
        ["dataset", "|V|", "|E|", "AD", "CC", "ED"], table2_rows(profiles)
    )
    report("table2_datasets", table)

    by_name = {p.name: p for p in profiles}
    # Qualitative checks mirroring Table 2's structure.
    assert by_name["dblp"].clustering_coefficient > by_name["amazon"].clustering_coefficient
    assert by_name["slashdot"].clustering_coefficient < 0.1
    assert by_name["synthetic-1k"].clustering_coefficient > 0.1
    assert by_name["amazon"].average_degree < by_name["facebook"].average_degree
