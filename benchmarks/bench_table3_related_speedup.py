"""Table 3 — average (max) speedup over Brandes on small graphs.

The paper compares its average and maximum per-edge speedup against the
numbers reported by Kas et al., QUBE and Green et al. on small graphs.  The
reproduction measures the MO configuration on the small end of the dataset
suite; the related-work columns are quoted from the paper for context (those
systems are not reimplemented — the comparison the paper makes is against
*reported* numbers, not reruns).
"""

from repro.analysis import Variant, format_table, measure_stream_speedups
from repro.generators import addition_stream

from .conftest import stream_length

SMALL_DATASETS = ["wikielections", "synthetic-1k", "slashdot"]

#: Speedups reported by the related work (Table 3 of the paper), for context.
REPORTED = {
    "wikielections": {"kas": 3, "qube": "-", "green": "-"},
    "synthetic-1k": {"kas": "-", "qube": "-", "green": "-"},
    "slashdot": {"kas": "-", "qube": "-", "green": "out of memory"},
}


def bench_table3_related_speedup(benchmark, datasets, report):
    def run():
        rows = []
        for name in SMALL_DATASETS:
            graph = datasets.graph(name)
            updates = addition_stream(graph, stream_length(), rng=11)
            series = measure_stream_speedups(
                graph,
                updates,
                Variant.MO,
                label=name,
                baseline_seconds=datasets.brandes_seconds(name),
            )
            stats = series.summary()
            quoted = REPORTED[name]
            rows.append(
                [
                    name,
                    graph.num_vertices,
                    f"{stats.mean:.0f} ({stats.maximum:.0f})",
                    quoted["kas"],
                    quoted["qube"],
                    quoted["green"],
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["dataset", "|V|", "MO avg (max)", "Kas et al. (reported)",
         "QUBE (reported)", "Green et al. (reported)"],
        rows,
    )
    report("table3_related_speedup", table)

    # The framework must beat from-scratch recomputation on average.
    for row in rows:
        average = float(row[2].split(" ")[0])
        assert average > 1.0
