"""Table 4 — key speedup results: min / median / max per dataset, additions
and removals.

This is the paper's headline summary.  The expected *shape*: speedups grow
with graph size within the synthetic series, every dataset shows substantial
median speedups for both additions and removals, and the low-clustering /
high-diameter stand-in (amazon) shows the weakest speedup.
"""

import pytest

from repro.analysis import Variant, format_table, measure_stream_speedups, speedup_summary_rows
from repro.generators import addition_stream, removal_stream

from .conftest import stream_length

DATASETS = [
    "synthetic-1k",
    "synthetic-10k",
    "synthetic-100k",
    "synthetic-1000k",
    "wikielections",
    "slashdot",
    "facebook",
    "epinions",
    "dblp",
    "amazon",
]


@pytest.fixture(scope="module")
def speedup_tables(datasets):
    addition_series = {}
    removal_series = {}
    for name in DATASETS:
        graph = datasets.graph(name)
        baseline = datasets.brandes_seconds(name)
        additions = addition_stream(graph, stream_length(), rng=21)
        removals = removal_stream(graph, stream_length(), rng=22)
        addition_series[name] = measure_stream_speedups(
            graph, additions, Variant.MO, label=name, baseline_seconds=baseline
        )
        removal_series[name] = measure_stream_speedups(
            graph, removals, Variant.MO, label=name, baseline_seconds=baseline
        )
    return addition_series, removal_series


def bench_table4_speedup_summary(benchmark, speedup_tables, report, datasets):
    addition_series, removal_series = speedup_tables

    def summarise():
        return speedup_summary_rows(addition_series, removal_series)

    rows = benchmark(summarise)
    table = format_table(
        ["dataset", "add min", "add med", "add max", "rm min", "rm med", "rm max"],
        rows,
    )
    report("table4_speedup_summary", table)

    by_name = {row[0]: row for row in rows}
    # Shape check 1: median speedup grows with synthetic graph size.
    assert by_name["synthetic-1000k"][2] > by_name["synthetic-1k"][2]
    # Shape check 2: every dataset's median addition speedup beats 1x.
    assert all(row[2] > 1 for row in rows)
    # Shape check 3: the mechanism behind amazon's weak speedup in the paper
    # (low clustering -> fewer skipped sources, larger structural changes) is
    # visible in the skip fraction even at this scale; the absolute median
    # ordering between amazon and dblp is noisy on scaled-down stand-ins, so
    # only gross inversions are flagged.
    assert (
        addition_series["amazon"].average_skip_fraction
        <= addition_series["dblp"].average_skip_fraction + 0.05
    )
    assert by_name["amazon"][2] <= 2.5 * by_name["dblp"][2]


def bench_table4_single_addition_update(benchmark, datasets):
    """Micro-benchmark: one incremental addition on the mid-size stand-in."""
    from repro.analysis import build_framework
    from repro.core import EdgeUpdate

    graph = datasets.graph("synthetic-100k")
    framework = build_framework(graph, Variant.MO)
    updates = iter(addition_stream(graph, 200, rng=33))

    def one_update():
        framework.apply(next(updates))

    benchmark.pedantic(one_update, rounds=min(30, 150), iterations=1)
