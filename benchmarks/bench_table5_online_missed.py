"""Table 5 — fraction of missed online updates and average delay vs. mappers.

Same replay machinery as Figure 8, reported in the paper's tabular form:
for each dataset and mapper count, the percentage of edges whose betweenness
refresh did not finish before the next arrival and the average delay of
those late refreshes.  Expected shape: both columns shrink (weakly) as the
number of mappers grows.
"""

from repro.analysis import format_table
from repro.generators import load_dataset
from repro.parallel import simulate_online_updates

from .conftest import scaled_size, stream_length

CONFIGURATIONS = [
    ("slashdot", [1, 10]),
    ("facebook", [1, 10, 50, 100]),
]

TIME_SCALE = 0.002


def bench_table5_online_missed(benchmark, report):
    def run():
        rows = []
        for name, mapper_counts in CONFIGURATIONS:
            evolving = load_dataset(
                name, num_vertices=scaled_size(name), rng=7, as_evolving=True
            )
            replay_length = max(stream_length(), 10)
            prefix = evolving.num_edges - replay_length
            base = evolving.base_graph(prefix)
            future = evolving.future_updates(prefix)
            for mappers in mapper_counts:
                result = simulate_online_updates(
                    base, future, num_mappers=mappers, time_scale=TIME_SCALE
                )
                rows.append(
                    [
                        name,
                        mappers,
                        f"{100 * result.missed_fraction:.3f}",
                        f"{result.average_delay:.3f}",
                    ]
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(["dataset", "mappers", "% missed", "avg delay (s)"], rows)
    report("table5_online_missed", table)

    # Shape: within each dataset the missed fraction is non-increasing in the
    # number of mappers.
    for name, _ in CONFIGURATIONS:
        fractions = [float(row[2]) for row in rows if row[0] == name]
        assert all(a >= b - 1e-9 for a, b in zip(fractions, fractions[1:]))
