"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures on the
scaled-down dataset stand-ins (see DESIGN.md for the substitution rationale)
and writes its output — the same rows / series the paper reports — both to
stdout and to ``benchmarks/results/<name>.txt`` so that EXPERIMENTS.md can be
refreshed from a run.

Scaling knobs (environment variables):

* ``REPRO_BENCH_EDGES``   — updates per stream (default 10; the paper uses 100);
* ``REPRO_BENCH_SCALE``   — multiplier on the stand-in vertex counts (default 1.0).

Raising either makes the shapes crisper at the cost of wall-clock time.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict

import pytest

from repro.analysis import measure_brandes_seconds
from repro.generators import load_dataset
from repro.graph import Graph

RESULTS_DIR = Path(__file__).parent / "results"

#: Vertex counts used for each dataset stand-in during benchmarking.  These
#: are intentionally small (pure-Python constant factors); the relative
#: ordering mirrors Table 2.
BENCH_SIZES: Dict[str, int] = {
    "synthetic-1k": 150,
    "synthetic-10k": 250,
    "synthetic-100k": 350,
    "synthetic-1000k": 450,
    "wikielections": 250,
    "slashdot": 300,
    "facebook": 330,
    "epinions": 350,
    "dblp": 400,
    "amazon": 420,
}


def stream_length() -> int:
    """Number of edge updates per stream (paper: 100)."""
    return int(os.environ.get("REPRO_BENCH_EDGES", "10"))


def scaled_size(name: str) -> int:
    """Vertex count for ``name`` after applying the scale factor."""
    factor = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return max(30, int(BENCH_SIZES[name] * factor))


class DatasetCache:
    """Session-wide cache of generated graphs and Brandes baselines."""

    def __init__(self) -> None:
        self._graphs: Dict[str, Graph] = {}
        self._baselines: Dict[str, float] = {}

    def graph(self, name: str) -> Graph:
        if name not in self._graphs:
            self._graphs[name] = load_dataset(
                name, num_vertices=scaled_size(name), rng=7
            )
        return self._graphs[name]

    def brandes_seconds(self, name: str) -> float:
        if name not in self._baselines:
            self._baselines[name] = measure_brandes_seconds(self.graph(name))
        return self._baselines[name]


@pytest.fixture(scope="session")
def datasets() -> DatasetCache:
    return DatasetCache()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def report(results_dir):
    """Write a named report file and echo it to stdout."""

    def _write(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n===== {name} =====\n{text}\n")

    return _write
