#!/usr/bin/env python3
"""Girvan–Newman community detection powered by incremental edge betweenness.

The Girvan–Newman algorithm (Section 6.3 of the paper) repeatedly removes
the edge with the highest betweenness; the connected components that appear
form a hierarchy of communities.  Recomputing edge betweenness from scratch
after every removal is what made the method impractical — the incremental
framework turns each removal into a partial repair.

This example builds a planted-partition graph with three communities, runs
Girvan–Newman with both drivers (incremental and recompute-from-scratch),
verifies they find the same communities, and reports the speedup.

Run with:  python examples/community_detection.py
"""

from __future__ import annotations

import time

from repro.applications import girvan_newman, modularity
from repro.graph import Graph
from repro.utils.rng import ensure_rng


def planted_partition_graph(
    communities: int = 3,
    size: int = 20,
    p_in: float = 0.45,
    p_out: float = 0.01,
    seed: int = 3,
) -> Graph:
    """Dense blocks with sparse connections between them."""
    rng = ensure_rng(seed)
    graph = Graph()
    n = communities * size
    for vertex in range(n):
        graph.add_vertex(vertex)
    for u in range(n):
        for v in range(u + 1, n):
            same = (u // size) == (v // size)
            probability = p_in if same else p_out
            if rng.random() < probability:
                graph.add_edge(u, v)
    # Guarantee at least one bridge between consecutive blocks so that the
    # graph starts connected.
    for c in range(communities - 1):
        u = c * size
        v = (c + 1) * size
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


def main() -> None:
    graph = planted_partition_graph()
    print(
        f"planted-partition graph: {graph.num_vertices} vertices, "
        f"{graph.num_edges} edges, 3 planted communities"
    )

    budget = 40  # edge removals to perform

    start = time.perf_counter()
    incremental = girvan_newman(graph, max_removals=budget, use_incremental=True)
    incremental_seconds = time.perf_counter() - start

    start = time.perf_counter()
    recompute = girvan_newman(graph, max_removals=budget, use_incremental=False)
    recompute_seconds = time.perf_counter() - start

    assert incremental.removed_edges == recompute.removed_edges, (
        "both drivers must remove the same edge sequence"
    )

    partition, q = incremental.hierarchy.best_partition(graph)
    print(f"\nremoved {incremental.edges_processed} highest-betweenness edges")
    print(f"best partition found: {len(partition)} communities, modularity Q = {q:.3f}")
    for index, community in enumerate(sorted(partition, key=min)):
        members = sorted(community)
        preview = ", ".join(map(str, members[:8])) + (" ..." if len(members) > 8 else "")
        print(f"  community {index}: {len(members)} vertices ({preview})")

    print(
        f"\nincremental driver: {incremental_seconds:.2f}s | "
        f"recompute driver: {recompute_seconds:.2f}s | "
        f"speedup: {recompute_seconds / incremental_seconds:.1f}x"
    )


if __name__ == "__main__":
    main()
