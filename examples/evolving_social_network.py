#!/usr/bin/env python3
"""Online monitoring of an evolving social network.

Scenario from the paper's introduction and conclusions: a social graph keeps
receiving new edges, and we want to know — online — who the emerging
"leaders" (highest-betweenness vertices) and the strongest "weak ties"
(highest-betweenness edges) are, and how many machines would be needed to
keep the scores fresh at the observed arrival rate.

The script

1. generates a synthetic social graph (the Table 2 stand-in) and assigns
   synthetic arrival timestamps to its edges,
2. bootstraps the framework on the first 90% of the edge history,
3. replays the remaining arrivals through a session with a
   :class:`~repro.api.TopKTracker` subscriber,
4. reports the top-k churn and, using the paper's capacity model
   (tU = tS * n/p + tM), the number of mappers required to process updates
   faster than they arrive.

Run with:  python examples/evolving_social_network.py
"""

from __future__ import annotations

from repro import BetweennessConfig, BetweennessSession, TopKTracker
from repro.generators import synthetic_social_graph
from repro.generators.streams import EvolvingGraph
from repro.parallel import OnlineCapacityModel, simulate_online_updates

NUM_VERTICES = 150
REPLAY_EDGES = 15
TOP_K = 5


def main() -> None:
    graph = synthetic_social_graph(NUM_VERTICES, rng=42)
    evolving = EvolvingGraph.from_graph(graph, rng=42, mean_interarrival=60.0)
    prefix = evolving.num_edges - REPLAY_EDGES
    base = evolving.base_graph(prefix)
    arrivals = evolving.future_updates(prefix)
    print(
        f"social graph: {graph.num_vertices} vertices, {graph.num_edges} edges; "
        f"replaying the last {len(arrivals)} arrivals"
    )

    # --- leader monitoring -------------------------------------------------
    # The tracker is an event subscriber: one session pass keeps the top-k
    # ranking (and anything else subscribed) up to date.
    session = BetweennessSession(base, BetweennessConfig.for_graph(base))
    tracker = session.subscribe(TopKTracker(k=TOP_K))
    print("\ninitial leaders:", [v for v, _ in tracker.top_vertices()])
    for _ in session.stream(arrivals):
        pass
    print("final leaders:  ", [v for v, _ in tracker.snapshots[-1].top_vertices])
    churn = tracker.ranking_churn()
    session.close()
    print(
        f"top-{TOP_K} churn per arrival: total {sum(churn)} entries/exits over "
        f"{len(churn)} arrivals"
    )

    # --- online capacity ---------------------------------------------------
    replay = simulate_online_updates(base, arrivals, num_mappers=1)
    average_processing = sum(r.processing_time for r in replay.records) / len(
        replay.records
    )
    interarrivals = [
        r.interarrival_time for r in replay.records if r.interarrival_time != float("inf")
    ]
    average_interarrival = sum(interarrivals) / len(interarrivals)
    print(
        f"\nsingle machine: average update time {average_processing:.3f}s, "
        f"average inter-arrival {average_interarrival:.3f}s, "
        f"missed {100 * replay.missed_fraction:.1f}% of deadlines"
    )

    time_per_source = average_processing / base.num_vertices
    model = OnlineCapacityModel(
        time_per_source=time_per_source,
        num_sources=base.num_vertices,
        merge_time=0.001,
    )
    for faster in (10, 500, 5000):
        target = average_interarrival / faster
        try:
            workers = model.required_workers(target)
            print(
                f"arrivals {faster:>3}x faster (every {target:.3f}s): "
                f"need {workers} mapper(s) to stay online"
            )
        except Exception as exc:  # serial part exceeds the deadline
            print(f"arrivals {faster:>3}x faster: cannot stay online ({exc})")


if __name__ == "__main__":
    main()
