#!/usr/bin/env python3
"""Out-of-core storage and partitioned (MapReduce-style) execution.

Demonstrates the two scalability mechanisms of Section 5 — both driven
through the unified session API, where they are just different
:class:`~repro.api.BetweennessConfig` values:

* ``store="disk:///..."`` puts the per-source betweenness data ``BD[.]`` in
  a columnar binary file on disk (the "DO" configuration); updates read
  each source's record sequentially, peek at just two distances to skip
  unaffected sources (Proposition 3.1), and write repaired records back in
  place;
* ``executor="mapreduce"`` partitions the source set across several
  "mappers", each maintaining partial scores over its own slice; the
  reducer sums the partials.

Run with:  python examples/out_of_core_and_parallel.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import BetweennessConfig, BetweennessSession
from repro.algorithms import brandes_betweenness
from repro.generators import addition_stream, removal_stream, synthetic_social_graph
from repro.storage.codec import record_size

NUM_VERTICES = 120
NUM_MAPPERS = 4


def out_of_core_demo(graph) -> None:
    print("=== out-of-core (DO) configuration ===")
    with tempfile.TemporaryDirectory() as tmp:
        config = BetweennessConfig.for_graph(
            graph, store=f"disk:{Path(tmp) / 'bd.bin'}"
        )
        with BetweennessSession(graph, config) as session:
            store = session.framework.store
            print(
                f"BD[.] file: {store.path.name}, capacity {store.capacity} "
                f"vertices, {record_size(store.capacity)} bytes per source record"
            )
            read_before, written_before = store.bytes_read, store.bytes_written

            updates = addition_stream(graph, 3, rng=1) + removal_stream(
                graph, 3, rng=2
            )
            skipped = processed = 0
            for update in updates:
                result = session.apply(update)
                skipped += result.sources_skipped
                processed += result.sources_processed
            print(
                f"applied {len(updates)} updates: skipped {skipped}/{processed} "
                f"source visits via the dd == 0 peek"
            )
            print(
                f"disk traffic: {(store.bytes_read - read_before) / 1e6:.2f} MB "
                f"read, {(store.bytes_written - written_before) / 1e6:.2f} MB "
                "written"
            )

            reference = brandes_betweenness(session.graph)
            scores = session.vertex_betweenness()
            worst = max(
                abs(scores[v] - reference.vertex_scores[v])
                for v in session.graph.vertices()
            )
            print(f"max difference vs. from-scratch Brandes: {worst:.2e}")


def mapreduce_demo(graph) -> None:
    print("\n=== partitioned (MapReduce) execution ===")
    config = BetweennessConfig.for_graph(
        graph, executor="mapreduce", workers=NUM_MAPPERS
    )
    with BetweennessSession(graph, config) as session:
        sizes = [len(p) for p in session.engine.partitions]
        print(f"{NUM_MAPPERS} mappers, partition sizes: {sizes}")

        updates = addition_stream(graph, 4, rng=3)
        for update in updates:
            report = session.apply(update)
            print(
                f"update {update.endpoints}: cluster wall-clock "
                f"{1000 * report.wall_clock_seconds:.1f} ms "
                f"(cumulative {1000 * report.cumulative_seconds:.1f} ms across "
                f"mappers, merge {1000 * report.merge_seconds:.1f} ms)"
            )

        reference = brandes_betweenness(session.graph)
        reduced = session.vertex_betweenness()
        worst = max(abs(reduced[v] - reference.vertex_scores[v]) for v in reduced)
        print(f"reduced scores match from-scratch Brandes within {worst:.2e}")


def main() -> None:
    graph = synthetic_social_graph(NUM_VERTICES, rng=11)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges\n")
    out_of_core_demo(graph)
    mapreduce_demo(graph)


if __name__ == "__main__":
    main()
