#!/usr/bin/env python3
"""Quickstart: maintain vertex and edge betweenness while a graph evolves.

Builds a small "two communities + bridge" graph, opens a
:class:`~repro.api.BetweennessSession` (the unified entry point — Step 1 of
the paper runs during the bootstrap), then streams a few edge additions and
removals (Step 2) while printing the most central vertices and edges after
each update.  Every printed score is exact — identical to recomputing
Brandes' algorithm from scratch on the current graph — but obtained at a
fraction of the cost.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import BetweennessConfig, BetweennessSession, EdgeUpdate, Graph
from repro.algorithms import brandes_betweenness


def build_initial_graph() -> Graph:
    """Two 4-cliques joined by a single bridge edge (3, 4)."""
    edges = []
    for base in (0, 4):
        members = range(base, base + 4)
        edges.extend((u, v) for u in members for v in members if u < v)
    edges.append((3, 4))
    return Graph.from_edges(edges)


def print_top(session: BetweennessSession, title: str, k: int = 3) -> None:
    print(f"\n--- {title} ---")
    vertices = session.top_k(k)
    edges = session.top_k(k, edges=True)
    print("top vertices:", ", ".join(f"{v}={score:.1f}" for v, score in vertices))
    print("top edges:   ", ", ".join(f"{e}={score:.1f}" for e, score in edges))


def main() -> None:
    graph = build_initial_graph()
    print(f"initial graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # One declarative config drives everything: backend, store, batching.
    config = BetweennessConfig.for_graph(graph, store="memory://")
    with BetweennessSession(graph, config) as session:
        print_top(session, "initial betweenness (bridge 3-4 dominates)")

        # Step 2: stream updates; each one repairs only the affected state.
        updates = [
            EdgeUpdate.addition(0, 7),     # a second bridge between the communities
            EdgeUpdate.addition(1, 5),     # and a third
            EdgeUpdate.removal(3, 4),      # the original bridge disappears
            EdgeUpdate.addition(8, 0),     # a brand-new vertex joins the left side
        ]
        for update in updates:
            result = session.apply(update)
            kind = "add" if update.is_addition else "remove"
            print_top(session, f"after {kind} {update.endpoints}")
            print(
                f"    sources skipped: {result.sources_skipped}/"
                f"{result.sources_processed}"
                f" ({100 * result.skip_fraction:.0f}%), "
                f"update took {1000 * (result.elapsed_seconds or 0):.2f} ms"
            )

        # Sanity: the maintained scores equal a from-scratch recomputation.
        reference = brandes_betweenness(session.graph)
        scores = session.vertex_betweenness()
        worst = max(
            abs(scores[v] - reference.vertex_scores[v]) for v in scores
        )
        print(f"\nmax difference vs. from-scratch Brandes: {worst:.2e}")


if __name__ == "__main__":
    main()
