#!/usr/bin/env python3
"""Quickstart: maintain vertex and edge betweenness while a graph evolves.

Builds a small "two communities + bridge" graph, bootstraps the incremental
framework (Step 1 of the paper), then streams a few edge additions and
removals (Step 2) while printing the most central vertices and edges after
each update.  Every printed score is exact — identical to recomputing
Brandes' algorithm from scratch on the current graph — but obtained at a
fraction of the cost.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Graph, IncrementalBetweenness
from repro.algorithms import brandes_betweenness


def build_initial_graph() -> Graph:
    """Two 4-cliques joined by a single bridge edge (3, 4)."""
    edges = []
    for base in (0, 4):
        members = range(base, base + 4)
        edges.extend((u, v) for u in members for v in members if u < v)
    edges.append((3, 4))
    return Graph.from_edges(edges)


def print_top(framework: IncrementalBetweenness, title: str, k: int = 3) -> None:
    print(f"\n--- {title} ---")
    vertices = sorted(
        framework.vertex_betweenness().items(), key=lambda item: -item[1]
    )[:k]
    edges = sorted(framework.edge_betweenness().items(), key=lambda item: -item[1])[:k]
    print("top vertices:", ", ".join(f"{v}={score:.1f}" for v, score in vertices))
    print("top edges:   ", ", ".join(f"{e}={score:.1f}" for e, score in edges))


def main() -> None:
    graph = build_initial_graph()
    print(f"initial graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # Step 1: one offline Brandes run builds the per-source data BD[s].
    framework = IncrementalBetweenness(graph)
    print_top(framework, "initial betweenness (bridge 3-4 dominates)")

    # Step 2: stream updates; each one repairs only the affected state.
    updates = [
        ("add", 0, 7),     # a second bridge between the communities
        ("add", 1, 5),     # and a third
        ("remove", 3, 4),  # the original bridge disappears
        ("add", 8, 0),     # a brand-new vertex joins the left community
    ]
    for kind, u, v in updates:
        if kind == "add":
            result = framework.add_edge(u, v)
        else:
            result = framework.remove_edge(u, v)
        print_top(framework, f"after {kind} ({u}, {v})")
        print(
            f"    sources skipped: {result.sources_skipped}/{result.sources_processed}"
            f" ({100 * result.skip_fraction:.0f}%), "
            f"update took {1000 * (result.elapsed_seconds or 0):.2f} ms"
        )

    # Sanity: the maintained scores equal a from-scratch recomputation.
    reference = brandes_betweenness(framework.graph)
    worst = max(
        abs(framework.vertex_score(v) - reference.vertex_scores[v])
        for v in framework.graph.vertices()
    )
    print(f"\nmax difference vs. from-scratch Brandes: {worst:.2e}")


if __name__ == "__main__":
    main()
