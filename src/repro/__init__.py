"""repro — Scalable online betweenness centrality in evolving graphs.

A from-scratch Python reproduction of Kourtellis, De Francisci Morales and
Bonchi, *Scalable Online Betweenness Centrality in Evolving Graphs*
(ICDE 2016).  The library maintains exact vertex and edge betweenness
centrality of an evolving, unweighted graph under a stream of edge
additions and removals, with in-memory or out-of-core storage of the
per-source data and an embarrassingly-parallel execution model.

Quickstart
----------
>>> from repro import Graph, IncrementalBetweenness
>>> g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])
>>> ibc = IncrementalBetweenness(g)
>>> _ = ibc.add_edge(0, 4)          # close the path into a cycle
>>> _ = ibc.remove_edge(2, 3)       # and break it somewhere else
>>> scores = ibc.vertex_betweenness()
"""

from repro.algorithms import (
    RecomputeBetweenness,
    approximate_betweenness,
    brandes_betweenness,
    edge_betweenness,
    vertex_betweenness,
)
from repro.core import (
    EdgeUpdate,
    IncrementalBetweenness,
    UpdateKind,
    UpdateResult,
)
from repro.graph import Graph
from repro.storage import DiskBDStore, InMemoryBDStore

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "IncrementalBetweenness",
    "EdgeUpdate",
    "UpdateKind",
    "UpdateResult",
    "RecomputeBetweenness",
    "brandes_betweenness",
    "vertex_betweenness",
    "edge_betweenness",
    "approximate_betweenness",
    "InMemoryBDStore",
    "DiskBDStore",
    "__version__",
]
