"""repro — Scalable online betweenness centrality in evolving graphs.

A from-scratch Python reproduction of Kourtellis, De Francisci Morales and
Bonchi, *Scalable Online Betweenness Centrality in Evolving Graphs*
(ICDE 2016).  The library maintains exact vertex and edge betweenness
centrality of an evolving, unweighted graph under a stream of edge
additions and removals, with in-memory or out-of-core storage of the
per-source data and an embarrassingly-parallel execution model.

The supported public surface is documented in ``docs/api.md``; the
recommended entry point is the unified session API:

>>> from repro import BetweennessConfig, BetweennessSession, Graph, additions
>>> g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])
>>> config = BetweennessConfig(backend="arrays", store="arrays://", batch_size=2)
>>> with BetweennessSession(g, config) as session:
...     for event in session.stream(additions([(0, 4), (1, 3)])):
...         pass
...     top = session.top_k(3)

The engine classes (:class:`IncrementalBetweenness`, the stores, the
parallel drivers) remain importable for advanced use.
"""

from repro.algorithms import (
    RecomputeBetweenness,
    approximate_betweenness,
    brandes_betweenness,
    edge_betweenness,
    vertex_betweenness,
)
from repro.api import (
    BatchApplied,
    BetweennessConfig,
    BetweennessSession,
    BootstrapCompleted,
    CheckpointWritten,
    SessionClosed,
    SessionEvent,
    SessionSnapshot,
    SessionSubscriber,
    ShardRecovered,
    TopKSnapshot,
    TopKTracker,
    UpdateApplied,
    WorkerFailed,
    open_session,
    resume_session,
)
from repro.core import (
    BatchResult,
    EdgeUpdate,
    FrameworkCheckpoint,
    IncrementalBetweenness,
    UpdateKind,
    UpdateResult,
    additions,
    batches,
    removals,
)
from repro.exceptions import ConfigurationError, ReproError
from repro.graph import Graph
from repro.storage import (
    ArrayBDStore,
    BDStore,
    DiskBDStore,
    InMemoryBDStore,
    StoreURI,
    create_store,
    parse_store_uri,
    register_store_scheme,
    registered_store_schemes,
)

__version__ = "1.1.0"

__all__ = [
    # graph + core engine
    "Graph",
    "IncrementalBetweenness",
    "EdgeUpdate",
    "UpdateKind",
    "UpdateResult",
    "BatchResult",
    "FrameworkCheckpoint",
    "additions",
    "removals",
    "batches",
    # unified session API
    "BetweennessConfig",
    "BetweennessSession",
    "SessionSnapshot",
    "open_session",
    "resume_session",
    "SessionEvent",
    "BootstrapCompleted",
    "UpdateApplied",
    "BatchApplied",
    "CheckpointWritten",
    "WorkerFailed",
    "ShardRecovered",
    "SessionClosed",
    "SessionSubscriber",
    "TopKTracker",
    "TopKSnapshot",
    # offline algorithms
    "RecomputeBetweenness",
    "brandes_betweenness",
    "vertex_betweenness",
    "edge_betweenness",
    "approximate_betweenness",
    # storage backends + store URIs
    "BDStore",
    "InMemoryBDStore",
    "ArrayBDStore",
    "DiskBDStore",
    "StoreURI",
    "create_store",
    "parse_store_uri",
    "register_store_scheme",
    "registered_store_schemes",
    # errors
    "ReproError",
    "ConfigurationError",
    "__version__",
]
