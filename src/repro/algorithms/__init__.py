"""Static (from-scratch) betweenness centrality algorithms.

These are the building blocks and baselines of the paper:

* :func:`brandes_vertex_betweenness` — the classic Brandes algorithm with
  predecessor lists (the "MP" configuration of Section 6.1).
* :func:`brandes_betweenness` — the modified Brandes of Section 3 that
  computes vertex *and* edge betweenness in one pass and can run without
  predecessor lists (the "MO" configuration); it also materialises the
  per-source betweenness data ``BD[s]`` needed by the incremental framework.
* :func:`brute_force_betweenness` — an exponential path-enumeration oracle
  used only for testing on tiny graphs.
* :func:`approximate_betweenness` — source-sampled estimation (Brandes-Pich
  style), included because the paper discusses it as the main alternative.
* :class:`RecomputeBetweenness` — the dynamic baseline that recomputes from
  scratch after every update; the denominator of every speedup in Section 6.
"""

from repro.algorithms.brandes import (
    BrandesResult,
    brandes_betweenness,
    brandes_vertex_betweenness,
    edge_betweenness,
    vertex_betweenness,
)
from repro.algorithms.brute_force import brute_force_betweenness
from repro.algorithms.approximate import approximate_betweenness
from repro.algorithms.baseline import RecomputeBetweenness
from repro.algorithms.other_centrality import closeness_centrality, degree_centrality
from repro.algorithms.parallel_brandes import parallel_brandes_betweenness

__all__ = [
    "BrandesResult",
    "brandes_betweenness",
    "brandes_vertex_betweenness",
    "edge_betweenness",
    "vertex_betweenness",
    "brute_force_betweenness",
    "approximate_betweenness",
    "RecomputeBetweenness",
    "closeness_centrality",
    "degree_centrality",
    "parallel_brandes_betweenness",
]
