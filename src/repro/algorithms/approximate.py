"""Source-sampled approximation of betweenness centrality.

The paper's related-work discussion (Section 1) cites randomized
approximations (Brandes & Pich 2007; Riondato & Kornaropoulos 2014) as the
usual escape hatch from the O(nm) cost, and notes that their accuracy
degrades on large graphs.  This module implements the classic source
sampling estimator so the trade-off can be explored within this repository:
sample ``k`` sources uniformly at random, run single-source Brandes from
each, and rescale the accumulated dependencies by ``n / k``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.algorithms.brandes import single_source_brandes
from repro.exceptions import ConfigurationError
from repro.graph.graph import Graph
from repro.types import EdgeScores, VertexScores, canonical_edge
from repro.utils.rng import RandomLike, ensure_rng


def approximate_betweenness(
    graph: Graph,
    num_sources: int,
    rng: RandomLike = None,
    include_edges: bool = True,
) -> Tuple[VertexScores, Optional[EdgeScores]]:
    """Estimate vertex (and optionally edge) betweenness from sampled sources.

    Parameters
    ----------
    graph:
        Input graph.
    num_sources:
        Number of sources to sample (without replacement).  Must be between
        1 and ``graph.num_vertices``.
    rng:
        Seed or random generator for source sampling.
    include_edges:
        Also estimate edge betweenness (returned as the second element;
        ``None`` when disabled).

    Returns
    -------
    (vertex_scores, edge_scores):
        Unbiased estimates of the exact scores (scaled by ``n / k``).
    """
    n = graph.num_vertices
    if n == 0:
        return {}, ({} if include_edges else None)
    if not 1 <= num_sources <= n:
        raise ConfigurationError(
            f"num_sources must be in [1, {n}], got {num_sources}"
        )
    generator = ensure_rng(rng)
    sources = generator.sample(graph.vertex_list(), num_sources)
    scale = n / num_sources

    vertex_scores: VertexScores = {v: 0.0 for v in graph.vertices()}
    edge_scores: Optional[EdgeScores] = None
    if include_edges:
        edge_scores = {}
        for u, v in graph.edges():
            key = (u, v) if graph.directed else canonical_edge(u, v)
            edge_scores[key] = 0.0

    for source in sources:
        data, edge_contrib = single_source_brandes(graph, source)
        for vertex, dependency in data.delta.items():
            if vertex != source:
                vertex_scores[vertex] += dependency * scale
        if edge_scores is not None:
            for edge, contribution in edge_contrib.items():
                # Every key produced by single_source_brandes is a canonical
                # edge of the graph, and edge_scores was prefilled with all
                # of them — index directly so that a non-canonical or stale
                # key surfaces as a KeyError instead of being silently
                # absorbed by a .get(..., 0.0) fallback into a fresh entry.
                edge_scores[edge] = edge_scores[edge] + contribution * scale
    return vertex_scores, edge_scores
