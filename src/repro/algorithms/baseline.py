"""Recompute-from-scratch dynamic baseline.

Every speedup the paper reports is relative to running Brandes' algorithm
from scratch after each edge update.  :class:`RecomputeBetweenness` wraps
that baseline behind the same interface as the incremental framework
(:class:`repro.core.framework.IncrementalBetweenness`), so experiment code
can swap one for the other and the speedup harness can time both fairly.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.brandes import BrandesResult, brandes_betweenness
from repro.exceptions import UpdateError
from repro.graph.graph import Graph
from repro.types import Edge, EdgeScores, Vertex, VertexScores, canonical_edge


class RecomputeBetweenness:
    """Dynamic betweenness baseline that recomputes after every update.

    Parameters
    ----------
    graph:
        The initial graph.  The instance keeps its own copy so callers can
        keep mutating the original independently.
    keep_predecessors:
        Whether the underlying Brandes runs use predecessor lists; kept as a
        knob so the baseline matches whichever static variant is being
        compared against.
    """

    def __init__(self, graph: Graph, keep_predecessors: bool = False) -> None:
        self._graph = graph.copy()
        self._keep_predecessors = keep_predecessors
        self._result: Optional[BrandesResult] = None
        self._recompute()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> Graph:
        """The current graph (do not mutate directly; use add/remove edge)."""
        return self._graph

    def vertex_betweenness(self) -> VertexScores:
        """Current vertex betweenness scores."""
        return dict(self._result.vertex_scores)

    def edge_betweenness(self) -> EdgeScores:
        """Current edge betweenness scores."""
        return dict(self._result.edge_scores)

    def vertex_score(self, vertex: Vertex) -> float:
        """Score of a single vertex."""
        return self._result.vertex_scores[vertex]

    def edge_score(self, u: Vertex, v: Vertex) -> float:
        """Score of a single edge."""
        return self._result.edge_scores[self._edge_key(u, v)]

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add an edge and recompute all scores from scratch."""
        if self._graph.has_edge(u, v):
            raise UpdateError(f"edge ({u!r}, {v!r}) already present")
        self._graph.add_edge(u, v)
        self._recompute()

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove an edge and recompute all scores from scratch."""
        if not self._graph.has_edge(u, v):
            raise UpdateError(f"edge ({u!r}, {v!r}) not present")
        self._graph.remove_edge(u, v)
        self._recompute()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _edge_key(self, u: Vertex, v: Vertex) -> Edge:
        if self._graph.directed:
            return (u, v)
        return canonical_edge(u, v)

    def _recompute(self) -> None:
        self._result = brandes_betweenness(
            self._graph, keep_predecessors=self._keep_predecessors
        )
