"""Brandes' algorithm and the paper's modified variant.

Two implementations are provided:

* :func:`brandes_vertex_betweenness` follows Brandes (2001) exactly,
  building a predecessor list during the BFS and backtracking over it.  This
  is the "MP" (in Memory, with Predecessors) configuration of Section 6.1.

* :func:`brandes_betweenness` is the modified algorithm of Section 3: it
  simultaneously accumulates vertex and edge betweenness, optionally skips
  the predecessor lists (scanning neighbors and using the distance level to
  identify predecessors during backtracking — the "MO" configuration), and
  can return the per-source betweenness data ``BD[s] = (d, sigma, delta)``
  required to bootstrap the incremental framework (Step 1 of Figure 1).

Both run in O(nm) time on unweighted graphs.  Scores follow Definitions 2.1
and 2.2 of the paper: pairs are ordered, so on undirected graphs every
unordered pair contributes twice (no halving is applied), matching the
values the incremental framework maintains.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.exceptions import ConfigurationError
from repro.graph.graph import Graph
from repro.types import (
    Edge,
    EdgeScores,
    Vertex,
    VertexScores,
    canonical_edge,
    validate_backend,
)


@dataclass
class SourceData:
    """Per-source betweenness data ``BD[s]`` (Section 3 of the paper).

    Attributes
    ----------
    distance:
        ``BD[s].d[t]`` — hop distance from the source to ``t``.
    sigma:
        ``BD[s].sigma[t]`` — number of shortest paths from the source to ``t``.
    delta:
        ``BD[s].delta[t]`` — dependency accumulated on ``t`` while
        backtracking towards the source.

    Unreachable vertices are simply absent from the dictionaries.
    """

    source: Vertex
    distance: Dict[Vertex, int] = field(default_factory=dict)
    sigma: Dict[Vertex, int] = field(default_factory=dict)
    delta: Dict[Vertex, float] = field(default_factory=dict)


@dataclass
class BrandesResult:
    """Output of a full Brandes run.

    ``vertex_scores`` and ``edge_scores`` follow Definitions 2.1/2.2;
    ``source_data`` is only populated when requested and maps every source
    to its :class:`SourceData` (the ``BD[.]`` structure of the paper).
    """

    vertex_scores: VertexScores
    edge_scores: EdgeScores
    source_data: Optional[Dict[Vertex, SourceData]] = None


def _edge_key(graph: Graph, u: Vertex, v: Vertex) -> Edge:
    """Canonical score key for the edge (u, v)."""
    if graph.directed:
        return (u, v)
    return canonical_edge(u, v)


def single_source_brandes(
    graph: Graph,
    source: Vertex,
    keep_predecessors: bool = False,
) -> Tuple[SourceData, Dict[Edge, float]]:
    """Run the search + accumulation phases for a single source.

    Returns the per-source data ``BD[s]`` and the per-source edge dependency
    contributions (keyed by canonical edge).  The vertex dependency is
    ``BD[s].delta``; the caller aggregates over sources.
    """
    data = SourceData(source=source)
    distance = data.distance
    sigma = data.sigma
    delta = data.delta

    distance[source] = 0
    sigma[source] = 1
    order: List[Vertex] = []
    predecessors: Optional[Dict[Vertex, List[Vertex]]] = (
        {source: []} if keep_predecessors else None
    )

    queue: deque[Vertex] = deque([source])
    while queue:
        vertex = queue.popleft()
        order.append(vertex)
        vertex_distance = distance[vertex]
        vertex_sigma = sigma[vertex]
        for neighbor in graph.out_neighbors(vertex):
            if neighbor not in distance:
                distance[neighbor] = vertex_distance + 1
                sigma[neighbor] = 0
                if predecessors is not None:
                    predecessors[neighbor] = []
                queue.append(neighbor)
            if distance[neighbor] == vertex_distance + 1:
                sigma[neighbor] += vertex_sigma
                if predecessors is not None:
                    predecessors[neighbor].append(vertex)

    for vertex in order:
        delta[vertex] = 0.0

    edge_contrib: Dict[Edge, float] = {}
    # Dependency accumulation, in reverse BFS order (deepest level first).
    for vertex in reversed(order):
        if vertex == source:
            continue
        coefficient = (1.0 + delta[vertex]) / sigma[vertex]
        if predecessors is not None:
            parents: Iterable[Vertex] = predecessors[vertex]
        else:
            # Predecessor-free variant: scan all neighbors and use the level
            # in the shortest-path DAG to identify predecessors (Section 3).
            parent_level = distance[vertex] - 1
            parents = (
                neighbor
                for neighbor in graph.in_neighbors(vertex)
                if distance.get(neighbor) == parent_level
            )
        for parent in parents:
            contribution = sigma[parent] * coefficient
            delta[parent] += contribution
            key = _edge_key(graph, parent, vertex)
            edge_contrib[key] = edge_contrib.get(key, 0.0) + contribution
    return data, edge_contrib


def brandes_betweenness(
    graph: Graph,
    sources: Optional[Iterable[Vertex]] = None,
    keep_predecessors: bool = False,
    collect_source_data: bool = False,
    backend: str = "dicts",
) -> BrandesResult:
    """Compute vertex and edge betweenness centrality.

    Parameters
    ----------
    graph:
        Input graph (directed or undirected).
    sources:
        Optional subset of sources to accumulate over; defaults to all
        vertices (the exact betweenness).  Restricting the sources yields the
        partial scores used by the parallel/MapReduce embodiment.
    keep_predecessors:
        Use the original predecessor lists (``True``) or the paper's
        predecessor-free backtracking (``False``, default).
    collect_source_data:
        When ``True``, return ``BD[s]`` for every processed source; this is
        Step 1 of the framework (Figure 1).
    backend:
        ``"dicts"`` (default) runs the scalar dictionary implementation;
        ``"arrays"`` delegates to the vectorized CSR kernel
        (:func:`repro.core.kernel.brandes_betweenness_arrays`), which
        returns bit-identical scores — on directed graphs too — without
        predecessor lists (its only supported configuration).
    """
    if validate_backend(backend) == "arrays":
        if keep_predecessors:
            raise ConfigurationError(
                "the arrays backend implements only the predecessor-free "
                "variant (keep_predecessors=False)"
            )
        # Imported lazily: core.kernel depends on this module's SourceData.
        from repro.core.kernel import brandes_betweenness_arrays

        return brandes_betweenness_arrays(
            graph, sources=sources, collect_source_data=collect_source_data
        )
    vertex_scores: VertexScores = {v: 0.0 for v in graph.vertices()}
    edge_scores: EdgeScores = {_edge_key(graph, u, v): 0.0 for u, v in graph.edges()}
    all_source_data: Optional[Dict[Vertex, SourceData]] = (
        {} if collect_source_data else None
    )

    source_list = list(sources) if sources is not None else graph.vertex_list()
    for source in source_list:
        data, edge_contrib = single_source_brandes(
            graph, source, keep_predecessors=keep_predecessors
        )
        for vertex, dependency in data.delta.items():
            if vertex != source:
                vertex_scores[vertex] += dependency
        for edge, contribution in edge_contrib.items():
            edge_scores[edge] = edge_scores.get(edge, 0.0) + contribution
        if all_source_data is not None:
            all_source_data[source] = data
    return BrandesResult(
        vertex_scores=vertex_scores,
        edge_scores=edge_scores,
        source_data=all_source_data,
    )


def brandes_vertex_betweenness(
    graph: Graph, keep_predecessors: bool = True
) -> VertexScores:
    """Classic Brandes vertex betweenness (predecessor lists by default)."""
    result = brandes_betweenness(graph, keep_predecessors=keep_predecessors)
    return result.vertex_scores


def vertex_betweenness(graph: Graph) -> VertexScores:
    """Vertex betweenness centrality of every vertex (Definition 2.1)."""
    return brandes_betweenness(graph).vertex_scores


def edge_betweenness(graph: Graph) -> EdgeScores:
    """Edge betweenness centrality of every edge (Definition 2.2)."""
    return brandes_betweenness(graph).edge_scores
