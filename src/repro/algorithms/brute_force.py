"""Brute-force betweenness centrality by explicit shortest-path enumeration.

This oracle is exponential in the worst case and must only be used on tiny
graphs.  It exists so that the Brandes implementations (and, transitively,
the incremental framework) can be validated against an implementation whose
correctness is obvious from Definitions 2.1 and 2.2.
"""

from __future__ import annotations

from typing import Tuple

from repro.graph.graph import Graph
from repro.graph.traversal import single_source_shortest_paths
from repro.types import EdgeScores, VertexScores, canonical_edge


def brute_force_betweenness(graph: Graph) -> Tuple[VertexScores, EdgeScores]:
    """Compute exact vertex and edge betweenness by path enumeration.

    Every ordered pair ``(s, t)`` with ``s != t`` contributes
    ``sigma(s, t | v) / sigma(s, t)`` to each intermediate vertex ``v`` and
    ``sigma(s, t | e) / sigma(s, t)`` to each traversed edge ``e``.
    """
    vertex_scores: VertexScores = {v: 0.0 for v in graph.vertices()}
    edge_scores: EdgeScores = {}
    for u, v in graph.edges():
        key = (u, v) if graph.directed else canonical_edge(u, v)
        edge_scores[key] = 0.0

    vertices = graph.vertex_list()
    for source in vertices:
        for target in vertices:
            if source == target:
                continue
            paths = single_source_shortest_paths(graph, source, target)
            if not paths:
                continue
            weight = 1.0 / len(paths)
            for path in paths:
                for vertex in path[1:-1]:
                    vertex_scores[vertex] += weight
                for a, b in zip(path, path[1:]):
                    key = (a, b) if graph.directed else canonical_edge(a, b)
                    edge_scores[key] += weight
    return vertex_scores, edge_scores
