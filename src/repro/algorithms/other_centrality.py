"""Cheaper centrality measures used as (poor) proxies for betweenness.

Section 1 of the paper argues that, unlike PageRank (for which degree is a
reasonable stand-in), betweenness centrality has no cheap proxy that
correlates well with it [5], which is why an incremental exact algorithm is
worth having.  This module provides the two obvious candidate proxies —
degree and closeness centrality — so that claim can be checked empirically
with :mod:`repro.analysis.correlation`.
"""

from __future__ import annotations

from typing import Dict

from repro.graph.graph import Graph
from repro.graph.traversal import bfs_distances
from repro.types import Vertex


def degree_centrality(graph: Graph, normalized: bool = True) -> Dict[Vertex, float]:
    """Degree centrality of every vertex.

    With ``normalized=True`` degrees are divided by ``n - 1`` (the maximum
    possible degree), the usual convention.
    """
    n = graph.num_vertices
    scale = 1.0 / (n - 1) if normalized and n > 1 else 1.0
    return {vertex: graph.degree(vertex) * scale for vertex in graph.vertices()}


def closeness_centrality(graph: Graph, normalized: bool = True) -> Dict[Vertex, float]:
    """Closeness centrality of every vertex (Wasserman-Faust variant).

    For a vertex ``v`` that reaches ``r - 1`` other vertices with total
    distance ``D``, the closeness is ``(r - 1) / D``; with
    ``normalized=True`` it is additionally scaled by ``(r - 1) / (n - 1)``
    so that scores remain comparable across components of different sizes.
    Isolated vertices get 0.
    """
    n = graph.num_vertices
    scores: Dict[Vertex, float] = {}
    for vertex in graph.vertices():
        distances = bfs_distances(graph, vertex)
        reachable = len(distances) - 1
        total = sum(distances.values())
        if reachable <= 0 or total <= 0:
            scores[vertex] = 0.0
            continue
        closeness = reachable / total
        if normalized and n > 1:
            closeness *= reachable / (n - 1)
        scores[vertex] = closeness
    return scores
