"""Multiprocess static Brandes (source-parallel, Bader & Madduri style).

The paper's related work notes that the standard answer to Brandes' O(nm)
cost is to parallelise over sources [4].  This module provides that baseline
for the *static* computation: the source set is split into chunks, each
chunk is processed in a separate worker process, and the partial vertex and
edge scores are summed.  It is useful both as a faster bootstrap for Step 1
of the incremental framework on multi-core machines and as a reference point
for the parallel experiments.

The graph is pickled once per worker (processes do not share memory); for
the graph sizes this pure-Python reproduction targets, that cost is
negligible compared to the traversals themselves.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.algorithms.brandes import BrandesResult, brandes_betweenness
from repro.exceptions import ConfigurationError
from repro.graph.graph import Graph
from repro.storage.partition import partition_sources
from repro.types import EdgeScores, Vertex, VertexScores

# Module-level worker function so it can be pickled by multiprocessing.
def _worker(payload: Tuple[Graph, Sequence[Vertex], bool]) -> Tuple[VertexScores, EdgeScores]:
    graph, sources, keep_predecessors = payload
    result = brandes_betweenness(
        graph, sources=sources, keep_predecessors=keep_predecessors
    )
    return result.vertex_scores, result.edge_scores


def parallel_brandes_betweenness(
    graph: Graph,
    num_workers: int = 2,
    keep_predecessors: bool = False,
    chunks_per_worker: int = 1,
    executor: Optional[ProcessPoolExecutor] = None,
) -> BrandesResult:
    """Compute exact vertex and edge betweenness using worker processes.

    Parameters
    ----------
    graph:
        Input graph (directed or undirected).
    num_workers:
        Number of worker processes (1 falls back to the sequential code path
        without spawning any process).
    keep_predecessors:
        Forwarded to the underlying Brandes runs.
    chunks_per_worker:
        Number of source chunks per worker; more chunks improve load balance
        at the cost of more (cheap) task dispatches.
    executor:
        Optionally reuse an existing :class:`ProcessPoolExecutor`.
    """
    if num_workers < 1:
        raise ConfigurationError(f"num_workers must be >= 1, got {num_workers}")
    if chunks_per_worker < 1:
        raise ConfigurationError(
            f"chunks_per_worker must be >= 1, got {chunks_per_worker}"
        )
    if num_workers == 1:
        return brandes_betweenness(graph, keep_predecessors=keep_predecessors)

    sources = graph.vertex_list()
    partitions = partition_sources(sources, num_workers * chunks_per_worker)
    payloads = [
        (graph, list(partition.sources), keep_predecessors)
        for partition in partitions
        if len(partition) > 0
    ]

    vertex_scores: VertexScores = {v: 0.0 for v in graph.vertices()}
    edge_scores: EdgeScores = {}

    def merge(partials: List[Tuple[VertexScores, EdgeScores]]) -> None:
        for partial_vertex, partial_edge in partials:
            for key, value in partial_vertex.items():
                vertex_scores[key] = vertex_scores.get(key, 0.0) + value
            for key, value in partial_edge.items():
                edge_scores[key] = edge_scores.get(key, 0.0) + value

    if executor is not None:
        merge(list(executor.map(_worker, payloads)))
    else:
        with ProcessPoolExecutor(max_workers=num_workers) as pool:
            merge(list(pool.map(_worker, payloads)))
    return BrandesResult(vertex_scores=vertex_scores, edge_scores=edge_scores)
