"""Measurement harness and reporting helpers for the evaluation (Section 6).

This package turns raw runs of the framework into the artefacts the paper
reports: per-edge speedups over Brandes (Figures 5-6, Tables 3-4), dataset
profiles (Table 2), online-capacity summaries (Table 5) and formatted ASCII
tables used by the benchmark harness.
"""

from repro.analysis.speedup import (
    SpeedupSeries,
    Variant,
    build_framework,
    measure_brandes_seconds,
    measure_stream_speedups,
    variant_config,
)
from repro.analysis.tables import (
    format_table,
    related_work_table,
    speedup_summary_rows,
    table2_rows,
)
from repro.analysis.correlation import (
    RankingComparison,
    compare_rankings,
    kendall_tau,
    mean_absolute_error,
    spearman_correlation,
    top_k_overlap,
)
from repro.analysis.reporting import ExperimentReport, compare_payload_keys, load_report

__all__ = [
    "Variant",
    "SpeedupSeries",
    "build_framework",
    "variant_config",
    "measure_brandes_seconds",
    "measure_stream_speedups",
    "format_table",
    "related_work_table",
    "table2_rows",
    "speedup_summary_rows",
    "RankingComparison",
    "compare_rankings",
    "kendall_tau",
    "mean_absolute_error",
    "spearman_correlation",
    "top_k_overlap",
    "ExperimentReport",
    "load_report",
    "compare_payload_keys",
]
