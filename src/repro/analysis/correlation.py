"""Rank-correlation utilities for comparing centrality score vectors.

The paper's introduction motivates the incremental approach by arguing that
(1) sampling-based approximations lose accuracy as graphs grow and (2) no
cheaper measure (e.g. degree) is a good proxy for betweenness [5].  These
helpers quantify both statements within this repository: they compare two
score assignments by Spearman's rho, Kendall's tau and top-k overlap —
exactly the metrics commonly used to evaluate approximate betweenness.

All functions accept plain ``{key: score}`` dictionaries so they work for
vertex scores, edge scores, or any other ranking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

from repro.exceptions import ConfigurationError

Scores = Dict[Hashable, float]


def _common_keys(a: Scores, b: Scores) -> List[Hashable]:
    keys = sorted(set(a) & set(b), key=repr)
    if len(keys) < 2:
        raise ConfigurationError(
            "need at least two common keys to compute a rank correlation"
        )
    return keys


def _ranks(values: Sequence[float]) -> List[float]:
    """Fractional ranks (ties get the average of their positions)."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        average_rank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = average_rank
        i = j + 1
    return ranks


def spearman_correlation(a: Scores, b: Scores) -> float:
    """Spearman's rho between two score assignments (on their common keys)."""
    keys = _common_keys(a, b)
    ranks_a = _ranks([a[k] for k in keys])
    ranks_b = _ranks([b[k] for k in keys])
    n = len(keys)
    mean_a = sum(ranks_a) / n
    mean_b = sum(ranks_b) / n
    cov = sum((x - mean_a) * (y - mean_b) for x, y in zip(ranks_a, ranks_b))
    var_a = sum((x - mean_a) ** 2 for x in ranks_a)
    var_b = sum((y - mean_b) ** 2 for y in ranks_b)
    if var_a == 0 or var_b == 0:
        # A constant ranking carries no ordering information; by convention
        # report zero correlation rather than dividing by zero.
        return 0.0
    return cov / (var_a * var_b) ** 0.5


def kendall_tau(a: Scores, b: Scores) -> float:
    """Kendall's tau-b between two score assignments (tie-corrected)."""
    keys = _common_keys(a, b)
    xs = [a[k] for k in keys]
    ys = [b[k] for k in keys]
    n = len(keys)
    concordant = discordant = 0
    ties_x = ties_y = 0
    for i in range(n):
        for j in range(i + 1, n):
            dx = xs[i] - xs[j]
            dy = ys[i] - ys[j]
            if dx == 0 and dy == 0:
                continue
            if dx == 0:
                ties_x += 1
            elif dy == 0:
                ties_y += 1
            elif (dx > 0) == (dy > 0):
                concordant += 1
            else:
                discordant += 1
    denominator = (
        (concordant + discordant + ties_x) * (concordant + discordant + ties_y)
    ) ** 0.5
    if denominator == 0:
        return 0.0
    return (concordant - discordant) / denominator


def top_k_overlap(a: Scores, b: Scores, k: int) -> float:
    """Jaccard overlap of the top-k keys of the two score assignments."""
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    top_a = {key for key, _ in sorted(a.items(), key=lambda kv: (-kv[1], repr(kv[0])))[:k]}
    top_b = {key for key, _ in sorted(b.items(), key=lambda kv: (-kv[1], repr(kv[0])))[:k]}
    union = top_a | top_b
    if not union:
        return 1.0
    return len(top_a & top_b) / len(union)


def mean_absolute_error(a: Scores, b: Scores) -> float:
    """Mean absolute difference over the union of keys (missing = 0)."""
    keys = set(a) | set(b)
    if not keys:
        return 0.0
    return sum(abs(a.get(k, 0.0) - b.get(k, 0.0)) for k in keys) / len(keys)


@dataclass(frozen=True)
class RankingComparison:
    """Bundle of agreement metrics between two score assignments."""

    spearman: float
    kendall: float
    top_k: int
    top_k_overlap: float
    mean_absolute_error: float

    def as_row(self) -> Tuple[float, float, float, float]:
        """Return (spearman, kendall, top-k overlap, MAE)."""
        return (
            round(self.spearman, 4),
            round(self.kendall, 4),
            round(self.top_k_overlap, 4),
            round(self.mean_absolute_error, 4),
        )


def compare_rankings(a: Scores, b: Scores, k: int = 10) -> RankingComparison:
    """Compute all agreement metrics between two score assignments."""
    return RankingComparison(
        spearman=spearman_correlation(a, b),
        kendall=kendall_tau(a, b),
        top_k=k,
        top_k_overlap=top_k_overlap(a, b, k),
        mean_absolute_error=mean_absolute_error(a, b),
    )
