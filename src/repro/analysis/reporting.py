"""Persist experiment results as JSON reports.

The benchmark harness prints human-readable tables; this module provides the
machine-readable counterpart so results can be archived, diffed between runs
and plotted externally.  A report is a plain dictionary with a small header
(experiment id, parameters, library version) and an arbitrary JSON-friendly
payload (rows, series, summaries).
"""

from __future__ import annotations

import json
import platform
from dataclasses import asdict, dataclass, field, is_dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro import __version__
from repro.exceptions import ConfigurationError

PathLike = Union[str, Path]


def _jsonable(value: Any) -> Any:
    """Convert dataclasses / tuples / sets into JSON-serialisable values."""
    if is_dataclass(value) and not isinstance(value, type):
        return {key: _jsonable(item) for key, item in asdict(value).items()}
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


@dataclass
class ExperimentReport:
    """A named, parameterised experiment result ready to be serialised."""

    experiment: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    payload: Dict[str, Any] = field(default_factory=dict)
    library_version: str = __version__
    python_version: str = field(default_factory=platform.python_version)

    def add(self, key: str, value: Any) -> None:
        """Attach one payload entry (converted to JSON-friendly form)."""
        self.payload[key] = _jsonable(value)

    def to_dict(self) -> Dict[str, Any]:
        """The full report as a plain dictionary."""
        return {
            "experiment": self.experiment,
            "parameters": _jsonable(self.parameters),
            "library_version": self.library_version,
            "python_version": self.python_version,
            "payload": _jsonable(self.payload),
        }

    def save(self, path: PathLike) -> Path:
        """Write the report as pretty-printed JSON and return the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return target


def load_report(path: PathLike) -> ExperimentReport:
    """Read a report previously written by :meth:`ExperimentReport.save`."""
    with open(path, "r", encoding="utf-8") as handle:
        raw = json.load(handle)
    for key in ("experiment", "payload", "parameters"):
        if key not in raw:
            raise ConfigurationError(f"malformed report {path!r}: missing {key!r}")
    report = ExperimentReport(
        experiment=raw["experiment"],
        parameters=raw.get("parameters", {}),
        payload=raw.get("payload", {}),
        library_version=raw.get("library_version", "unknown"),
        python_version=raw.get("python_version", "unknown"),
    )
    return report


def compare_payload_keys(
    before: ExperimentReport, after: ExperimentReport
) -> Dict[str, str]:
    """Classify payload keys as added / removed / changed / unchanged.

    Useful for spotting regressions between two archived runs of the same
    experiment.
    """
    if before.experiment != after.experiment:
        raise ConfigurationError(
            "cannot compare reports of different experiments: "
            f"{before.experiment!r} vs {after.experiment!r}"
        )
    verdicts: Dict[str, str] = {}
    keys = set(before.payload) | set(after.payload)
    for key in keys:
        if key not in before.payload:
            verdicts[key] = "added"
        elif key not in after.payload:
            verdicts[key] = "removed"
        elif before.payload[key] != after.payload[key]:
            verdicts[key] = "changed"
        else:
            verdicts[key] = "unchanged"
    return verdicts
