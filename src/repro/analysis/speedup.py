"""Per-edge speedup measurement over the Brandes baseline.

Every speedup in the paper's evaluation is defined the same way: the time
Brandes' algorithm needs to recompute betweenness from scratch on the
updated graph, divided by the time the incremental framework needs to repair
its state for the same update.  This module measures both sides and packages
the per-edge speedups so that the benchmark harness can print CDFs
(Figures 5-6) and min/median/max summaries (Tables 3-4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.algorithms.brandes import brandes_betweenness
from repro.api.config import BetweennessConfig
from repro.api.session import BetweennessSession
from repro.core.framework import IncrementalBetweenness
from repro.core.result import UpdateResult
from repro.core.updates import EdgeUpdate, batches
from repro.exceptions import ConfigurationError
from repro.graph.graph import Graph
from repro.utils.stats import SummaryStats, empirical_cdf, summarize
from repro.utils.timing import Timer, timed


class Variant(enum.Enum):
    """The three framework configurations compared in Figure 5.

    * ``MP`` — in memory, maintaining predecessor lists (original Brandes
      data structures);
    * ``MO`` — in memory, no predecessor lists (the paper's memory
      optimisation);
    * ``DO`` — on disk (out of core), no predecessor lists.
    """

    MP = "MP"
    MO = "MO"
    DO = "DO"


def variant_config(
    variant: Variant = Variant.MO,
    directed: bool = False,
    backend: str = "dicts",
    batch_size: int = 1,
    disk_path: Optional[Path] = None,
    checkpoint_path: Optional[Path] = None,
) -> BetweennessConfig:
    """Translate one of the paper's MP / MO / DO variants into a config.

    MP maintains predecessor lists in memory, MO is the in-memory
    no-predecessor configuration, DO stores the records out of core (at
    ``disk_path``, or a temporary file when absent).  The returned config is
    a plain :class:`~repro.api.config.BetweennessConfig` — everything else
    (store URI resolution, session construction) goes through the unified
    service layer.
    """
    if not isinstance(variant, Variant):
        raise ConfigurationError(f"unknown variant {variant!r}")
    if variant is not Variant.DO and disk_path is not None:
        raise ConfigurationError("disk_path only applies to the DO variant")
    if variant is Variant.DO:
        store = f"disk:{disk_path}" if disk_path is not None else "disk://"
    else:
        store = "memory://"
    return BetweennessConfig(
        backend=backend,
        directed=directed,
        batch_size=batch_size,
        store=store,
        maintain_predecessors=variant is Variant.MP,
        checkpoint_path=str(checkpoint_path) if checkpoint_path else None,
    )


def build_framework(
    graph: Graph,
    variant: Variant = Variant.MO,
    disk_path: Optional[Path] = None,
    backend: str = "dicts",
) -> IncrementalBetweenness:
    """Instantiate the framework in one of the paper's three configurations.

    For the DO variant, ``disk_path`` must be empty or absent: the store is
    created fresh there (and refuses — via
    :class:`~repro.exceptions.StoreExistsError` — to truncate an existing
    one).  Resuming from an existing store needs the graph state its records
    describe, which only a checkpoint records; use
    :meth:`IncrementalBetweenness.resume
    <repro.core.framework.IncrementalBetweenness.resume>` for that.

    ``backend`` selects the compute kernel (``"dicts"`` or ``"arrays"``)
    for the MO and DO variants; MP exists only in the dicts backend (the
    config layer rejects the combination).
    """
    config = variant_config(
        variant, directed=graph.directed, backend=backend, disk_path=disk_path
    )
    return BetweennessSession(graph, config).framework


def measure_brandes_seconds(
    graph: Graph, repeats: int = 1, keep_predecessors: bool = False
) -> float:
    """Average wall-clock seconds of a full Brandes run on ``graph``."""
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    timer = Timer()
    for _ in range(repeats):
        with timer.measure():
            brandes_betweenness(graph, keep_predecessors=keep_predecessors)
    return timer.mean


@dataclass
class SpeedupSeries:
    """Per-edge speedups of one (dataset, variant, update-kind) combination."""

    label: str
    variant: Variant
    baseline_seconds: float
    update_seconds: List[float] = field(default_factory=list)
    speedups: List[float] = field(default_factory=list)
    results: List[UpdateResult] = field(default_factory=list)

    def cdf(self) -> List[Tuple[float, float]]:
        """Empirical CDF of the speedups (the curves of Figures 5-6)."""
        return empirical_cdf(self.speedups)

    def summary(self) -> SummaryStats:
        """Min / median / mean / max speedup (the rows of Table 4)."""
        return summarize(self.speedups)

    @property
    def average_skip_fraction(self) -> float:
        """Mean fraction of sources skipped per update (ablation metric)."""
        if not self.results:
            return 0.0
        return sum(result.skip_fraction for result in self.results) / len(self.results)


def measure_stream_speedups(
    graph: Graph,
    updates: Sequence[EdgeUpdate],
    variant: Variant = Variant.MO,
    label: str = "graph",
    baseline_seconds: Optional[float] = None,
    baseline_repeats: int = 1,
    disk_path: Optional[Path] = None,
    batch_size: int = 1,
    checkpoint_path: Optional[Path] = None,
    backend: str = "dicts",
    config: Optional[BetweennessConfig] = None,
) -> SpeedupSeries:
    """Apply ``updates`` with the chosen variant and record per-edge speedups.

    Parameters
    ----------
    graph:
        The starting graph (the updates are applied on top of it).
    updates:
        The update stream (additions, removals or a mix).
    variant:
        Which of the MP / MO / DO configurations to run.
    label:
        Dataset label carried into the resulting series (used by reports).
    baseline_seconds:
        Pre-measured Brandes baseline time.  When omitted it is measured on
        the *initial* graph; the paper likewise uses the cost of a from-
        scratch recomputation as the denominator for every edge in the
        stream (its variation across single-edge updates is negligible).
    baseline_repeats:
        Number of Brandes runs to average when measuring the baseline here.
    disk_path:
        Optional location of the DO variant's backing file.
    batch_size:
        When greater than one, apply the stream through the batched pipeline
        (:meth:`~repro.core.framework.IncrementalBetweenness.apply_updates`)
        in chunks of this size; each update in a chunk is charged an equal
        share of the chunk's wall-clock time.
    checkpoint_path:
        When given, write a framework checkpoint sidecar here after the
        whole stream has been applied (before the store is closed), so a
        later run can resume from the post-stream state.
    backend:
        Compute backend of the measured framework (``"dicts"`` or
        ``"arrays"``); the Brandes baseline always runs the dicts path so
        the denominator stays comparable across backends.
    config:
        A fully resolved :class:`~repro.api.config.BetweennessConfig` to
        run under (the CLI passes one).  When given, it takes precedence
        over the individual ``variant`` / ``disk_path`` / ``batch_size`` /
        ``checkpoint_path`` / ``backend`` knobs, which remain as
        conveniences for direct callers.
    """
    if config is None:
        config = variant_config(
            variant,
            directed=graph.directed,
            backend=backend,
            batch_size=batch_size,
            disk_path=disk_path,
            checkpoint_path=checkpoint_path,
        )
    if config.executor != "serial":
        # The speedup experiment measures the serial framework (the MP/MO/DO
        # variants of Figure 5) and reads serial result shapes; a parallel
        # config would crash deep inside instead of failing clearly here.
        raise ConfigurationError(
            "measure_stream_speedups runs the serial executor only; use "
            "`repro online --workers N` (or BetweennessSession directly) "
            f"for parallel measurements, got executor={config.executor!r}"
        )
    if baseline_seconds is None:
        baseline_seconds = measure_brandes_seconds(graph, repeats=baseline_repeats)
    series = SpeedupSeries(
        label=label, variant=variant, baseline_seconds=baseline_seconds
    )
    with BetweennessSession(graph, config) as session:
        if config.batch_size == 1:
            for update in updates:
                result, elapsed = timed(session.apply, update)
                series.results.append(result)
                series.update_seconds.append(elapsed)
                series.speedups.append(
                    baseline_seconds / elapsed if elapsed > 0 else float("inf")
                )
        else:
            for chunk in batches(updates, config.batch_size):
                batch_result, elapsed = timed(session.apply_batch, chunk)
                per_update = elapsed / len(chunk)
                for result in batch_result.results:
                    series.results.append(result)
                    series.update_seconds.append(per_update)
                    series.speedups.append(
                        baseline_seconds / per_update
                        if per_update > 0
                        else float("inf")
                    )
        if config.checkpoint_path is not None:
            session.checkpoint()
    return series
