"""Formatting helpers that render the paper's tables from measurements."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.analysis.speedup import SpeedupSeries
from repro.graph.metrics import GraphProfile


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an ASCII table with left-aligned, width-padded columns."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [render_row(list(headers)), "-+-".join("-" * w for w in widths)]
    lines.extend(render_row(row) for row in materialized)
    return "\n".join(lines)


def related_work_table() -> str:
    """Table 1: capability / complexity comparison with prior dynamic methods.

    The table is static information from the paper (it does not depend on
    any measurement); it is included so the benchmark harness reproduces
    every numbered table.
    """
    headers = [
        "Method", "Year", "Space", "CV", "CE", "add", "remove", "parallel",
        "|V| tested", "|E| tested",
    ]
    rows = [
        ["Lee et al. (QUBE)", 2012, "O(n^2+m)", "yes", "no", "yes", "yes", "no", "12k", "65k"],
        ["Green et al.", 2012, "O(n^2+nm)", "yes", "no", "yes", "no", "no", "23k", "94k"],
        ["Kas et al.", 2013, "O(n^2+nm)", "yes", "no", "yes", "no", "no", "8k", "19k"],
        ["Nasre et al.", 2014, "O(n^2)", "yes", "no", "yes", "no", "no", "-", "-"],
        ["This work", 2014, "O(n^2)", "yes", "yes", "yes", "yes", "yes", "2.2M", "5.7M"],
    ]
    return format_table(headers, rows)


def table2_rows(profiles: Iterable[GraphProfile]) -> List[List[object]]:
    """Table 2 rows (dataset, |V|, |E|, AD, CC, ED) from graph profiles."""
    return [profile.as_row() for profile in profiles]


def speedup_summary_rows(
    addition: Dict[str, SpeedupSeries],
    removal: Dict[str, SpeedupSeries],
) -> List[List[object]]:
    """Table 4 rows: per-dataset min/median/max speedup for both update kinds.

    ``addition`` and ``removal`` map dataset labels to measured series; a
    dataset present in only one of the two maps gets dashes in the other
    half of its row.
    """
    labels = sorted(set(addition) | set(removal))
    rows: List[List[object]] = []
    for label in labels:
        row: List[object] = [label]
        for series_map in (addition, removal):
            series = series_map.get(label)
            if series is None or not series.speedups:
                row.extend(["-", "-", "-"])
            else:
                stats = series.summary()
                row.extend(
                    [round(stats.minimum), round(stats.median), round(stats.maximum)]
                )
        rows.append(row)
    return rows
