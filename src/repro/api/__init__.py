"""Unified service layer: declarative config, sessions, events, subscribers.

This package is the supported public way to run the system (see
``docs/api.md``):

* :class:`BetweennessConfig` — one frozen, JSON-serializable object holding
  every knob (backend, orientation, batching, executor, workers, store URI,
  checkpoint policy);
* :class:`BetweennessSession` — one facade over the serial, batched,
  out-of-core, process-parallel, simulated-MapReduce and fault-tolerant
  sharded execution modes, with an event stream subscribers hook into;
* :func:`open_session` / :func:`resume_session` — build a session from a
  graph + config, or from nothing but a checkpoint path (the config travels
  inside the sidecar).

The engine classes underneath (:class:`IncrementalBetweenness`, the
executors, the stores) remain importable for advanced use, but new code —
and every CLI subcommand, application and harness in this repository —
goes through this layer.
"""

from repro.api.config import EXECUTORS, BetweennessConfig
from repro.api.events import (
    BatchApplied,
    BootstrapCompleted,
    CheckpointWritten,
    SessionClosed,
    SessionEvent,
    SessionSubscriber,
    ShardRecovered,
    UpdateApplied,
    WorkerFailed,
)
from repro.api.session import (
    BetweennessSession,
    SessionSnapshot,
    open_session,
    resume_session,
)
from repro.api.subscribers import TopKSnapshot, TopKTracker

__all__ = [
    "BetweennessConfig",
    "EXECUTORS",
    "BetweennessSession",
    "SessionSnapshot",
    "open_session",
    "resume_session",
    "SessionEvent",
    "BootstrapCompleted",
    "UpdateApplied",
    "BatchApplied",
    "CheckpointWritten",
    "WorkerFailed",
    "ShardRecovered",
    "SessionClosed",
    "SessionSubscriber",
    "TopKTracker",
    "TopKSnapshot",
]
