"""Declarative configuration of a betweenness session.

:class:`BetweennessConfig` is the single place every knob of the system
lives: compute backend, graph orientation, batching, execution strategy,
worker count, store URI and checkpoint policy.  It is frozen (safe to share
and to hash into experiment labels), validates itself on construction, and
round-trips losslessly through plain dicts and JSON — which is how it
travels inside config files (``repro --config run.json``) and inside
checkpoints (so :func:`~repro.api.session.resume_session` needs nothing but
the checkpoint path).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.storage.factory import parse_store_uri
from repro.storage.shard import ShardLayout
from repro.types import BACKENDS, validate_backend

PathLike = Union[str, Path]


def _shm_uri_param(uri, store: str) -> Optional[bool]:
    """The URI's ``shm`` query parameter as a bool (``None`` when absent)."""
    value = uri.params.get("shm")
    if value is None:
        return None
    lowered = value.lower()
    if lowered in ("true", "1", "yes"):
        return True
    if lowered in ("false", "0", "no"):
        return False
    raise ConfigurationError(
        f"query parameter shm={value!r} of store URI {store!r} is not a "
        "boolean (use true/false)"
    )

#: Execution strategies a session can run under.
#:
#: * ``serial`` — one :class:`~repro.core.framework.IncrementalBetweenness`
#:   instance in this process (the MP/MO/DO configurations of the paper);
#: * ``process`` — the measured multiprocessing executor
#:   (:class:`~repro.parallel.executor.ProcessParallelBetweenness`), one
#:   restricted framework per worker process;
#: * ``mapreduce`` — the in-process simulated cluster
#:   (:class:`~repro.parallel.mapreduce.MapReduceBetweenness`);
#: * ``shard`` — the fault-tolerant sharded executor
#:   (:class:`~repro.parallel.shards.ShardCoordinator`): per-shard durable
#:   stores and checkpoints under a ``shard://`` root, worker-death
#:   recovery, and disk-only resume.
EXECUTORS: Tuple[str, ...] = ("serial", "process", "mapreduce", "shard")


@dataclass(frozen=True)
class BetweennessConfig:
    """Frozen, serializable description of how to run the system.

    Parameters
    ----------
    backend:
        Compute backend, ``"dicts"`` or ``"arrays"`` (bit-identical scores).
    directed:
        Orientation of the evolving graph.  A session refuses a graph whose
        orientation contradicts its config, exactly like a store refuses a
        graph with the wrong orientation.
    batch_size:
        Updates per source sweep in :meth:`BetweennessSession.stream
        <repro.api.session.BetweennessSession.stream>` (1 = one-at-a-time).
    executor:
        One of :data:`EXECUTORS`.
    workers:
        Worker processes (``process``) or simulated mappers (``mapreduce``).
        Must be 1 under the ``serial`` executor.
    store:
        Store URI resolved through :func:`repro.storage.create_store`
        (``memory://``, ``arrays://``, ``disk:///path?mmap=true``, or any
        third-party registered scheme).  Under the ``process`` and
        ``mapreduce`` executors the scheme selects the *per-worker* store
        kind and must be path-less (each worker owns a private temporary
        store).  The ``shard`` executor instead *requires* a ``shard://``
        URI naming the ensemble root, e.g.
        ``shard:///var/data/bc?shards=8&checkpoint_every=4`` (``shards``
        must agree with ``workers`` when both are given).
    maintain_predecessors:
        Also maintain per-source predecessor lists (the paper's MP
        configuration; dicts backend + serial executor only).
    checkpoint_path:
        Default sidecar path for :meth:`BetweennessSession.checkpoint
        <repro.api.session.BetweennessSession.checkpoint>` and the
        checkpoint policy below.
    checkpoint_every:
        Automatic checkpoint policy: while streaming, write a checkpoint to
        ``checkpoint_path`` every this many batches (``None`` = only on
        demand).
    seed_store_path:
        ``process`` executor only: durable
        :class:`~repro.storage.disk.DiskBDStore` file each worker reopens
        to seed its partition's records, skipping the parallel Brandes
        bootstrap.
    recv_timeout:
        ``process``/``shard`` executors only: cap in seconds on waiting for
        a live worker's reply (worker *death* is detected within ~50ms
        regardless).  Must be positive; ``None`` (default) waits as long as
        the worker stays alive.
    shared_memory:
        Run the zero-copy data plane.  Under ``process``/``shard`` the
        workers attach the initial graph and their seed records from shared
        segments and per-batch dispatch ships ``(offset, length)``
        descriptors into a shared update ring; under ``serial`` the store's
        columns live in (or sweep through) shared segments
        (``arrays://``-style columnar stores and buffered ``disk://``
        stores).  Scores are bit-identical either way.  Equivalent to the
        ``?shm=1`` query parameter on ``arrays://`` / ``shard://`` URIs —
        setting the field to ``True`` while the URI says ``shm=0`` (or vice
        versa) is a contradiction and is refused.

    Examples
    --------
    >>> config = BetweennessConfig(backend="arrays", store="disk:///tmp/bd.bin")
    >>> BetweennessConfig.from_json(config.to_json()) == config
    True
    """

    backend: str = "dicts"
    directed: bool = False
    batch_size: int = 1
    executor: str = "serial"
    workers: int = 1
    store: str = "memory://"
    maintain_predecessors: bool = False
    checkpoint_path: Optional[str] = None
    checkpoint_every: Optional[int] = None
    seed_store_path: Optional[str] = None
    recv_timeout: Optional[float] = None
    shared_memory: bool = False

    def __post_init__(self) -> None:
        validate_backend(self.backend)
        if not isinstance(self.directed, bool):
            raise ConfigurationError(
                f"directed must be a bool, got {self.directed!r}"
            )
        if not isinstance(self.batch_size, int) or self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be an int >= 1, got {self.batch_size!r}"
            )
        if self.executor not in EXECUTORS:
            raise ConfigurationError(
                f"executor must be one of {EXECUTORS}, got {self.executor!r}"
            )
        if not isinstance(self.workers, int) or self.workers < 1:
            raise ConfigurationError(
                f"workers must be an int >= 1, got {self.workers!r}"
            )
        if self.executor == "serial" and self.workers != 1:
            raise ConfigurationError(
                f"the serial executor runs exactly one worker, got "
                f"workers={self.workers} (choose executor='process' or "
                "'mapreduce' to scale out)"
            )
        uri = parse_store_uri(self.store)  # rejects bad scheme/query early
        if self.executor == "shard" and uri.scheme != "shard":
            raise ConfigurationError(
                f"the shard executor needs a shard:// store URI naming the "
                f"shard root, got {self.store!r} (e.g. "
                "'shard:///var/data/bc?shards=8&checkpoint_every=4')"
            )
        if uri.scheme == "shard" and self.executor != "shard":
            raise ConfigurationError(
                f"store URI {self.store!r} describes a shard ensemble, which "
                f"only the shard executor can run (got executor="
                f"{self.executor!r})"
            )
        if self.executor == "shard":
            # Resolves the root/shards/checkpoint_every parameters and
            # cross-validates the shard count against ``workers``.
            ShardLayout.from_uri(self.store, workers=self.workers)
        elif self.executor != "serial" and uri.path:
            raise ConfigurationError(
                f"executor {self.executor!r} uses per-worker stores, so the "
                f"store URI must not name a path (got {self.store!r}); use "
                "seed_store_path to seed workers from a durable store file"
            )
        if self.maintain_predecessors:
            if self.backend != "dicts":
                raise ConfigurationError(
                    "maintain_predecessors (the MP configuration) is only "
                    "supported by the dicts backend"
                )
            if self.executor != "serial":
                raise ConfigurationError(
                    "maintain_predecessors is only supported by the serial "
                    "executor"
                )
        if self.checkpoint_every is not None and (
            not isinstance(self.checkpoint_every, int) or self.checkpoint_every < 1
        ):
            raise ConfigurationError(
                f"checkpoint_every must be an int >= 1 or None, got "
                f"{self.checkpoint_every!r}"
            )
        if self.checkpoint_every is not None and self.checkpoint_path is None:
            raise ConfigurationError(
                "checkpoint_every needs a checkpoint_path to write to"
            )
        if self.checkpoint_every is not None and self.executor != "serial":
            # checkpoint() itself is serial-only (a parallel session's state
            # lives in per-worker stores), so a periodic policy under a
            # parallel executor would fail mid-stream after real work.  The
            # shard executor checkpoints too, but its cadence lives in the
            # URI (checkpoint_every=N) because it is a property of the
            # durable ensemble, not of one streaming call.
            raise ConfigurationError(
                "checkpoint_every requires the serial executor; under the "
                "shard executor set the cadence in the store URI "
                "('shard:///root?checkpoint_every=N') instead"
            )
        if self.checkpoint_path is not None and self.executor == "shard":
            raise ConfigurationError(
                "the shard executor keeps its checkpoints inside the shard "
                "root named by the store URI; checkpoint_path must be None"
            )
        if self.seed_store_path is not None and self.executor != "process":
            raise ConfigurationError(
                "seed_store_path only applies to the process executor"
            )
        if self.recv_timeout is not None:
            if (
                isinstance(self.recv_timeout, bool)
                or not isinstance(self.recv_timeout, (int, float))
                or self.recv_timeout <= 0
            ):
                raise ConfigurationError(
                    f"recv_timeout must be a positive number of seconds or "
                    f"None, got {self.recv_timeout!r}"
                )
            if self.executor not in ("process", "shard"):
                raise ConfigurationError(
                    "recv_timeout only applies to the process and shard "
                    f"executors (got executor={self.executor!r})"
                )
        if not isinstance(self.shared_memory, bool):
            raise ConfigurationError(
                f"shared_memory must be a bool, got {self.shared_memory!r}"
            )
        shm_param = _shm_uri_param(uri, self.store)
        if self.shared_memory and shm_param is False:
            raise ConfigurationError(
                f"shared_memory=True contradicts the store URI "
                f"{self.store!r} (which says shm=0); drop one of the two"
            )
        if self.shared_memory or shm_param:
            if self.executor == "mapreduce":
                raise ConfigurationError(
                    "shared_memory does not apply to the in-process "
                    "mapreduce executor (its simulated mappers already share "
                    "this process's memory)"
                )
            if self.executor == "serial":
                if uri.scheme == "memory" and self.backend != "arrays":
                    raise ConfigurationError(
                        "shared_memory under the serial executor needs a "
                        "columnar store; memory:// resolves to the "
                        "dict-of-records store under the dicts backend — use "
                        "store='arrays://' or backend='arrays'"
                    )
                if uri.scheme == "disk" and uri.params.get(
                    "mmap", "true"
                ).lower() in ("true", "1", "yes"):
                    raise ConfigurationError(
                        "shared_memory under the serial executor only "
                        "applies to the buffered disk store (the mmap path "
                        "already repairs in place); add mmap=false to the "
                        "disk:// URI"
                    )

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #
    @property
    def effective_shared_memory(self) -> bool:
        """Whether the zero-copy data plane is on (the field or ``?shm=1``)."""
        uri = parse_store_uri(self.store)
        return self.shared_memory or bool(_shm_uri_param(uri, self.store))

    def replace(self, **changes: Any) -> "BetweennessConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def for_graph(cls, graph, **overrides: Any) -> "BetweennessConfig":
        """A config whose orientation matches ``graph``, plus ``overrides``."""
        overrides.setdefault("directed", graph.directed)
        return cls(**overrides)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-compatible values only)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BetweennessConfig":
        """Rebuild from :meth:`to_dict` output; unknown keys are rejected.

        Rejecting unknown keys (instead of ignoring them) catches typos in
        hand-written config files — ``bach_size`` silently meaning "default
        batch size" is exactly the class of bug the declarative surface
        exists to remove.
        """
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"config payload must be a dict, got {type(payload).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown config fields {sorted(unknown)}; known fields: "
                f"{sorted(known)}"
            )
        return cls(**payload)

    def to_json(self, indent: Optional[int] = None) -> str:
        """JSON form (the config-file format of ``repro --config``)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "BetweennessConfig":
        """Rebuild from :meth:`to_json` output."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"config is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    def save(self, path: PathLike) -> Path:
        """Write the JSON form to ``path`` (pretty-printed)."""
        path = Path(path)
        path.write_text(self.to_json(indent=2) + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: PathLike) -> "BetweennessConfig":
        """Read a config file written by :meth:`save` (or by hand)."""
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(f"cannot read config file {path}: {exc}") from exc
        return cls.from_json(text)
