"""Structured events emitted by a :class:`~repro.api.session.BetweennessSession`.

The session is event-driven: every state change (bootstrap, update, batch,
checkpoint, worker failure and recovery, shutdown) is published to
subscribers as a typed, immutable event object.  Downstream consumers — top-k rank tracking, online deadline
accounting, progress logging, metrics export — are *subscribers* rather
than parallel reimplementations of the update loop, so they compose: one
stream pass can feed all of them.

A subscriber is either a plain callable taking one event, or an object
implementing :class:`SessionSubscriber` (which additionally receives the
session itself at subscription time, letting it query scores or rankings
when events arrive).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Tuple, Union

from repro.core.updates import EdgeUpdate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.api.session import BetweennessSession


@dataclass(frozen=True)
class SessionEvent:
    """Base class of every session event.

    ``sequence`` is the session-wide event counter (0-based, gap-free), so
    a subscriber can order or deduplicate events without trusting wall
    clocks.
    """

    sequence: int


@dataclass(frozen=True)
class BootstrapCompleted(SessionEvent):
    """Step 1 finished: the per-source data exists and scores are exact."""

    num_vertices: int = 0
    num_edges: int = 0
    num_sources: int = 0


@dataclass(frozen=True)
class UpdateApplied(SessionEvent):
    """One edge update was applied through :meth:`BetweennessSession.apply`.

    ``result`` is the engine's result object — an
    :class:`~repro.core.result.UpdateResult` under the serial executor, a
    :class:`~repro.parallel.executor.ParallelBatchReport` under ``process``
    and ``shard``, and a
    :class:`~repro.parallel.mapreduce.MapReduceUpdateReport` under
    ``mapreduce``.
    """

    update: EdgeUpdate = None  # type: ignore[assignment]
    result: Any = None


@dataclass(frozen=True)
class BatchApplied(SessionEvent):
    """One batch of updates completed a full source sweep.

    ``batch_index`` counts batches within the session (0-based).  ``result``
    is the engine's batch result (see :class:`UpdateApplied` for the
    per-executor types).
    """

    updates: Tuple[EdgeUpdate, ...] = ()
    result: Any = None
    batch_index: int = 0


@dataclass(frozen=True)
class CheckpointWritten(SessionEvent):
    """A checkpoint sidecar (with the session config embedded) was written."""

    path: str = ""


@dataclass(frozen=True)
class WorkerFailed(SessionEvent):
    """A shard worker process died or stopped responding (shard executor).

    Emitted *before* recovery starts; a :class:`ShardRecovered` follows once
    the replacement worker is live again.  ``batch_cursor`` is the batch the
    ensemble was applying (or had applied) when the failure was detected.
    """

    shard: int = 0
    error: str = ""
    batch_cursor: int = 0


@dataclass(frozen=True)
class ShardRecovered(SessionEvent):
    """A dead shard worker was replaced from its checkpoint (shard executor).

    ``replayed_batches`` counts the logged batches applied on top of the
    shard checkpoint to catch the replacement up — the recovery cost beyond
    loading the checkpoint itself, which ``seconds`` measures end to end.
    """

    shard: int = 0
    replayed_batches: int = 0
    seconds: float = 0.0


@dataclass(frozen=True)
class SessionClosed(SessionEvent):
    """The session released its engine and stores; no further events follow."""


class SessionSubscriber:
    """Base class for stateful event subscribers.

    Subclasses override :meth:`on_event` (required) and optionally
    :meth:`attach`, which runs once at subscription time and hands over the
    session — the natural place to grab initial rankings or scores.
    """

    def attach(self, session: "BetweennessSession") -> None:
        """Called once when subscribed; default does nothing."""

    def on_event(self, event: SessionEvent) -> None:
        """Called for every event the session emits, in order."""
        raise NotImplementedError


#: Anything :meth:`BetweennessSession.subscribe` accepts.
Subscriber = Union[SessionSubscriber, Callable[[SessionEvent], None]]
