"""The unified session facade: one entry point for every execution mode.

:class:`BetweennessSession` is the single public way to run the system.  It
takes an initial graph plus a declarative
:class:`~repro.api.config.BetweennessConfig` and hides, behind one stable
surface, everything PRs 1–4 grew underneath: the serial framework (in
memory, columnar or out of core), the batched update pipeline, the real
multiprocessing executor, the simulated MapReduce cluster and the
fault-tolerant sharded executor (``executor="shard"`` + a ``shard://``
store URI).  Adding a new backend, store or executor is a registry/config
change — no call site ever threads a new kwarg again.

The session is also *event-driven*: every update, batch, checkpoint and
shutdown is published to subscribers (:mod:`repro.api.events`), which is
how top-k monitoring and the online-replay deadline accounting are layered
on top without reimplementing the update loop.

Typical use::

    from repro import BetweennessConfig, BetweennessSession

    config = BetweennessConfig(backend="arrays", store="disk:///data/bd.bin",
                               batch_size=32, checkpoint_path="/data/ck.bin")
    with BetweennessSession(graph, config) as session:
        for event in session.stream(updates):
            print(event.batch_index, session.top_k(3))
        session.checkpoint()

    # later, a different process — no flags, the config travels inside:
    session = resume_session("/data/ck.bin")
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.api.config import BetweennessConfig
from repro.api.events import (
    BatchApplied,
    BootstrapCompleted,
    CheckpointWritten,
    SessionClosed,
    SessionEvent,
    ShardRecovered,
    Subscriber,
    UpdateApplied,
    WorkerFailed,
)
from repro.core.checkpoint import load_checkpoint
from repro.core.framework import IncrementalBetweenness
from repro.core.updates import EdgeUpdate, batches
from repro.exceptions import ConfigurationError, StorageError, SubscriberError
from repro.graph.graph import Graph
from repro.parallel.executor import ProcessParallelBetweenness
from repro.parallel.mapreduce import MapReduceBetweenness
from repro.parallel.shards import ShardCoordinator
from repro.storage.base import BDStore
from repro.storage.disk import DiskBDStore
from repro.storage.factory import create_store, parse_store_uri
from repro.storage.shard import ShardLayout, load_manifest
from repro.types import Edge, EdgeScores, Vertex, VertexScores
from repro.utils.stats import top_k_items

PathLike = Union[str, Path]


@dataclass(frozen=True)
class SessionSnapshot:
    """Immutable copy of a session's observable state at one moment."""

    sequence: int
    num_vertices: int
    num_edges: int
    vertex_scores: VertexScores
    edge_scores: EdgeScores

    def top_vertices(self, k: int) -> Tuple[Tuple[Vertex, float], ...]:
        """The ``k`` highest-betweenness vertices of this snapshot."""
        return tuple(top_k_items(self.vertex_scores.items(), k))

    def top_edges(self, k: int) -> Tuple[Tuple[Edge, float], ...]:
        """The ``k`` highest-betweenness edges of this snapshot."""
        return tuple(top_k_items(self.edge_scores.items(), k))


class BetweennessSession:
    """Facade over every execution mode, driven by one declarative config.

    Parameters
    ----------
    graph:
        Initial graph.  Its orientation must match ``config.directed``.
    config:
        The declarative configuration; defaults to
        ``BetweennessConfig.for_graph(graph)`` (serial, in-memory, dicts).
    store:
        Escape hatch for callers that already hold a live
        :class:`~repro.storage.base.BDStore` (the deprecation shims and
        some tests); overrides the config's store URI.  Serial executor
        only.

    **Thread-safety contract.**  Every state transition (``apply``,
    ``apply_batch``, ``checkpoint``, ``close``) and every read
    (``vertex_betweenness``, ``edge_betweenness``, ``top_k``,
    ``snapshot``) runs under one internal re-entrant lock.  Readers in
    other threads therefore always observe a *batch-boundary* view: the
    scores either from before or from after any concurrently applied
    batch, never a half-repaired intermediate.  Writes are still expected
    to come from one writer at a time (the service layer funnels them
    through a single worker per session); the lock makes concurrent
    *readers* safe against that writer, and makes ``close`` safe to call
    from any thread — including concurrently with a pending checkpoint,
    which it waits out.  The lock is re-entrant so subscribers may query
    or checkpoint the session from inside an event handler.
    """

    def __init__(
        self,
        graph: Graph,
        config: Optional[BetweennessConfig] = None,
        store: Optional[BDStore] = None,
        subscribers: Sequence[Subscriber] = (),
    ) -> None:
        if config is None:
            config = BetweennessConfig.for_graph(graph)
        if config.directed != graph.directed:
            graph_kind = "directed" if graph.directed else "undirected"
            config_kind = "directed" if config.directed else "undirected"
            raise ConfigurationError(
                f"config declares a {config_kind} graph but the given graph "
                f"is {graph_kind}; set BetweennessConfig(directed=...) to "
                "match (or use BetweennessConfig.for_graph)"
            )
        self._config = config
        self._subscribers: List[Subscriber] = []
        self._sequence = 0
        self._batch_index = 0
        self._batches_since_checkpoint = 0
        self._closed = False
        self._state_lock = threading.RLock()
        self._framework: Optional[IncrementalBetweenness] = None
        self._cluster = None
        # Registered before the bootstrap runs, so constructor-passed
        # subscribers are the ones that can observe BootstrapCompleted.
        for subscriber in subscribers:
            self.subscribe(subscriber)

        if config.executor == "serial":
            if store is None:
                store = create_store(
                    config.store,
                    graph.vertex_list(),
                    directed=graph.directed,
                    backend=config.backend,
                    shared_memory=config.effective_shared_memory,
                )
            self._framework = IncrementalBetweenness(
                graph,
                store=store,
                backend=config.backend,
                maintain_predecessors=config.maintain_predecessors,
            )
        elif store is not None:
            raise ConfigurationError(
                "an explicit store object is only supported by the serial "
                "executor (parallel executors build per-worker stores)"
            )
        elif config.executor == "process":
            self._cluster = ProcessParallelBetweenness(
                graph,
                num_workers=config.workers,
                store=self._worker_store_kind(config.store),
                source_store_path=config.seed_store_path,
                backend=config.backend,
                recv_timeout=config.recv_timeout,
                shared_memory=config.effective_shared_memory,
            )
        elif config.executor == "shard":
            layout = ShardLayout.from_uri(config.store, workers=config.workers)
            self._cluster = ShardCoordinator(
                graph,
                layout,
                backend=config.backend,
                recv_timeout=config.recv_timeout,
                shared_memory=config.effective_shared_memory,
                config=config.to_dict(),
            )
            # Hooked up only after construction so the ensemble's round-0
            # checkpoint is not emitted ahead of BootstrapCompleted; every
            # later round, failure and recovery surfaces as a typed event.
            self._cluster.notify = self._shard_notify
        else:  # mapreduce — validated by the config
            self._cluster = MapReduceBetweenness(
                graph,
                num_mappers=config.workers,
                store_factory=self._mapper_store_factory(config.store),
                backend=config.backend,
            )
        engine = self._framework if self._framework is not None else self._cluster
        self._emit(
            BootstrapCompleted,
            num_vertices=engine.graph.num_vertices,
            num_edges=engine.graph.num_edges,
            num_sources=(
                self._framework.num_sources
                if self._framework is not None
                else engine.graph.num_vertices
            ),
        )

    # ------------------------------------------------------------------ #
    # Alternative constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_framework(
        cls,
        framework: IncrementalBetweenness,
        config: Optional[BetweennessConfig] = None,
        subscribers: Sequence[Subscriber] = (),
    ) -> "BetweennessSession":
        """Wrap an existing serial engine instance in a session.

        Used by the resume path and the deprecation shims; the framework is
        adopted as-is (no copy, no re-bootstrap), so the caller must not
        keep driving it directly.
        """
        if config is None:
            config = BetweennessConfig(
                backend=framework.backend, directed=framework.graph.directed
            )
        self = cls.__new__(cls)
        self._config = config
        self._subscribers = []
        self._sequence = 0
        self._batch_index = 0
        self._batches_since_checkpoint = 0
        self._closed = False
        self._state_lock = threading.RLock()
        self._framework = framework
        self._cluster = None
        for subscriber in subscribers:
            self.subscribe(subscriber)
        self._emit(
            BootstrapCompleted,
            num_vertices=framework.graph.num_vertices,
            num_edges=framework.graph.num_edges,
            num_sources=framework.num_sources,
        )
        return self

    @classmethod
    def _from_shard_coordinator(
        cls,
        coordinator: ShardCoordinator,
        config: BetweennessConfig,
        subscribers: Sequence[Subscriber] = (),
    ) -> "BetweennessSession":
        """Wrap a live (usually resumed) shard coordinator in a session."""
        self = cls.__new__(cls)
        self._config = config
        self._subscribers = []
        self._sequence = 0
        self._batch_index = coordinator.batch_cursor
        self._batches_since_checkpoint = 0
        self._closed = False
        self._state_lock = threading.RLock()
        self._framework = None
        self._cluster = coordinator
        for subscriber in subscribers:
            self.subscribe(subscriber)
        coordinator.notify = self._shard_notify
        self._emit(
            BootstrapCompleted,
            num_vertices=coordinator.graph.num_vertices,
            num_edges=coordinator.graph.num_edges,
            num_sources=coordinator.graph.num_vertices,
        )
        return self

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> BetweennessConfig:
        """The session's (frozen) configuration."""
        return self._config

    @property
    def graph(self) -> Graph:
        """The engine's current view of the graph (do not mutate)."""
        return self._engine().graph

    @property
    def framework(self) -> IncrementalBetweenness:
        """The underlying serial engine (serial executor only)."""
        if self._framework is None:
            raise ConfigurationError(
                f"the {self._config.executor!r} executor has no single "
                "serial framework instance"
            )
        return self._framework

    @property
    def engine(self) -> Any:
        """Whatever engine the config selected (framework or cluster)."""
        return self._engine()

    @property
    def batches_applied(self) -> int:
        """Batches applied through this session (shard resumes include the
        restored ensemble's batch cursor, so the count is lifetime-wide)."""
        return self._batch_index

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    # ------------------------------------------------------------------ #
    # Subscriptions
    # ------------------------------------------------------------------ #
    def subscribe(self, subscriber: Subscriber) -> Subscriber:
        """Register a subscriber for all future events; returns it.

        Accepts a plain callable taking one event, or any object exposing
        ``on_event(event)`` (and optionally ``attach(session)``) — the
        :class:`~repro.api.events.SessionSubscriber` protocol is duck-typed
        so subscribers need no import of this package.
        """
        if hasattr(subscriber, "on_event"):
            attach = getattr(subscriber, "attach", None)
            if attach is not None:
                attach(self)
        elif not callable(subscriber):
            raise ConfigurationError(
                "subscriber must be callable or expose on_event(event), got "
                f"{type(subscriber).__name__}"
            )
        self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Remove a previously registered subscriber (no-op when absent)."""
        try:
            self._subscribers.remove(subscriber)
        except ValueError:
            pass

    def _emit(self, event_type, **fields) -> SessionEvent:
        """Publish one event to every subscriber, then surface any failures.

        Dispatch is *fault-isolated*: an exception raised by one subscriber
        neither skips the remaining subscribers nor interrupts the engine
        operation that produced the event (which has already committed by
        the time dispatch starts).  All failures are collected and
        re-raised together as :class:`~repro.exceptions.SubscriberError`
        once every subscriber has been notified — so untrusted subscribers
        (e.g. the service layer's per-client event bridges) cannot corrupt
        session state or starve their peers.
        """
        event = event_type(sequence=self._sequence, **fields)
        self._sequence += 1
        failures = []
        for subscriber in list(self._subscribers):
            handler = getattr(subscriber, "on_event", None)
            try:
                if handler is not None:
                    handler(event)
                else:
                    subscriber(event)
            except Exception as exc:  # noqa: BLE001 - isolation is the point
                failures.append((subscriber, exc))
        if failures:
            raise SubscriberError(event, failures) from failures[0][1]
        return event

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def add_edge(self, u: Vertex, v: Vertex):
        """Add one edge and refresh all scores; emits :class:`UpdateApplied`."""
        return self.apply(EdgeUpdate.addition(u, v))

    def remove_edge(self, u: Vertex, v: Vertex):
        """Remove one edge and refresh all scores; emits :class:`UpdateApplied`."""
        return self.apply(EdgeUpdate.removal(u, v))

    def apply(self, update: EdgeUpdate):
        """Apply a single update; returns the engine's result object."""
        with self._state_lock:
            self._ensure_open()
            result = self._engine().apply(update)
            self._emit(UpdateApplied, update=update, result=result)
            return result

    def apply_batch(self, updates: Iterable[EdgeUpdate]):
        """Apply one batch in a single source sweep; emits :class:`BatchApplied`.

        Under the serial executor this is the batched pipeline
        (:meth:`IncrementalBetweenness.apply_updates
        <repro.core.framework.IncrementalBetweenness.apply_updates>`); under
        ``process`` the batch is broadcast to the workers; under
        ``mapreduce`` (which models per-update cluster rounds) the batch is
        applied update by update and the result is the tuple of per-update
        reports.
        """
        return self._apply_batch(list(updates))[0]

    def _apply_batch(self, batch: List[EdgeUpdate]):
        """Shared batch path; returns ``(engine_result, emitted_event)``.

        The event is threaded back explicitly (rather than re-read from any
        mutable "last event" state) because subscribers may emit further
        events — e.g. a checkpoint — while handling this one.
        """
        with self._state_lock:
            self._ensure_open()
            if self._framework is not None:
                result = self._framework.apply_updates(batch)
            elif isinstance(
                self._cluster, (ProcessParallelBetweenness, ShardCoordinator)
            ):
                result = self._cluster.apply_batch(batch)
            else:
                result = tuple(self._cluster.apply(update) for update in batch)
            batch_index = self._batch_index
            self._batch_index += 1
            event = self._emit(
                BatchApplied,
                updates=tuple(batch),
                result=result,
                batch_index=batch_index,
            )
            return result, event

    def stream(
        self,
        updates: Iterable[EdgeUpdate],
        batch_size: Optional[int] = None,
    ) -> Iterator[BatchApplied]:
        """Apply a stream in batches, yielding one event per batch (lazy).

        This is the only batching loop in the system: the stream is chunked
        into batches of ``batch_size`` (default: the config's) and each
        chunk goes through :meth:`apply_batch`.  When the config sets a
        checkpoint policy (``checkpoint_every`` + ``checkpoint_path``), a
        checkpoint is written automatically every that many batches.

        The generator is lazy — iterate it to drive the stream::

            for event in session.stream(updates):
                ...  # scores are current here; event.result has the stats
        """
        if batch_size is None:
            batch_size = self._config.batch_size
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        for chunk in batches(updates, batch_size):
            _, event = self._apply_batch(list(chunk))
            self._batches_since_checkpoint += 1
            if (
                self._config.checkpoint_every is not None
                and self._batches_since_checkpoint >= self._config.checkpoint_every
            ):
                self.checkpoint()
                self._batches_since_checkpoint = 0
            yield event

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def vertex_betweenness(self) -> VertexScores:
        """Current (merged) vertex betweenness scores (batch-boundary view)."""
        with self._state_lock:
            return self._engine().vertex_betweenness()

    def edge_betweenness(self) -> EdgeScores:
        """Current (merged) edge betweenness scores (batch-boundary view)."""
        with self._state_lock:
            return self._engine().edge_betweenness()

    def top_k(
        self, k: int = 10, edges: bool = False
    ) -> Tuple[Tuple[Any, float], ...]:
        """The ``k`` most central vertices (or edges) as ``(item, score)``."""
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        with self._state_lock:
            scores = (
                self.edge_betweenness() if edges else self.vertex_betweenness()
            )
        return tuple(top_k_items(scores.items(), k))

    def snapshot(self) -> SessionSnapshot:
        """An immutable copy of graph size and both score dictionaries.

        Atomic with respect to concurrent batches: the graph counters and
        both score dictionaries are captured under one lock acquisition, so
        they always describe the same batch boundary.
        """
        with self._state_lock:
            graph = self._engine().graph
            return SessionSnapshot(
                sequence=self._sequence,
                num_vertices=graph.num_vertices,
                num_edges=graph.num_edges,
                vertex_scores=self.vertex_betweenness(),
                edge_scores=self.edge_betweenness(),
            )

    # ------------------------------------------------------------------ #
    # Checkpoint / resume
    # ------------------------------------------------------------------ #
    def checkpoint(self, path: Optional[PathLike] = None) -> Path:
        """Write a checkpoint sidecar with the session config embedded.

        ``path`` defaults to the config's ``checkpoint_path``.  Because the
        config travels inside the sidecar, :func:`resume_session` needs
        nothing but the path — no flags, no kwargs.

        Under the shard executor this runs a checkpoint *round*: every shard
        persists its state into the shard root and the coordinator manifest
        is rewritten; the return value is the manifest path (``path`` must
        be ``None`` — a sharded session's location is its store URI).  The
        other parallel executors have no durable state to checkpoint.
        """
        with self._state_lock:
            self._ensure_open()
            if isinstance(self._cluster, ShardCoordinator):
                if path is not None:
                    raise ConfigurationError(
                        "a sharded session checkpoints into its shard root "
                        f"({self._cluster.layout.root}); drop the path argument"
                    )
                # The coordinator's notify hook emits CheckpointWritten.
                return self._cluster.checkpoint()
            if self._framework is None:
                raise ConfigurationError(
                    "checkpoint() requires the serial or shard executor; "
                    "collect scores with snapshot() instead, or run "
                    "serial/shard sessions for durable state"
                )
            if path is None:
                path = self._config.checkpoint_path
            if path is None:
                raise ConfigurationError(
                    "no checkpoint path: pass one explicitly or set "
                    "BetweennessConfig.checkpoint_path"
                )
            written = self._framework.checkpoint(
                path, config=self._config.to_dict()
            )
            self._emit(CheckpointWritten, path=str(written))
            return written

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the engine (stores, worker processes); idempotent.

        Safe to call from any thread, any number of times, including
        concurrently with a pending :meth:`checkpoint` or batch: the state
        lock serializes them, so a close issued mid-checkpoint waits for
        the checkpoint to finish rather than yanking the store out from
        under it.  Exactly one caller performs the teardown (and observes
        the :class:`SessionClosed` event); every other call returns
        immediately.
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            if self._framework is not None:
                self._framework.store.close()
            elif isinstance(
                self._cluster, (ProcessParallelBetweenness, ShardCoordinator)
            ):
                self._cluster.close()
            elif self._cluster is not None:
                for mapper in self._cluster.mappers:
                    mapper.store.close()
            self._emit(SessionClosed)

    def __enter__(self) -> "BetweennessSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _engine(self):
        self._ensure_open()
        return self._framework if self._framework is not None else self._cluster

    def _shard_notify(self, kind: str, **fields) -> None:
        """Adapt the coordinator's plain callback into typed session events.

        The coordinator lives below the API layer and knows nothing about
        event classes; this bound method is the only coupling point.
        """
        if kind == "worker_failed":
            self._emit(WorkerFailed, **fields)
        elif kind == "shard_recovered":
            self._emit(ShardRecovered, **fields)
        elif kind == "checkpoint":
            self._emit(CheckpointWritten, path=fields["path"])

    def _ensure_open(self) -> None:
        if self._closed:
            raise ConfigurationError("the session has been closed")

    @staticmethod
    def _worker_store_kind(uri: str) -> str:
        """Map a (path-less) store URI onto the executor's per-worker kinds."""
        scheme = parse_store_uri(uri).scheme
        return "disk" if scheme == "disk" else "memory"

    @staticmethod
    def _mapper_store_factory(uri: str):
        """Per-mapper store factory for the simulated cluster, from the URI."""
        parsed = parse_store_uri(uri)
        if parsed.scheme != "disk":
            return None  # each mapper uses its backend's default RAM store

        def factory(partition, graph):
            return DiskBDStore(
                graph.vertex_list(),
                sources=list(partition.sources),
                directed=graph.directed,
            )

        return factory


def open_session(
    graph: Graph,
    config: Optional[BetweennessConfig] = None,
    **overrides: Any,
) -> BetweennessSession:
    """Build a session from a graph, a config and/or field overrides.

    ``overrides`` are :class:`~repro.api.config.BetweennessConfig` fields
    applied on top of ``config`` (or of a fresh default matching the
    graph's orientation)::

        session = open_session(graph, backend="arrays", batch_size=16)
    """
    if config is None:
        config = BetweennessConfig.for_graph(graph, **overrides)
    elif overrides:
        config = config.replace(**overrides)
    return BetweennessSession(graph, config)


def resume_session(
    checkpoint_path: PathLike,
    store: Optional[BDStore] = None,
    config: Optional[BetweennessConfig] = None,
    **overrides: Any,
) -> BetweennessSession:
    """Rebuild a session from a checkpoint written by :meth:`checkpoint`.

    The configuration embedded in the sidecar is restored, so no flags or
    kwargs are needed; pass ``config`` to replace it wholesale, or
    individual :class:`~repro.api.config.BetweennessConfig` fields as
    ``overrides`` (e.g. ``resume_session(path, backend="arrays")`` to
    resume a dicts-backend checkpoint on the arrays kernel).  ``store``
    optionally supplies the record store explicitly, exactly like
    :meth:`IncrementalBetweenness.resume
    <repro.core.framework.IncrementalBetweenness.resume>`.

    ``checkpoint_path`` may also be a **shard root** (the directory a
    ``shard://`` URI names, or its ``manifest.bin``): the whole sharded
    session — shard count, cadence, per-shard state, stream-born vertex
    assignment and the embedded config — is then restored from disk alone,
    with one worker re-seeded per shard.

    The sidecar — which may embed a full ``BD[.]`` snapshot — is read and
    deserialized exactly once here.
    """
    if store is None and ShardLayout.is_shard_root(checkpoint_path):
        return _resume_shard_session(checkpoint_path, config, overrides)
    ckpt = _load_checkpoint_for_resume(checkpoint_path)
    if config is None:
        if ckpt.config is not None:
            config = BetweennessConfig.from_dict(ckpt.config)
        else:
            # Pre-config sidecar (PR 2–4 era): reconstruct the minimum.
            config = BetweennessConfig(directed=ckpt.directed)
    if overrides:
        config = config.replace(**overrides)
    if config.executor != "serial":
        # Checkpoints are only ever written by serial sessions; a restored
        # parallel config would re-bootstrap rather than resume.  The
        # executor-only knobs (worker timeouts, the zero-copy dispatch
        # plane) are dropped with the executor they belong to.
        config = config.replace(
            executor="serial",
            workers=1,
            seed_store_path=None,
            recv_timeout=None,
            shared_memory=False,
        )
    framework = IncrementalBetweenness.resume(
        checkpoint_path, store=store, backend=config.backend, checkpoint=ckpt
    )
    return BetweennessSession.from_framework(framework, config=config)


def _load_checkpoint_for_resume(path: PathLike):
    """Load a sidecar for :func:`resume_session`, with a clean error surface.

    The storage layer raises typed low-level errors (``FileNotFoundError``,
    :class:`~repro.exceptions.StoreCorruptedError`, ...) that make sense
    when you are holding a store — but ``resume_session`` is handed a bare
    *path*, often from a config file or an HTTP request, so a missing or
    mangled checkpoint is a configuration problem.  Mapping everything to
    :class:`~repro.exceptions.ConfigurationError` (with the path in the
    message) lets callers like the service layer translate it to a clean
    404/409 instead of leaking a stack trace.
    """
    try:
        return load_checkpoint(path)
    except FileNotFoundError as exc:
        raise ConfigurationError(
            f"cannot resume: checkpoint {path} does not exist"
        ) from exc
    except StorageError as exc:
        raise ConfigurationError(
            f"cannot resume: checkpoint {path} is not a readable checkpoint "
            f"sidecar ({exc})"
        ) from exc
    except OSError as exc:
        raise ConfigurationError(
            f"cannot resume: checkpoint {path} cannot be read ({exc})"
        ) from exc


def _resume_shard_session(
    root: PathLike,
    config: Optional[BetweennessConfig],
    overrides: dict,
) -> BetweennessSession:
    """The shard-root branch of :func:`resume_session`."""
    root = Path(root)
    if root.name == "manifest.bin":
        root = root.parent
    try:
        manifest = load_manifest(root)
    except StorageError as exc:
        raise ConfigurationError(
            f"cannot resume: shard root {root} has an unreadable manifest "
            f"({exc})"
        ) from exc
    if config is None:
        if manifest.config is not None:
            config = BetweennessConfig.from_dict(manifest.config)
        else:
            # The ensemble was driven by a bare coordinator, not a session;
            # reconstruct the equivalent declarative description.
            config = BetweennessConfig(
                executor="shard",
                backend=manifest.backend,
                directed=manifest.directed,
                workers=manifest.num_shards,
                store=(
                    f"shard://{root.resolve()}?shards={manifest.num_shards}"
                    f"&checkpoint_every={manifest.checkpoint_every}"
                ),
            )
    if overrides:
        config = config.replace(**overrides)
    if config.executor != "shard":
        raise ConfigurationError(
            f"{root} is a shard root; it can only resume under the shard "
            f"executor (config asks for {config.executor!r})"
        )
    coordinator = ShardCoordinator.resume(
        root,
        backend=config.backend,
        recv_timeout=config.recv_timeout,
        shared_memory=config.effective_shared_memory,
        config=config.to_dict(),
    )
    return BetweennessSession._from_shard_coordinator(coordinator, config)
