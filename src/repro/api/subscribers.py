"""Ready-made session subscribers.

These are the event-driven replacements for what used to be standalone
harnesses: top-k rank tracking (formerly re-implemented inside
:class:`~repro.applications.top_k.TopKMonitor`, now a thin deprecation shim
over :class:`TopKTracker`) and the online deadline ledger the replay
harness in :mod:`repro.parallel.online` feeds from session events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.api.events import (
    BatchApplied,
    SessionEvent,
    SessionSubscriber,
    UpdateApplied,
)
from repro.core.updates import EdgeUpdate
from repro.exceptions import ConfigurationError
from repro.types import Edge, Vertex
from repro.utils.stats import top_k_items


@dataclass(frozen=True)
class TopKSnapshot:
    """Ranking state after one update (or one batch)."""

    update: EdgeUpdate
    top_vertices: Tuple[Tuple[Vertex, float], ...]
    top_edges: Tuple[Tuple[Edge, float], ...]

    def vertex_ranking(self) -> Tuple[Vertex, ...]:
        """Just the vertices, in rank order."""
        return tuple(vertex for vertex, _ in self.top_vertices)


class TopKTracker(SessionSubscriber):
    """Maintain the k most central vertices/edges as the session streams.

    Subscribe it to any session::

        tracker = session.subscribe(TopKTracker(k=10))
        for _ in session.stream(updates):
            pass
        print(tracker.snapshots[-1].vertex_ranking())

    One :class:`TopKSnapshot` is recorded per :class:`UpdateApplied` event
    and per :class:`BatchApplied` event (a batch completes atomically, so
    its post-batch ranking is attributed to its last update).
    """

    def __init__(self, k: int = 10, track_edges: bool = True) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self.k = k
        self.track_edges = track_edges
        self.snapshots: List[TopKSnapshot] = []
        self._session = None

    # -- SessionSubscriber ---------------------------------------------- #
    def attach(self, session) -> None:
        self._session = session

    def on_event(self, event: SessionEvent) -> None:
        if isinstance(event, UpdateApplied):
            self._record(event.update)
        elif isinstance(event, BatchApplied) and event.updates:
            self._record(event.updates[-1])

    # -- Rankings -------------------------------------------------------- #
    def top_vertices(
        self, k: Optional[int] = None
    ) -> Tuple[Tuple[Vertex, float], ...]:
        """Current top-k vertices as ``(vertex, score)`` pairs."""
        self._ensure_attached()
        scores = self._session.vertex_betweenness()
        return tuple(top_k_items(scores.items(), self.k if k is None else k))

    def top_edges(self, k: Optional[int] = None) -> Tuple[Tuple[Edge, float], ...]:
        """Current top-k edges as ``(edge, score)`` pairs."""
        self._ensure_attached()
        scores = self._session.edge_betweenness()
        return tuple(top_k_items(scores.items(), self.k if k is None else k))

    def ranking_churn(self) -> List[int]:
        """Vertices entering/leaving the top-k between recorded snapshots."""
        churn: List[int] = []
        for previous, current in zip(self.snapshots, self.snapshots[1:]):
            before = set(previous.vertex_ranking())
            after = set(current.vertex_ranking())
            churn.append(len(before.symmetric_difference(after)))
        return churn

    # -- Internals ------------------------------------------------------- #
    def _record(self, update: EdgeUpdate) -> TopKSnapshot:
        snapshot = TopKSnapshot(
            update=update,
            top_vertices=self.top_vertices(),
            top_edges=self.top_edges() if self.track_edges else (),
        )
        self.snapshots.append(snapshot)
        return snapshot

    def _ensure_attached(self) -> None:
        if self._session is None:
            raise ConfigurationError(
                "tracker is not attached to a session yet; register it via "
                "session.subscribe(tracker)"
            )
