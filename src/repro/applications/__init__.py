"""Applications built on top of the incremental framework.

The paper's headline use case (Section 6.3) is Girvan–Newman community
detection: the algorithm repeatedly removes the edge with the highest edge
betweenness, which is exactly the operation the incremental framework makes
cheap.  A second application, top-k centrality monitoring over an edge
stream, illustrates the "online detection of emerging leaders" direction
mentioned in the conclusions.
"""

from repro.applications.girvan_newman import (
    CommunityHierarchy,
    GirvanNewmanResult,
    girvan_newman,
    modularity,
)
from repro.applications.top_k import TopKMonitor, TopKSnapshot

__all__ = [
    "girvan_newman",
    "GirvanNewmanResult",
    "CommunityHierarchy",
    "modularity",
    "TopKMonitor",
    "TopKSnapshot",
]
