"""Girvan–Newman community detection with incremental edge betweenness.

The Girvan–Newman method (Section 6.3 of the paper) iteratively removes the
edge with the highest edge betweenness; the connected components that emerge
form a hierarchy of communities.  Its classic implementation recomputes all
edge betweenness from scratch after each removal, which is what made it
impractical on large graphs.  With the incremental framework, each removal
only repairs the affected part of the per-source data, yielding the
order-of-magnitude speedups of Figure 9.

Two execution modes share the same driver:

* ``use_incremental=True`` — maintain edge betweenness through a
  :class:`~repro.api.session.BetweennessSession` (the paper's method);
* ``use_incremental=False`` — recompute with Brandes after every removal
  (the baseline the speedup is measured against).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.algorithms.brandes import brandes_betweenness
from repro.api.config import BetweennessConfig
from repro.api.session import BetweennessSession
from repro.exceptions import ConfigurationError
from repro.graph.components import connected_components
from repro.graph.graph import Graph
from repro.types import Edge, Vertex


def modularity(graph: Graph, communities: Sequence[Set[Vertex]]) -> float:
    """Modularity Q of a partition of ``graph``.

    Undirected (Newman): ``Q = sum_c [ m_c / m - (d_c / 2m)^2 ]`` where
    ``m_c`` is the number of intra-community edges and ``d_c`` the total
    degree of community ``c``.

    Directed (Leicht–Newman): ``Q = sum_c [ m_c / m - d_c^out * d_c^in /
    m^2 ]`` where ``m`` counts directed edges, ``m_c`` the intra-community
    directed edges and ``d_c^out`` / ``d_c^in`` the community's total out-
    and in-degree.  Applying the undirected formula to a directed graph
    (as this function once did) yields a plausible-looking but wrong value
    — the null model must preserve both degree sequences separately.
    """
    m = graph.num_edges
    if m == 0:
        return 0.0
    membership: Dict[Vertex, int] = {}
    for label, community in enumerate(communities):
        for vertex in community:
            membership[vertex] = label
    intra = [0] * len(communities)
    for u, v in graph.edges():
        if membership[u] == membership[v]:
            intra[membership[u]] += 1
    q = 0.0
    if graph.directed:
        out_degree = [0] * len(communities)
        in_degree = [0] * len(communities)
        for vertex in graph.vertices():
            label = membership[vertex]
            out_degree[label] += graph.degree(vertex)
            in_degree[label] += graph.in_degree(vertex)
        for label in range(len(communities)):
            q += intra[label] / m - (
                out_degree[label] * in_degree[label] / (m * float(m))
            )
        return q
    degree = [0] * len(communities)
    for vertex in graph.vertices():
        label = membership[vertex]
        degree[label] += graph.degree(vertex)
    for label in range(len(communities)):
        q += intra[label] / m - (degree[label] / (2.0 * m)) ** 2
    return q


@dataclass
class CommunityHierarchy:
    """Sequence of partitions produced by successive edge removals.

    ``levels[i]`` is the partition (list of vertex sets) after the ``i``-th
    split, i.e. each time an edge removal increased the number of connected
    components.
    """

    levels: List[List[Set[Vertex]]] = field(default_factory=list)

    def best_partition(self, graph: Graph) -> Tuple[List[Set[Vertex]], float]:
        """Partition with the highest modularity on ``graph`` and its Q."""
        if not self.levels:
            return [set(graph.vertices())], modularity(
                graph, [set(graph.vertices())]
            )
        best = max(self.levels, key=lambda partition: modularity(graph, partition))
        return best, modularity(graph, best)


@dataclass
class GirvanNewmanResult:
    """Outcome of a (possibly truncated) Girvan–Newman run."""

    removed_edges: List[Edge] = field(default_factory=list)
    hierarchy: CommunityHierarchy = field(default_factory=CommunityHierarchy)
    edges_processed: int = 0
    used_incremental: bool = True

    @property
    def num_levels(self) -> int:
        """Number of splits discovered."""
        return len(self.hierarchy.levels)


def girvan_newman(
    graph: Graph,
    max_removals: Optional[int] = None,
    use_incremental: bool = True,
    target_communities: Optional[int] = None,
) -> GirvanNewmanResult:
    """Run (a prefix of) the Girvan–Newman algorithm.

    Parameters
    ----------
    graph:
        Input graph (left unmodified; the driver works on a copy).  On a
        directed graph splits are detected by *weak* connectivity and
        partition quality by directed (Leicht–Newman) modularity.
    max_removals:
        Stop after removing this many edges (``None`` = remove all edges,
        producing the full dendrogram).
    use_incremental:
        Maintain edge betweenness incrementally (the paper's method) or
        recompute from scratch after each removal (baseline).
    target_communities:
        Optionally stop as soon as the graph splits into at least this many
        connected components.
    """
    if max_removals is not None and max_removals < 0:
        raise ConfigurationError("max_removals must be non-negative")
    working = graph.copy()
    result = GirvanNewmanResult(used_incremental=use_incremental)

    session: Optional[BetweennessSession] = None
    if use_incremental:
        session = BetweennessSession(working, BetweennessConfig.for_graph(working))

    num_components = len(connected_components(working))
    total_edges = working.num_edges
    limit = total_edges if max_removals is None else min(max_removals, total_edges)

    for _ in range(limit):
        if working.num_edges == 0:
            break
        if use_incremental:
            edge_scores = session.edge_betweenness()
        else:
            edge_scores = brandes_betweenness(working).edge_scores
        # Highest-betweenness edge; ties broken deterministically by key so
        # the incremental and recompute drivers remove identical sequences.
        target = max(edge_scores.items(), key=lambda item: (item[1], repr(item[0])))[0]
        u, v = target

        working.remove_edge(u, v)
        if use_incremental:
            session.remove_edge(u, v)
        result.removed_edges.append(target)
        result.edges_processed += 1

        components = connected_components(working)
        if len(components) > num_components:
            num_components = len(components)
            result.hierarchy.levels.append([set(c) for c in components])
        if target_communities is not None and num_components >= target_communities:
            break
    return result
