"""Top-k betweenness monitoring over an edge stream (deprecated shim).

The paper's conclusion points at "online detection and prediction of
emerging leaders and communities in social networks" as the application
unlocked by keeping betweenness up to date.  The leader-detection half now
lives in the session layer: a :class:`~repro.api.BetweennessSession` plus a
:class:`~repro.api.TopKTracker` subscriber replays the stream once and
maintains the rankings as events arrive.

:class:`TopKMonitor` is kept as a thin deprecation shim over that pair —
same constructor, same methods, bit-identical snapshots — so existing code
keeps working while it migrates::

    # old                                  # new
    monitor = TopKMonitor(graph, k=10)     session = open_session(graph, ...)
    monitor.process_stream(updates)        tracker = session.subscribe(TopKTracker(k=10))
    monitor.ranking_churn()                for _ in session.stream(updates): ...
                                           tracker.ranking_churn()
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.api.config import BetweennessConfig
from repro.api.session import BetweennessSession
from repro.api.subscribers import TopKSnapshot, TopKTracker
from repro.core.updates import EdgeUpdate
from repro.graph.graph import Graph
from repro.storage.base import BDStore
from repro.types import Edge, Vertex

__all__ = ["TopKMonitor", "TopKSnapshot", "TopKTracker"]


@dataclass
class TopKMonitor:
    """Deprecated facade: maintain the k most central vertices/edges.

    .. deprecated::
        Use :func:`repro.api.open_session` with a subscribed
        :class:`repro.api.TopKTracker` instead; this shim builds exactly
        that pair underneath (so scores and snapshots are bit-identical)
        and will be removed in a future release.

    Parameters
    ----------
    graph:
        Initial graph.
    k:
        Size of the maintained ranking.
    track_edges:
        Also keep the top-k edges by edge betweenness.
    backend:
        Compute backend of the underlying session (``"dicts"`` or
        ``"arrays"``), forwarded into its config.
    store:
        Optional ``BD[.]`` store object for the session (e.g. a
        :class:`~repro.storage.disk.DiskBDStore` for out-of-core
        monitoring); the backend's default store is used otherwise.
    """

    graph: Graph
    k: int = 10
    track_edges: bool = True
    backend: str = "dicts"
    store: Optional[BDStore] = None
    _session: BetweennessSession = field(init=False, repr=False)
    _tracker: TopKTracker = field(init=False, repr=False)

    def __post_init__(self) -> None:
        warnings.warn(
            "TopKMonitor is deprecated; open a repro.api.BetweennessSession "
            "and subscribe a repro.api.TopKTracker instead",
            DeprecationWarning,
            stacklevel=2,
        )
        config = BetweennessConfig.for_graph(self.graph, backend=self.backend)
        self._session = BetweennessSession(self.graph, config, store=self.store)
        self._tracker = self._session.subscribe(
            TopKTracker(k=self.k, track_edges=self.track_edges)
        )

    # ------------------------------------------------------------------ #
    # Stream consumption
    # ------------------------------------------------------------------ #
    @property
    def snapshots(self) -> List[TopKSnapshot]:
        """Ranking snapshots, one per processed update."""
        return self._tracker.snapshots

    @property
    def _framework(self):
        # Kept because historical callers (and tests) reached for the
        # engine directly; the session's serial framework is that engine.
        return self._session.framework

    def process(self, update: EdgeUpdate) -> TopKSnapshot:
        """Apply one update and snapshot the new ranking."""
        self._session.apply(update)
        return self._tracker.snapshots[-1]

    def process_stream(self, updates: Sequence[EdgeUpdate]) -> List[TopKSnapshot]:
        """Apply a whole stream, returning one snapshot per update."""
        return [self.process(update) for update in updates]

    # ------------------------------------------------------------------ #
    # Rankings and churn
    # ------------------------------------------------------------------ #
    def top_vertices(self, k: Optional[int] = None) -> Tuple[Tuple[Vertex, float], ...]:
        """Current top-k vertices as ``(vertex, score)`` pairs."""
        return self._tracker.top_vertices(k)

    def top_edges(self, k: Optional[int] = None) -> Tuple[Tuple[Edge, float], ...]:
        """Current top-k edges as ``(edge, score)`` pairs."""
        return self._tracker.top_edges(k)

    def ranking_churn(self) -> List[int]:
        """Number of vertices entering/leaving the top-k between snapshots."""
        return self._tracker.ranking_churn()
