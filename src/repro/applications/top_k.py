"""Top-k betweenness monitoring over an edge stream.

The paper's conclusion points at "online detection and prediction of
emerging leaders and communities in social networks" as the application
unlocked by keeping betweenness up to date.  :class:`TopKMonitor` implements
the leader-detection half: it consumes an update stream, keeps the k most
central vertices (and optionally edges) after every update, and records how
the ranking churns over time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.framework import IncrementalBetweenness
from repro.core.updates import EdgeUpdate
from repro.exceptions import ConfigurationError
from repro.graph.graph import Graph
from repro.storage.base import BDStore
from repro.types import Edge, Vertex


@dataclass(frozen=True)
class TopKSnapshot:
    """Ranking state after one update."""

    update: EdgeUpdate
    top_vertices: Tuple[Tuple[Vertex, float], ...]
    top_edges: Tuple[Tuple[Edge, float], ...]

    def vertex_ranking(self) -> Tuple[Vertex, ...]:
        """Just the vertices, in rank order."""
        return tuple(vertex for vertex, _ in self.top_vertices)


def _top_k(items, limit: int):
    """The ``limit`` best-ranked ``(element, score)`` pairs.

    Ranking order is descending score with ties broken by ``repr`` of the
    element (exactly the historical full-sort order).  Selection runs
    through ``heapq``'s bounded-heap machinery — O(n log k) per call
    instead of the O(n log n) full sort the monitor used to pay on every
    single stream element.
    """
    # nsmallest under the (-score, repr) key IS nlargest under the ranking
    # order; heapq has no key-inverted nlargest for the string tie-break.
    return heapq.nsmallest(limit, items, key=lambda item: (-item[1], repr(item[0])))


@dataclass
class TopKMonitor:
    """Maintain the k most central vertices/edges while a graph evolves.

    Parameters
    ----------
    graph:
        Initial graph.
    k:
        Size of the maintained ranking.
    track_edges:
        Also keep the top-k edges by edge betweenness.
    backend:
        Compute backend of the underlying framework (``"dicts"`` or
        ``"arrays"``), forwarded verbatim.
    store:
        Optional ``BD[.]`` store for the framework (e.g. a
        :class:`~repro.storage.disk.DiskBDStore` for out-of-core
        monitoring); the backend's default store is used otherwise.
    """

    graph: Graph
    k: int = 10
    track_edges: bool = True
    backend: str = "dicts"
    store: Optional[BDStore] = None
    _framework: IncrementalBetweenness = field(init=False, repr=False)
    snapshots: List[TopKSnapshot] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")
        self._framework = IncrementalBetweenness(
            self.graph, store=self.store, backend=self.backend
        )

    # ------------------------------------------------------------------ #
    # Stream consumption
    # ------------------------------------------------------------------ #
    def process(self, update: EdgeUpdate) -> TopKSnapshot:
        """Apply one update and snapshot the new ranking."""
        self._framework.apply(update)
        snapshot = TopKSnapshot(
            update=update,
            top_vertices=self.top_vertices(),
            top_edges=self.top_edges() if self.track_edges else (),
        )
        self.snapshots.append(snapshot)
        return snapshot

    def process_stream(self, updates: Sequence[EdgeUpdate]) -> List[TopKSnapshot]:
        """Apply a whole stream, returning one snapshot per update."""
        return [self.process(update) for update in updates]

    # ------------------------------------------------------------------ #
    # Rankings
    # ------------------------------------------------------------------ #
    def top_vertices(self, k: Optional[int] = None) -> Tuple[Tuple[Vertex, float], ...]:
        """Current top-k vertices as ``(vertex, score)`` pairs."""
        limit = self.k if k is None else k
        scores = self._framework.vertex_betweenness()
        return tuple(_top_k(scores.items(), limit))

    def top_edges(self, k: Optional[int] = None) -> Tuple[Tuple[Edge, float], ...]:
        """Current top-k edges as ``(edge, score)`` pairs."""
        limit = self.k if k is None else k
        scores = self._framework.edge_betweenness()
        return tuple(_top_k(scores.items(), limit))

    # ------------------------------------------------------------------ #
    # Churn statistics
    # ------------------------------------------------------------------ #
    def ranking_churn(self) -> List[int]:
        """Number of vertices entering/leaving the top-k between snapshots."""
        churn: List[int] = []
        for previous, current in zip(self.snapshots, self.snapshots[1:]):
            before = set(previous.vertex_ranking())
            after = set(current.vertex_ranking())
            churn.append(len(before.symmetric_difference(after)))
        return churn
