"""Command-line interface for the reproduction experiments.

The CLI wraps the experiment harness so the paper's measurements can be
explored without writing Python::

    repro datasets                               # list dataset stand-ins
    repro profile --dataset facebook             # Table 2 row
    repro speedup --dataset synthetic-10k --edges 20 --kind add --variant MO
    repro speedup --dataset synthetic-1k --backend arrays  # CSR kernel
    repro speedup --dataset facebook --variant DO \
        --store-path bd.bin --checkpoint ck.bin   # durable DO store + checkpoint
    repro resume --checkpoint ck.bin --edges 10 --verify --backend arrays
    repro online --dataset facebook --mappers 1,10,50
    repro communities --dataset synthetic-1k --removals 25
    repro proxies --dataset wikielections        # degree/closeness vs betweenness

(``repro`` is installed as a console script; ``python -m repro.cli`` works
identically.)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.algorithms import brandes_betweenness
from repro.algorithms.other_centrality import closeness_centrality, degree_centrality
from repro.analysis import (
    Variant,
    format_table,
    measure_stream_speedups,
    related_work_table,
)
from repro.analysis.correlation import compare_rankings
from repro.applications import girvan_newman, modularity
from repro.core import IncrementalBetweenness
from repro.generators import (
    addition_stream,
    available_datasets,
    load_dataset,
    removal_stream,
)
from repro.graph import profile
from repro.parallel import replay_online_updates_parallel, simulate_online_updates
from repro.types import BACKENDS
from repro.utils.timing import Timer


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scalable online betweenness centrality - experiment CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("datasets", help="list available dataset stand-ins")
    subparsers.add_parser("related-work", help="print the Table 1 comparison")

    profile_parser = subparsers.add_parser(
        "profile", help="structural statistics of a dataset (Table 2 row)"
    )
    _add_dataset_arguments(profile_parser)

    speedup_parser = subparsers.add_parser(
        "speedup", help="per-edge speedup of the incremental framework over Brandes"
    )
    _add_dataset_arguments(speedup_parser)
    speedup_parser.add_argument("--edges", type=int, default=10, help="stream length")
    speedup_parser.add_argument(
        "--kind", choices=["add", "remove"], default="add", help="update kind"
    )
    speedup_parser.add_argument(
        "--variant",
        choices=[variant.value for variant in Variant],
        default=Variant.MO.value,
        help="framework configuration (MP, MO or DO)",
    )
    speedup_parser.add_argument(
        "--batch-size", type=int, default=1,
        help="apply the stream in batches of this many updates "
             "(one source sweep per batch)",
    )
    _add_backend_argument(speedup_parser)
    speedup_parser.add_argument(
        "--store-path", type=Path, default=None,
        help="DO variant only: durable location for a freshly created BD "
             "store (an existing store file is refused, never truncated; "
             "continue from one with `repro resume`)",
    )
    speedup_parser.add_argument(
        "--checkpoint", type=Path, default=None,
        help="write a framework checkpoint here after the stream, for a "
             "later `repro resume`",
    )

    resume_parser = subparsers.add_parser(
        "resume",
        help="resume a framework from a checkpoint and apply more updates",
    )
    resume_parser.add_argument(
        "--checkpoint", type=Path, required=True,
        help="checkpoint sidecar written by `repro speedup --checkpoint`",
    )
    resume_parser.add_argument("--edges", type=int, default=10, help="stream length")
    resume_parser.add_argument(
        "--kind", choices=["add", "remove"], default="add", help="update kind"
    )
    resume_parser.add_argument("--seed", type=int, default=7, help="random seed")
    resume_parser.add_argument(
        "--batch-size", type=int, default=1,
        help="apply the stream in batches of this many updates",
    )
    resume_parser.add_argument(
        "--verify", action="store_true",
        help="recompute betweenness from scratch afterwards and check the "
             "resumed scores match",
    )
    _add_backend_argument(resume_parser)

    online_parser = subparsers.add_parser(
        "online", help="online replay: missed deadlines vs number of mappers"
    )
    _add_dataset_arguments(online_parser)
    online_parser.add_argument("--edges", type=int, default=10, help="replayed arrivals")
    online_parser.add_argument(
        "--mappers", default="1,10", help="comma-separated mapper counts "
        "(simulated through the capacity model)"
    )
    online_parser.add_argument(
        "--time-scale", type=float, default=0.002,
        help="compression factor applied to inter-arrival times",
    )
    online_parser.add_argument(
        "--batch-size", type=int, default=1,
        help="process arrivals in batches of this many updates",
    )
    online_parser.add_argument(
        "--workers", type=int, default=None,
        help="replay on this many REAL worker processes instead of the "
             "capacity-model simulation (ignores --mappers)",
    )
    online_parser.add_argument(
        "--store", choices=["memory", "disk"], default="memory",
        help="per-worker BD store used with --workers",
    )
    online_parser.add_argument(
        "--store-path", type=Path, default=None,
        help="with --workers: durable BD store file each worker reopens to "
             "seed its partition (skips the parallel Brandes bootstrap)",
    )
    _add_backend_argument(online_parser)

    communities_parser = subparsers.add_parser(
        "communities", help="Girvan-Newman community detection"
    )
    _add_dataset_arguments(communities_parser)
    communities_parser.add_argument(
        "--removals", type=int, default=20, help="number of edge removals"
    )

    proxies_parser = subparsers.add_parser(
        "proxies", help="how well degree/closeness approximate betweenness"
    )
    _add_dataset_arguments(proxies_parser)
    proxies_parser.add_argument("--top-k", type=int, default=10)
    return parser


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", choices=list(BACKENDS), default="dicts",
        help="compute backend: the classic dict implementation or the "
             "array-native CSR kernel (bit-identical scores, vectorized "
             "bootstrap)",
    )


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", default="synthetic-1k", choices=sorted(available_datasets())
    )
    parser.add_argument(
        "--vertices", type=int, default=None,
        help="override the stand-in vertex count",
    )
    parser.add_argument("--seed", type=int, default=7, help="random seed")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    command = args.command

    if command == "datasets":
        print(_run_datasets())
    elif command == "related-work":
        print(related_work_table())
    elif command == "profile":
        print(_run_profile(args))
    elif command == "speedup":
        print(_run_speedup(args))
    elif command == "resume":
        text, code = _run_resume(args)
        print(text)
        return code
    elif command == "online":
        print(_run_online(args))
    elif command == "communities":
        print(_run_communities(args))
    elif command == "proxies":
        print(_run_proxies(args))
    else:  # pragma: no cover - argparse enforces the choices
        parser.error(f"unknown command {command!r}")
    return 0


# --------------------------------------------------------------------------- #
# Sub-command implementations (each returns the text to print)
# --------------------------------------------------------------------------- #
def _load(args) -> "Graph":
    return load_dataset(args.dataset, num_vertices=args.vertices, rng=args.seed)


def _run_datasets() -> str:
    rows = [[name] for name in available_datasets()]
    return format_table(["dataset"], rows)


def _run_profile(args) -> str:
    graph = _load(args)
    row = profile(graph, name=args.dataset, rng=args.seed).as_row()
    return format_table(["dataset", "|V|", "|E|", "AD", "CC", "ED"], [row])


def _run_speedup(args) -> str:
    graph = _load(args)
    if args.store_path is not None and Variant(args.variant) is not Variant.DO:
        raise SystemExit("--store-path only applies to the DO variant")
    if args.kind == "add":
        updates = addition_stream(graph, args.edges, rng=args.seed)
    else:
        updates = removal_stream(graph, args.edges, rng=args.seed)
    series = measure_stream_speedups(
        graph, updates, Variant(args.variant), label=args.dataset,
        batch_size=args.batch_size,
        disk_path=args.store_path,
        checkpoint_path=args.checkpoint,
        backend=args.backend,
    )
    stats = series.summary()
    header = ["dataset", "kind", "variant", "batch", "edges", "min", "median",
              "max", "avg skip fraction"]
    row = [
        args.dataset,
        args.kind,
        args.variant,
        args.batch_size,
        len(series.speedups),
        round(stats.minimum, 1),
        round(stats.median, 1),
        round(stats.maximum, 1),
        round(series.average_skip_fraction, 3),
    ]
    per_edge = ", ".join(f"{value:.1f}" for value in series.speedups)
    return format_table(header, [row]) + f"\nper-edge speedups: {per_edge}"


def _run_resume(args) -> tuple:
    framework = IncrementalBetweenness.resume(args.checkpoint, backend=args.backend)
    graph = framework.graph
    lines = [
        f"resumed from {args.checkpoint}: {graph.num_vertices} vertices, "
        f"{graph.num_edges} edges, {framework.num_sources} sources",
    ]
    verified = True
    try:
        if args.kind == "add":
            updates = addition_stream(graph, args.edges, rng=args.seed)
        else:
            updates = removal_stream(graph, args.edges, rng=args.seed)
        timer = Timer()
        with timer.measure():
            if args.batch_size > 1:
                framework.process_stream_batched(updates, args.batch_size)
            else:
                framework.process_stream(updates)
        lines.append(
            f"applied {len(updates)} {args.kind} updates in "
            f"{timer.total:.4f}s ({timer.total / max(1, len(updates)):.4f}s "
            "per update)"
        )
        if args.verify:
            reference = brandes_betweenness(framework.graph)
            deviation = max(
                (
                    abs(framework.vertex_betweenness().get(v, 0.0) - score)
                    for v, score in reference.vertex_scores.items()
                ),
                default=0.0,
            )
            verified = deviation <= 1e-8
            lines.append(
                f"verification vs from-scratch Brandes: "
                f"{'match' if verified else 'MISMATCH'} "
                f"(max |Δ| = {deviation:.2e})"
            )
        if verified:
            # The updates just mutated the durable store, so the old sidecar
            # no longer describes it; refresh it for the next resume.
            framework.checkpoint(args.checkpoint)
            lines.append(f"checkpoint refreshed: {args.checkpoint}")
        else:
            lines.append(
                "verification failed — checkpoint NOT refreshed (the store "
                "was modified, so the old sidecar is now stale by design; "
                "investigate before resuming again)"
            )
    finally:
        framework.store.close()
    return "\n".join(lines), 0 if verified else 1


def _run_online(args) -> str:
    evolving = load_dataset(
        args.dataset, num_vertices=args.vertices, rng=args.seed, as_evolving=True
    )
    prefix = max(0, evolving.num_edges - args.edges)
    base = evolving.base_graph(prefix)
    future = evolving.future_updates(prefix)
    if args.store_path is not None and args.workers is None:
        raise SystemExit("--store-path requires --workers (real executor)")
    rows = []
    if args.workers is not None:
        result = replay_online_updates_parallel(
            base,
            future,
            num_workers=args.workers,
            batch_size=args.batch_size,
            time_scale=args.time_scale,
            store=args.store,
            source_store_path=args.store_path,
            backend=args.backend,
        )
        rows.append(_online_row(args.dataset, f"{args.workers} (real)", result))
    else:
        mapper_counts = [int(token) for token in args.mappers.split(",") if token]
        for mappers in mapper_counts:
            result = simulate_online_updates(
                base,
                future,
                num_mappers=mappers,
                time_scale=args.time_scale,
                batch_size=args.batch_size,
                backend=args.backend,
            )
            rows.append(_online_row(args.dataset, mappers, result))
    return format_table(
        ["dataset", "mappers", "batch", "edges", "missed", "avg delay (s)"], rows
    )


def _online_row(dataset: str, mappers, result) -> list:
    return [
        dataset,
        mappers,
        result.batch_size,
        result.num_updates,
        f"{100 * result.missed_fraction:.1f}%",
        f"{result.average_delay:.4f}",
    ]


def _run_communities(args) -> str:
    graph = _load(args)
    result = girvan_newman(graph, max_removals=args.removals, use_incremental=True)
    partition, q = result.hierarchy.best_partition(graph)
    lines = [
        f"dataset: {args.dataset} ({graph.num_vertices} vertices, {graph.num_edges} edges)",
        f"edges removed: {result.edges_processed}",
        f"splits discovered: {result.num_levels}",
        f"best partition: {len(partition)} communities, modularity Q = {q:.3f}",
    ]
    for index, community in enumerate(sorted(partition, key=len, reverse=True)[:5]):
        lines.append(f"  community {index}: {len(community)} vertices")
    return "\n".join(lines)


def _run_proxies(args) -> str:
    graph = _load(args)
    exact = brandes_betweenness(graph).vertex_scores
    rows = []
    for name, proxy in (
        ("degree", degree_centrality(graph)),
        ("closeness", closeness_centrality(graph)),
    ):
        comparison = compare_rankings(exact, proxy, k=args.top_k)
        spearman, kendall, overlap, mae = comparison.as_row()
        rows.append([name, spearman, kendall, overlap])
    return format_table(
        ["proxy", "spearman", "kendall tau", f"top-{args.top_k} overlap"], rows
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
