"""Command-line interface for the reproduction experiments.

The CLI wraps the experiment harness so the paper's measurements can be
explored without writing Python::

    repro datasets                               # list dataset stand-ins
    repro profile --dataset facebook             # Table 2 row
    repro speedup --dataset synthetic-10k --edges 20 --kind add --variant MO
    repro speedup --dataset synthetic-1k --backend arrays  # CSR kernel
    repro speedup --dataset facebook --variant DO \
        --store-path bd.bin --checkpoint ck.bin   # durable DO store + checkpoint
    repro resume --checkpoint ck.bin --edges 10 --verify
    repro shard --dataset synthetic-1k --root /var/data/bc --shards 4 \
        --edges 20                               # fault-tolerant sharded run
    repro shard --root /var/data/bc --edges 20   # resume the same ensemble
    repro resume --checkpoint /var/data/bc --edges 10   # shard roots work too
    repro online --dataset facebook --mappers 1,10,50
    repro online --dataset facebook --workers 4 --store disk://
    repro online --dataset facebook --workers 4 --store arrays:// \
        --shared-memory                          # zero-copy data plane
    repro communities --dataset synthetic-1k --removals 25
    repro proxies --dataset wikielections        # degree/closeness vs betweenness
    repro --version

Every experiment subcommand runs on the unified session API
(:mod:`repro.api`): the flags below are assembled into one declarative
:class:`~repro.api.BetweennessConfig`.  A pre-built config can be supplied
as JSON via ``--config run.json`` (write one with
``BetweennessConfig.save``); **explicit flags override config-file values,
which override built-in defaults**.  Store backends are addressed by URI
(``memory://``, ``arrays://``, ``disk:///path?mmap=true``).

(``repro`` is installed as a console script; ``python -m repro.cli`` works
identically.)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro import __version__
from repro.algorithms import brandes_betweenness
from repro.algorithms.other_centrality import closeness_centrality, degree_centrality
from repro.analysis import (
    Variant,
    format_table,
    measure_stream_speedups,
    related_work_table,
    variant_config,
)
from repro.analysis.correlation import compare_rankings
from repro.api import (
    BetweennessConfig,
    BetweennessSession,
    CheckpointWritten,
    ShardRecovered,
    WorkerFailed,
    resume_session,
)
from repro.applications import girvan_newman, modularity
from repro.generators import (
    addition_stream,
    available_datasets,
    load_dataset,
    removal_stream,
)
from repro.graph import profile
from repro.parallel import replay_online_updates_parallel, simulate_online_updates
from repro.storage import ShardLayout
from repro.types import BACKENDS
from repro.utils.timing import Timer

#: Help-text suffix shared by every flag that can also come from --config.
_PRECEDENCE = " (precedence: this flag > --config file > default)"


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Scalable online betweenness centrality - experiment CLI. "
            "Experiment subcommands accept --config run.json (a serialized "
            "BetweennessConfig); explicit flags override config-file values, "
            "which override built-in defaults."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("datasets", help="list available dataset stand-ins")
    subparsers.add_parser("related-work", help="print the Table 1 comparison")

    profile_parser = subparsers.add_parser(
        "profile", help="structural statistics of a dataset (Table 2 row)"
    )
    _add_dataset_arguments(profile_parser)

    speedup_parser = subparsers.add_parser(
        "speedup", help="per-edge speedup of the incremental framework over Brandes"
    )
    _add_dataset_arguments(speedup_parser)
    _add_config_argument(speedup_parser)
    speedup_parser.add_argument("--edges", type=int, default=10, help="stream length")
    speedup_parser.add_argument(
        "--kind", choices=["add", "remove"], default="add", help="update kind"
    )
    speedup_parser.add_argument(
        "--variant",
        choices=[variant.value for variant in Variant],
        default=None,
        help="framework configuration (MP, MO or DO; default MO); sets the "
             "store URI and predecessor maintenance" + _PRECEDENCE,
    )
    speedup_parser.add_argument(
        "--batch-size", type=int, default=None,
        help="apply the stream in batches of this many updates "
             "(one source sweep per batch; default 1)" + _PRECEDENCE,
    )
    _add_backend_argument(speedup_parser)
    speedup_parser.add_argument(
        "--store-path", type=Path, default=None,
        help="DO variant only: durable location for a freshly created BD "
             "store (an existing store file is refused, never truncated; "
             "continue from one with `repro resume`)",
    )
    speedup_parser.add_argument(
        "--checkpoint", type=Path, default=None,
        help="write a framework checkpoint here after the stream (the "
             "resolved config is embedded, so `repro resume` needs no other "
             "flags)",
    )

    resume_parser = subparsers.add_parser(
        "resume",
        help="resume a session from a checkpoint and apply more updates "
             "(the config embedded in the checkpoint is restored; flags "
             "below override it)",
    )
    resume_parser.add_argument(
        "--checkpoint", type=Path, required=True,
        help="checkpoint sidecar written by `repro speedup --checkpoint`",
    )
    _add_config_argument(resume_parser)
    resume_parser.add_argument("--edges", type=int, default=10, help="stream length")
    resume_parser.add_argument(
        "--kind", choices=["add", "remove"], default="add", help="update kind"
    )
    resume_parser.add_argument("--seed", type=int, default=7, help="random seed")
    resume_parser.add_argument(
        "--batch-size", type=int, default=None,
        help="apply the stream in batches of this many updates"
             + _PRECEDENCE,
    )
    resume_parser.add_argument(
        "--verify", action="store_true",
        help="recompute betweenness from scratch afterwards and check the "
             "resumed scores match",
    )
    _add_backend_argument(resume_parser)

    shard_parser = subparsers.add_parser(
        "shard",
        help="fault-tolerant sharded execution under a shard:// root "
             "(initialises the ensemble, or resumes it when the root "
             "already holds a manifest)",
    )
    _add_dataset_arguments(shard_parser)
    _add_config_argument(shard_parser)
    shard_parser.add_argument(
        "--root", type=Path, required=True,
        help="shard root directory; becomes the shard:// store URI path "
             "(an existing ensemble there is resumed from disk — dataset "
             "flags then only shape the new update stream)",
    )
    shard_parser.add_argument(
        "--shards", type=int, default=2,
        help="number of shards (= worker processes) for a fresh ensemble; "
             "a resumed ensemble keeps its original count",
    )
    shard_parser.add_argument(
        "--checkpoint-every", type=int, default=4,
        help="checkpoint cadence in batches for a fresh ensemble",
    )
    shard_parser.add_argument("--edges", type=int, default=10, help="stream length")
    shard_parser.add_argument(
        "--kind", choices=["add", "remove"], default="add", help="update kind"
    )
    shard_parser.add_argument(
        "--batch-size", type=int, default=None,
        help="apply the stream in batches of this many updates" + _PRECEDENCE,
    )
    shard_parser.add_argument(
        "--verify", action="store_true",
        help="recompute betweenness from scratch afterwards and check the "
             "sharded scores match",
    )
    _add_backend_argument(shard_parser)
    _add_parallel_arguments(shard_parser)

    online_parser = subparsers.add_parser(
        "online", help="online replay: missed deadlines vs number of mappers"
    )
    _add_dataset_arguments(online_parser)
    _add_config_argument(online_parser)
    online_parser.add_argument("--edges", type=int, default=10, help="replayed arrivals")
    online_parser.add_argument(
        "--mappers", default=None,
        help="comma-separated mapper counts (simulated through the capacity "
             "model); default 1,10, or the config file's workers under "
             "executor=mapreduce" + _PRECEDENCE,
    )
    online_parser.add_argument(
        "--time-scale", type=float, default=0.002,
        help="compression factor applied to inter-arrival times",
    )
    online_parser.add_argument(
        "--batch-size", type=int, default=None,
        help="process arrivals in batches of this many updates (default 1)"
             + _PRECEDENCE,
    )
    online_parser.add_argument(
        "--workers", type=int, default=None,
        help="replay on this many REAL worker processes instead of the "
             "capacity-model simulation (ignores --mappers)" + _PRECEDENCE,
    )
    online_parser.add_argument(
        "--store", default=None,
        help="per-worker BD store used with --workers, as a store URI "
             "(memory:// or disk://; path-less — workers own private "
             "temporary stores) or the legacy kinds memory/disk"
             + _PRECEDENCE,
    )
    online_parser.add_argument(
        "--store-path", type=Path, default=None,
        help="with --workers: durable BD store file each worker reopens to "
             "seed its partition (skips the parallel Brandes bootstrap)",
    )
    _add_backend_argument(online_parser)
    _add_parallel_arguments(online_parser)

    communities_parser = subparsers.add_parser(
        "communities", help="Girvan-Newman community detection"
    )
    _add_dataset_arguments(communities_parser)
    communities_parser.add_argument(
        "--removals", type=int, default=20, help="number of edge removals"
    )

    proxies_parser = subparsers.add_parser(
        "proxies", help="how well degree/closeness approximate betweenness"
    )
    _add_dataset_arguments(proxies_parser)
    proxies_parser.add_argument("--top-k", type=int, default=10)

    serve_parser = subparsers.add_parser(
        "serve",
        help="serve named betweenness sessions over HTTP/SSE",
        description=(
            "Betweenness-as-a-service: multi-tenant, checkpoint-backed "
            "sessions under --root, exposed over HTTP with live SSE event "
            "streams. Uses FastAPI + uvicorn when the repro[service] extra "
            "is installed, otherwise the built-in asyncio server."
        ),
    )
    serve_parser.add_argument(
        "--root", type=Path, default=Path("service-root"), metavar="DIR",
        help="service state directory; sessions found here are restored "
             "from their checkpoints at startup (default: ./service-root)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8750)
    serve_parser.add_argument(
        "--api-key", default=None, metavar="KEY",
        help="require this key (X-API-Key or Bearer) on every request; "
             "falls back to $REPRO_SERVICE_API_KEY; unset serves openly",
    )
    serve_parser.add_argument(
        "--impl", choices=("auto", "fastapi", "asyncio"), default="auto",
        help="transport: 'fastapi' needs the repro[service] extra, "
             "'asyncio' is the dependency-free built-in, 'auto' picks "
             "fastapi when importable (default: auto)",
    )
    serve_parser.add_argument(
        "--max-sessions", type=int, default=64,
        help="refuse new sessions beyond this many live ones (default 64)",
    )
    serve_parser.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="default checkpoint cadence for new sessions: persist after "
             "every N applied batches (default 1 = every batch durable)",
    )
    return parser


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", choices=list(BACKENDS), default=None,
        help="compute backend: the classic dict implementation or the "
             "array-native CSR kernel (bit-identical scores, vectorized "
             "bootstrap; default dicts)" + _PRECEDENCE,
    )


def _add_parallel_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shared-memory", action="store_true", default=None,
        help="zero-copy data plane: workers attach to shared-memory "
             "segments instead of receiving pickled snapshots, and batches "
             "are dispatched as (offset, length) descriptors into a shared "
             "update ring (arrays backend; equivalent to ?shm=1 on the "
             "store URI)" + _PRECEDENCE,
    )
    parser.add_argument(
        "--recv-timeout", type=float, default=None, metavar="SECONDS",
        help="per-reply worker timeout; a worker that stays silent this "
             "long is declared dead (must be positive; default: wait "
             "forever)" + _PRECEDENCE,
    )


def _add_config_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--config", type=Path, default=None, metavar="PATH.json",
        help="JSON-serialized BetweennessConfig supplying defaults for the "
             "flags marked with a precedence note (explicit flags win)",
    )


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", default="synthetic-1k", choices=sorted(available_datasets())
    )
    parser.add_argument(
        "--vertices", type=int, default=None,
        help="override the stand-in vertex count",
    )
    parser.add_argument("--seed", type=int, default=7, help="random seed")


def _base_config(args) -> BetweennessConfig:
    """The config file's settings, or plain defaults when none was given."""
    config_path = getattr(args, "config", None)
    if config_path is not None:
        return BetweennessConfig.load(config_path)
    return BetweennessConfig()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    command = args.command

    if command == "datasets":
        print(_run_datasets())
    elif command == "related-work":
        print(related_work_table())
    elif command == "profile":
        print(_run_profile(args))
    elif command == "speedup":
        print(_run_speedup(args))
    elif command == "resume":
        text, code = _run_resume(args)
        print(text)
        return code
    elif command == "shard":
        text, code = _run_shard(args)
        print(text)
        return code
    elif command == "online":
        print(_run_online(args))
    elif command == "communities":
        print(_run_communities(args))
    elif command == "proxies":
        print(_run_proxies(args))
    elif command == "serve":
        return _run_serve(args)
    else:  # pragma: no cover - argparse enforces the choices
        parser.error(f"unknown command {command!r}")
    return 0


# --------------------------------------------------------------------------- #
# Sub-command implementations (each returns the text to print)
# --------------------------------------------------------------------------- #
def _load(args) -> "Graph":
    return load_dataset(args.dataset, num_vertices=args.vertices, rng=args.seed)


def _run_datasets() -> str:
    rows = [[name] for name in available_datasets()]
    return format_table(["dataset"], rows)


def _run_profile(args) -> str:
    graph = _load(args)
    row = profile(graph, name=args.dataset, rng=args.seed).as_row()
    return format_table(["dataset", "|V|", "|E|", "AD", "CC", "ED"], [row])


def _resolve_speedup_config(args, graph) -> BetweennessConfig:
    """Flags > config file > defaults, resolved into one session config."""
    base = _base_config(args)
    if args.variant is not None or args.config is None:
        # An explicit --variant (or the absence of any config file) routes
        # through the MP/MO/DO mapping; a config file with no --variant is
        # taken verbatim (its store URI already says where records live).
        variant = Variant(args.variant) if args.variant is not None else Variant.MO
        base = variant_config(
            variant,
            directed=graph.directed,
            backend=base.backend,
            batch_size=base.batch_size,
            disk_path=args.store_path,
        ).replace(checkpoint_path=base.checkpoint_path)
    overrides = {"directed": graph.directed}
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.batch_size is not None:
        overrides["batch_size"] = args.batch_size
    if args.checkpoint is not None:
        overrides["checkpoint_path"] = str(args.checkpoint)
    return base.replace(**overrides)


def _run_speedup(args) -> str:
    graph = _load(args)
    if args.store_path is not None and args.variant != Variant.DO.value:
        raise SystemExit("--store-path only applies to the DO variant")
    config = _resolve_speedup_config(args, graph)
    if args.kind == "add":
        updates = addition_stream(graph, args.edges, rng=args.seed)
    else:
        updates = removal_stream(graph, args.edges, rng=args.seed)
    variant = (
        Variant.MP if config.maintain_predecessors
        else Variant.DO if config.store.startswith("disk")
        else Variant.MO
    )
    series = measure_stream_speedups(
        graph, updates, variant, label=args.dataset, config=config
    )
    stats = series.summary()
    header = ["dataset", "kind", "variant", "batch", "edges", "min", "median",
              "max", "avg skip fraction"]
    row = [
        args.dataset,
        args.kind,
        variant.value,
        config.batch_size,
        len(series.speedups),
        round(stats.minimum, 1),
        round(stats.median, 1),
        round(stats.maximum, 1),
        round(series.average_skip_fraction, 3),
    ]
    per_edge = ", ".join(f"{value:.1f}" for value in series.speedups)
    return format_table(header, [row]) + f"\nper-edge speedups: {per_edge}"


def _run_resume(args) -> tuple:
    # The checkpoint carries the config it was written under; --config and
    # explicit flags override it in the usual order (flag > file > embedded).
    overrides = {}
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.batch_size is not None:
        overrides["batch_size"] = args.batch_size
    session = resume_session(
        args.checkpoint,
        config=BetweennessConfig.load(args.config) if args.config else None,
        **overrides,
    )
    config = session.config
    graph = session.graph
    # A shard-root checkpoint resumes a sharded session, which has no single
    # serial framework; every source is live on some shard.
    num_sources = (
        session.framework.num_sources
        if config.executor == "serial"
        else graph.num_vertices
    )
    lines = [
        f"resumed from {args.checkpoint}: {graph.num_vertices} vertices, "
        f"{graph.num_edges} edges, {num_sources} sources "
        f"(executor {config.executor}, backend {config.backend}, "
        f"store {config.store})",
    ]
    verified = True
    try:
        if args.kind == "add":
            updates = addition_stream(graph, args.edges, rng=args.seed)
        else:
            updates = removal_stream(graph, args.edges, rng=args.seed)
        timer = Timer()
        with timer.measure():
            for _ in session.stream(updates, batch_size=config.batch_size):
                pass
        lines.append(
            f"applied {len(updates)} {args.kind} updates in "
            f"{timer.total:.4f}s ({timer.total / max(1, len(updates)):.4f}s "
            "per update)"
        )
        if args.verify:
            reference = brandes_betweenness(session.graph)
            deviation = max(
                (
                    abs(session.vertex_betweenness().get(v, 0.0) - score)
                    for v, score in reference.vertex_scores.items()
                ),
                default=0.0,
            )
            verified = deviation <= 1e-8
            lines.append(
                f"verification vs from-scratch Brandes: "
                f"{'match' if verified else 'MISMATCH'} "
                f"(max |Δ| = {deviation:.2e})"
            )
        if verified:
            # The updates just mutated the durable store, so the old sidecar
            # no longer describes it; refresh it for the next resume.  A
            # sharded session checkpoints into its shard root instead.
            written = (
                session.checkpoint()
                if config.executor == "shard"
                else session.checkpoint(args.checkpoint)
            )
            lines.append(f"checkpoint refreshed: {written}")
        else:
            lines.append(
                "verification failed — checkpoint NOT refreshed (the store "
                "was modified, so the old sidecar is now stale by design; "
                "investigate before resuming again)"
            )
    finally:
        session.close()
    return "\n".join(lines), 0 if verified else 1


def _run_shard(args) -> tuple:
    root = Path(args.root)
    base = _base_config(args)
    backend = args.backend if args.backend is not None else base.backend
    batch_size = (
        args.batch_size if args.batch_size is not None else base.batch_size
    )
    events: list = []
    parallel_overrides = {}
    if args.shared_memory is not None:
        parallel_overrides["shared_memory"] = args.shared_memory
    if args.recv_timeout is not None:
        parallel_overrides["recv_timeout"] = args.recv_timeout
    if ShardLayout.is_shard_root(root):
        session = resume_session(
            root, backend=backend, batch_size=batch_size, **parallel_overrides
        )
        session.subscribe(events.append)
        graph = session.graph
        lines = [
            f"resumed shard root {root}: {session.config.workers} shards, "
            f"{graph.num_vertices} vertices, {graph.num_edges} edges "
            f"(backend {session.config.backend})",
        ]
    else:
        graph = _load(args)
        uri = (
            f"shard://{root.resolve()}?shards={args.shards}"
            f"&checkpoint_every={args.checkpoint_every}"
        )
        config = base.replace(
            executor="shard",
            workers=args.shards,
            store=uri,
            backend=backend,
            batch_size=batch_size,
            directed=graph.directed,
            checkpoint_path=None,
            checkpoint_every=None,
            seed_store_path=None,
            **parallel_overrides,
        )
        session = BetweennessSession(graph, config, subscribers=[events.append])
        lines = [
            f"initialised shard root {root}: {args.shards} shards, "
            f"checkpoint every {args.checkpoint_every} batches, "
            f"{graph.num_vertices} vertices, {graph.num_edges} edges "
            f"(backend {backend})",
        ]
    verified = True
    try:
        if args.kind == "add":
            updates = addition_stream(session.graph, args.edges, rng=args.seed)
        else:
            updates = removal_stream(session.graph, args.edges, rng=args.seed)
        timer = Timer()
        with timer.measure():
            for _ in session.stream(updates, batch_size=batch_size):
                pass
        failures = [e for e in events if isinstance(e, WorkerFailed)]
        recoveries = [e for e in events if isinstance(e, ShardRecovered)]
        checkpoints = [e for e in events if isinstance(e, CheckpointWritten)]
        lines.append(
            f"applied {len(updates)} {args.kind} updates in "
            f"{timer.total:.4f}s — {len(checkpoints)} checkpoint rounds, "
            f"{len(failures)} worker failures, {len(recoveries)} recoveries"
        )
        for event in recoveries:
            lines.append(
                f"  shard {event.shard} recovered: "
                f"{event.replayed_batches} batches replayed in "
                f"{event.seconds:.3f}s"
            )
        top = session.top_k(5)
        lines.append(
            "top vertices: "
            + ", ".join(f"{vertex}={score:.2f}" for vertex, score in top)
        )
        if args.verify:
            reference = brandes_betweenness(session.graph)
            deviation = max(
                (
                    abs(session.vertex_betweenness().get(v, 0.0) - score)
                    for v, score in reference.vertex_scores.items()
                ),
                default=0.0,
            )
            verified = deviation <= 1e-8
            lines.append(
                f"verification vs from-scratch Brandes: "
                f"{'match' if verified else 'MISMATCH'} "
                f"(max |Δ| = {deviation:.2e})"
            )
    finally:
        # close() runs a final checkpoint round, so the root is immediately
        # resumable from exactly where this stream stopped.
        session.close()
    lines.append(f"shard root ready to resume: {root}")
    return "\n".join(lines), 0 if verified else 1


def _run_online(args) -> str:
    base = _base_config(args)
    backend = args.backend if args.backend is not None else base.backend
    batch_size = args.batch_size if args.batch_size is not None else base.batch_size
    workers = args.workers
    if workers is None and base.executor == "process":
        workers = base.workers
    store = args.store if args.store is not None else base.store
    shared_memory = (
        args.shared_memory if args.shared_memory is not None else base.shared_memory
    )
    recv_timeout = (
        args.recv_timeout if args.recv_timeout is not None else base.recv_timeout
    )
    if args.mappers is not None:
        mappers_spec = args.mappers
    elif base.executor == "mapreduce":
        mappers_spec = str(base.workers)
    else:
        mappers_spec = "1,10"

    evolving = load_dataset(
        args.dataset, num_vertices=args.vertices, rng=args.seed, as_evolving=True
    )
    prefix = max(0, evolving.num_edges - args.edges)
    base_graph = evolving.base_graph(prefix)
    future = evolving.future_updates(prefix)
    if args.store_path is not None and workers is None:
        raise SystemExit("--store-path requires --workers (real executor)")
    rows = []
    if workers is not None:
        result = replay_online_updates_parallel(
            base_graph,
            future,
            num_workers=workers,
            batch_size=batch_size,
            time_scale=args.time_scale,
            store=store,
            source_store_path=args.store_path,
            backend=backend,
            shared_memory=shared_memory,
            recv_timeout=recv_timeout,
        )
        rows.append(_online_row(args.dataset, f"{workers} (real)", result))
    else:
        mapper_counts = [int(token) for token in mappers_spec.split(",") if token]
        for mappers in mapper_counts:
            result = simulate_online_updates(
                base_graph,
                future,
                num_mappers=mappers,
                time_scale=args.time_scale,
                batch_size=batch_size,
                backend=backend,
                store=store,
            )
            rows.append(_online_row(args.dataset, mappers, result))
    return format_table(
        ["dataset", "mappers", "batch", "edges", "missed", "avg delay (s)"], rows
    )


def _online_row(dataset: str, mappers, result) -> list:
    return [
        dataset,
        mappers,
        result.batch_size,
        result.num_updates,
        f"{100 * result.missed_fraction:.1f}%",
        f"{result.average_delay:.4f}",
    ]


def _run_communities(args) -> str:
    graph = _load(args)
    result = girvan_newman(graph, max_removals=args.removals, use_incremental=True)
    partition, q = result.hierarchy.best_partition(graph)
    lines = [
        f"dataset: {args.dataset} ({graph.num_vertices} vertices, {graph.num_edges} edges)",
        f"edges removed: {result.edges_processed}",
        f"splits discovered: {result.num_levels}",
        f"best partition: {len(partition)} communities, modularity Q = {q:.3f}",
    ]
    for index, community in enumerate(sorted(partition, key=len, reverse=True)[:5]):
        lines.append(f"  community {index}: {len(community)} vertices")
    return "\n".join(lines)


def _run_proxies(args) -> str:
    graph = _load(args)
    exact = brandes_betweenness(graph).vertex_scores
    rows = []
    for name, proxy in (
        ("degree", degree_centrality(graph)),
        ("closeness", closeness_centrality(graph)),
    ):
        comparison = compare_rankings(exact, proxy, k=args.top_k)
        spearman, kendall, overlap, mae = comparison.as_row()
        rows.append([name, spearman, kendall, overlap])
    return format_table(
        ["proxy", "spearman", "kendall tau", f"top-{args.top_k} overlap"], rows
    )


def _run_serve(args) -> int:
    import asyncio
    import os

    from repro.service import HAVE_FASTAPI, ServiceServer, ServiceSettings
    from repro.service.app import create_app, require_fastapi

    api_key = args.api_key or os.environ.get("REPRO_SERVICE_API_KEY") or None
    settings = ServiceSettings(
        root=args.root,
        api_key=api_key,
        max_sessions=args.max_sessions,
        default_checkpoint_every=args.checkpoint_every,
    )
    impl = args.impl
    if impl == "auto":
        impl = "fastapi" if HAVE_FASTAPI and _have_uvicorn() else "asyncio"
    if impl == "fastapi":
        require_fastapi()
        import uvicorn

        uvicorn.run(create_app(settings), host=args.host, port=args.port)
        return 0
    server = ServiceServer(settings)
    print(
        f"serving {settings.root} on http://{args.host}:{args.port} "
        f"(asyncio transport, auth {'on' if api_key else 'off'})"
    )
    try:
        asyncio.run(server.serve(args.host, args.port))
    except KeyboardInterrupt:
        pass
    return 0


def _have_uvicorn() -> bool:
    import importlib.util

    return importlib.util.find_spec("uvicorn") is not None


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
