"""Core contribution of the paper: incremental vertex & edge betweenness.

The public entry point is :class:`IncrementalBetweenness`; the remaining
modules implement the per-source machinery (classification of an update,
search-phase repairs for additions and removals, and the shared dependency
accumulation) and are exposed for tests, experiments and advanced users.
"""

from repro.core.checkpoint import (
    FrameworkCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.core.classification import SourceClassification, UpdateCase, classify
from repro.core.framework import BACKENDS, IncrementalBetweenness
from repro.core.kernel import (
    ArrayKernel,
    FlatSourceData,
    brandes_betweenness_arrays,
)
from repro.core.repair import RepairPlan
from repro.core.result import BatchResult, SourceUpdateStats, UpdateResult
from repro.core.source_update import update_source
from repro.core.updates import EdgeUpdate, UpdateKind, additions, batches, removals

__all__ = [
    "IncrementalBetweenness",
    "BACKENDS",
    "ArrayKernel",
    "FlatSourceData",
    "brandes_betweenness_arrays",
    "FrameworkCheckpoint",
    "save_checkpoint",
    "load_checkpoint",
    "EdgeUpdate",
    "UpdateKind",
    "additions",
    "batches",
    "removals",
    "UpdateResult",
    "BatchResult",
    "SourceUpdateStats",
    "UpdateCase",
    "SourceClassification",
    "classify",
    "RepairPlan",
    "update_source",
]
