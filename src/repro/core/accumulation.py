"""Shared dependency-accumulation phase of the incremental framework.

Every per-source repair (addition or removal, with or without structural
changes) ends with the same kind of backtracking pass, which the paper
spreads over Algorithms 2-10: walk the affected region of the shortest-path
DAG from the deepest level towards the source and, for every traversed edge,

* add the *new* dependency ``sigma'[v]/sigma'[w] * (1 + delta'[w])`` carried
  by the edge in the new DAG, and
* subtract the *old* dependency ``sigma[v]/sigma[w] * (1 + delta[w])`` it
  carried in the old DAG,

updating the edge betweenness with both terms and folding the net change of
each vertex's dependency into its betweenness score.  Vertices whose
shortest-path data changed (the "affected" set of the
:class:`~repro.core.repair.RepairPlan`) rebuild their dependency from
scratch; vertices on the fringe (ancestors of the affected region) only
receive corrections.

This module implements that pass once, generically, instead of once per
case; the specialised search phases guarantee the two invariants it relies
on:

1. the affected set is downward-closed in the new DAG (every new-DAG child
   of an affected vertex is affected), so a from-scratch dependency is fed by
   all of its children;
2. every affected vertex is enqueued in the level queues at its new distance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.algorithms.brandes import SourceData
from repro.core.repair import RepairPlan
from repro.graph.graph import Graph
from repro.types import Edge, EdgeScores, Vertex, VertexScores


@dataclass
class AccumulationResult:
    """Output of the dependency-accumulation phase for one source.

    ``new_delta`` holds the updated dependency of every vertex whose
    dependency changed (affected vertices and the fringe above them);
    ``vertices_touched`` counts them, which the experiment harness uses as a
    proxy for the amount of work done per source.
    """

    new_delta: Dict[Vertex, float] = field(default_factory=dict)
    vertices_touched: int = 0


def accumulate_dependencies(
    graph: Graph,
    source: Vertex,
    data: SourceData,
    plan: RepairPlan,
    vertex_scores: VertexScores,
    edge_scores: EdgeScores,
    edge_key: Callable[[Vertex, Vertex], Edge],
    excluded_old_edge: Optional[Tuple[Vertex, Vertex]] = None,
) -> AccumulationResult:
    """Run the dependency accumulation for one source and fold in the scores.

    Parameters
    ----------
    graph:
        The graph *after* the update.
    source:
        The source whose betweenness data is being repaired.
    data:
        The old ``BD[source]`` (distances, sigmas, dependencies before the
        update).
    plan:
        Output of the search phase: affected vertices, their new distances /
        shortest-path counts, level queues, disconnections and, for removals,
        the dependency formerly carried by the removed edge.
    vertex_scores, edge_scores:
        Global score dictionaries, mutated in place with the per-source
        corrections.
    edge_key:
        Canonicalisation function for edge-score keys.
    excluded_old_edge:
        For additions, the newly added edge: although its endpoints satisfied
        the old parent/child distance relation when ``dd == 1``, the edge did
        not exist before the update, so it must not receive an old-dependency
        subtraction.
    """
    if graph.directed:
        # The fused ±-sweep below relies on an undirected rigidity: adjacent
        # vertices' distances differ by at most one, so a fringe ancestor is
        # always touched before the descending level loop passes its level.
        # On a directed graph an old-DAG parent can keep its distance while
        # its child drops arbitrarily far, so the directed path separates
        # the flows instead (see :func:`_accumulate_directed`).
        return _accumulate_directed(
            graph=graph,
            source=source,
            data=data,
            plan=plan,
            vertex_scores=vertex_scores,
            edge_scores=edge_scores,
            edge_key=edge_key,
            excluded_old_edge=excluded_old_edge,
        )
    old_distance = data.distance
    old_sigma = data.sigma
    old_delta = data.delta
    new_distance = plan.new_distance
    new_sigma = plan.new_sigma
    affected = plan.affected
    disconnected: FrozenSet[Vertex] = frozenset(plan.disconnected)

    def dist_new(vertex: Vertex) -> Optional[int]:
        if vertex in disconnected:
            return None
        found = new_distance.get(vertex)
        if found is not None:
            return found
        return old_distance.get(vertex)

    def sig_new(vertex: Vertex) -> int:
        found = new_sigma.get(vertex)
        if found is not None:
            return found
        return old_sigma.get(vertex, 0)

    excluded: FrozenSet[Vertex] = frozenset(excluded_old_edge or ())

    # Level queues: start from the plan's affected vertices; fringe vertices
    # are appended as they are touched.  Affected vertices rebuild their
    # dependency from scratch, fringe vertices start from their old value.
    buckets: Dict[int, List[Vertex]] = {
        level: list(vertices) for level, vertices in plan.level_queues.items()
    }
    new_delta: Dict[Vertex, float] = {vertex: 0.0 for vertex in affected}

    def touch(vertex: Vertex) -> None:
        """Start tracking a fringe vertex (ancestor of the affected region)."""
        if vertex in new_delta:
            return
        new_delta[vertex] = old_delta.get(vertex, 0.0)
        level = dist_new(vertex)
        if level is not None:
            buckets.setdefault(level, []).append(vertex)

    # Removal seeding: the removed edge (high, low) no longer exists, so the
    # dependency it carried must be subtracted from ``high`` explicitly and
    # propagated upwards from there (Alg. 2 lines 11-13, Alg. 7 line 16).
    # The same dependency is subtracted from the edge's own score entry:
    # after every source is processed the entry nets out to ~0 and is either
    # dropped with the edge, or — when the edge reappears later in a batch —
    # becomes the clean base the re-addition accumulates onto.
    if plan.removed_edge_dependency is not None and plan.high is not None:
        touch(plan.high)
        new_delta[plan.high] -= plan.removed_edge_dependency
        if plan.low is not None:
            key = edge_key(plan.high, plan.low)
            edge_scores[key] = (
                edge_scores.get(key, 0.0) - plan.removed_edge_dependency
            )

    processed: Set[Vertex] = set()
    max_level = max(buckets) if buckets else 0
    for level in range(max_level, 0, -1):
        queue = buckets.get(level)
        if not queue:
            continue
        index = 0
        while index < len(queue):
            vertex = queue[index]
            index += 1
            if vertex in processed:
                continue
            processed.add(vertex)

            w_dist_new = dist_new(vertex)
            w_dist_old = old_distance.get(vertex)
            w_sigma_new = sig_new(vertex)
            w_sigma_old = old_sigma.get(vertex)
            w_delta_new = new_delta[vertex]
            w_delta_old = old_delta.get(vertex, 0.0)
            is_excluded_child = vertex in excluded

            for neighbor in graph.in_neighbors(vertex):
                n_dist_new = dist_new(neighbor)
                n_dist_old = old_distance.get(neighbor)

                # New shortest-path DAG edge (neighbor -> vertex).
                if (
                    w_dist_new is not None
                    and n_dist_new is not None
                    and n_dist_new + 1 == w_dist_new
                ):
                    contribution = (
                        sig_new(neighbor) / w_sigma_new * (1.0 + w_delta_new)
                    )
                    touch(neighbor)
                    new_delta[neighbor] += contribution
                    key = edge_key(neighbor, vertex)
                    edge_scores[key] = edge_scores.get(key, 0.0) + contribution

                # Old shortest-path DAG edge (neighbor -> vertex): subtract the
                # dependency it used to carry (skipping the newly added edge,
                # which did not exist before the update).
                if (
                    w_dist_old is not None
                    and n_dist_old is not None
                    and n_dist_old + 1 == w_dist_old
                    and not (is_excluded_child and neighbor in excluded)
                ):
                    old_contribution = (
                        old_sigma[neighbor] / w_sigma_old * (1.0 + w_delta_old)
                    )
                    key = edge_key(neighbor, vertex)
                    edge_scores[key] = edge_scores.get(key, 0.0) - old_contribution
                    if neighbor not in affected:
                        touch(neighbor)
                        new_delta[neighbor] -= old_contribution

            if vertex != source:
                vertex_scores[vertex] = (
                    vertex_scores.get(vertex, 0.0) + w_delta_new - w_delta_old
                )

    # Disconnected vertices (removal only): their dependency disappears
    # entirely, as does the dependency carried by every old DAG edge between
    # them (Algorithm 10).  Edges towards the still-reachable part cannot
    # exist: a reachable neighbor would make the vertex reachable.
    for vertex in plan.disconnected:
        w_dist_old = old_distance.get(vertex)
        w_sigma_old = old_sigma.get(vertex)
        w_delta_old = old_delta.get(vertex, 0.0)
        if vertex != source:
            vertex_scores[vertex] = vertex_scores.get(vertex, 0.0) - w_delta_old
        if w_dist_old is None:
            continue
        for neighbor in graph.in_neighbors(vertex):
            n_dist_old = old_distance.get(neighbor)
            if n_dist_old is not None and n_dist_old + 1 == w_dist_old:
                old_contribution = (
                    old_sigma[neighbor] / w_sigma_old * (1.0 + w_delta_old)
                )
                key = edge_key(neighbor, vertex)
                edge_scores[key] = edge_scores.get(key, 0.0) - old_contribution

    return AccumulationResult(
        new_delta=new_delta, vertices_touched=len(new_delta)
    )


def _accumulate_directed(
    graph: Graph,
    source: Vertex,
    data: SourceData,
    plan: RepairPlan,
    vertex_scores: VertexScores,
    edge_scores: EdgeScores,
    edge_key: Callable[[Vertex, Vertex], Edge],
    excluded_old_edge: Optional[Tuple[Vertex, Vertex]] = None,
) -> AccumulationResult:
    """Dependency accumulation for directed graphs (three clean phases).

    The old and new dependency flows have *different* topological orders on
    a digraph (a vertex's new distance can drop far below an unchanged
    old-DAG parent's), so instead of fusing them into one sweep this path:

    1. closes the repaired region upward — every old- or new-DAG in-parent
       of a vertex whose data changed joins the region, transitively up to
       the source (the same set of vertices the fused sweep would touch);
    2. recomputes the region's *new* dependencies from scratch by
       descending new distance (``delta'[w] = sum over new-DAG children c
       of sigma'[w]/sigma'[c] * (1 + delta'[c])``, children outside the
       region contributing their stored, unchanged dependency) — a pure
       function of the new DAG, needing no old-flow interleaving;
    3. folds the score corrections in: per region vertex the dependency
       difference, per in-edge the new contribution added and the old one
       (a pure function of the *stored* old values, hence order-free)
       subtracted.

    The removed shortest-path edge, being absent from the graph, gets its
    explicit subtraction exactly as in the fused sweep; the freshly added
    edge is excluded from old-flow subtraction by orientation.
    """
    old_distance = data.distance
    old_sigma = data.sigma
    old_delta = data.delta
    new_distance = plan.new_distance
    new_sigma = plan.new_sigma
    disconnected: FrozenSet[Vertex] = frozenset(plan.disconnected)

    def dist_new(vertex: Vertex) -> Optional[int]:
        if vertex in disconnected:
            return None
        found = new_distance.get(vertex)
        if found is not None:
            return found
        return old_distance.get(vertex)

    def sig_new(vertex: Vertex) -> int:
        found = new_sigma.get(vertex)
        if found is not None:
            return found
        return old_sigma.get(vertex, 0)

    # ------------------------------------------------------------------ #
    # Phase 1: upward closure of the changed region.
    # ------------------------------------------------------------------ #
    region: Dict[Vertex, None] = {}  # insertion-ordered set, deterministic
    frontier: List[Vertex] = []

    def join(vertex: Vertex) -> None:
        if vertex not in region:
            region[vertex] = None
            frontier.append(vertex)

    for vertex in plan.affected:
        join(vertex)
    for vertex in plan.disconnected:
        join(vertex)
    if plan.removed_edge_dependency is not None and plan.high is not None:
        # The removed edge's tail lost a child contribution; the edge itself
        # is gone from the graph, so the closure scan below cannot find it.
        join(plan.high)
    cursor = 0
    while cursor < len(frontier):
        vertex = frontier[cursor]
        cursor += 1
        w_dist_new = dist_new(vertex)
        w_dist_old = old_distance.get(vertex)
        for parent in graph.in_neighbors(vertex):
            p_dist_new = dist_new(parent) if w_dist_new is not None else None
            if p_dist_new is not None and p_dist_new + 1 == w_dist_new:
                join(parent)
                continue
            if w_dist_old is None:
                continue
            p_dist_old = old_distance.get(parent)
            if p_dist_old is not None and p_dist_old + 1 == w_dist_old:
                join(parent)

    # ------------------------------------------------------------------ #
    # Phase 2: recompute new dependencies by descending new distance.
    # ------------------------------------------------------------------ #
    buckets: Dict[int, List[Vertex]] = {}
    for vertex in region:
        level = dist_new(vertex)
        if level is not None:
            buckets.setdefault(level, []).append(vertex)
    new_delta: Dict[Vertex, float] = {}
    for level in sorted(buckets, reverse=True):
        for vertex in buckets[level]:
            total = 0.0
            vertex_sigma = sig_new(vertex)
            for child in graph.out_neighbors(vertex):
                if dist_new(child) != level + 1:
                    continue
                child_delta = (
                    new_delta[child]
                    if child in new_delta
                    else old_delta.get(child, 0.0)
                )
                total += vertex_sigma / sig_new(child) * (1.0 + child_delta)
            new_delta[vertex] = total

    # ------------------------------------------------------------------ #
    # Phase 3: fold the corrections into the global scores.
    # ------------------------------------------------------------------ #
    if plan.removed_edge_dependency is not None and plan.high is not None:
        key = edge_key(plan.high, plan.low)
        edge_scores[key] = edge_scores.get(key, 0.0) - plan.removed_edge_dependency

    for vertex in region:
        w_dist_new = dist_new(vertex)
        w_dist_old = old_distance.get(vertex)
        w_delta_new = new_delta.get(vertex, 0.0)
        w_delta_old = old_delta.get(vertex, 0.0)
        if vertex != source:
            vertex_scores[vertex] = (
                vertex_scores.get(vertex, 0.0) + w_delta_new - w_delta_old
            )
        for parent in graph.in_neighbors(vertex):
            p_dist_new = dist_new(parent) if w_dist_new is not None else None
            if p_dist_new is not None and p_dist_new + 1 == w_dist_new:
                contribution = (
                    sig_new(parent) / sig_new(vertex) * (1.0 + w_delta_new)
                )
                key = edge_key(parent, vertex)
                edge_scores[key] = edge_scores.get(key, 0.0) + contribution
            if w_dist_old is None or (parent, vertex) == excluded_old_edge:
                continue
            p_dist_old = old_distance.get(parent)
            if p_dist_old is not None and p_dist_old + 1 == w_dist_old:
                old_contribution = (
                    old_sigma[parent] / old_sigma[vertex] * (1.0 + w_delta_old)
                )
                key = edge_key(parent, vertex)
                edge_scores[key] = edge_scores.get(key, 0.0) - old_contribution

    for vertex in plan.disconnected:
        new_delta.pop(vertex, None)
    return AccumulationResult(
        new_delta=new_delta, vertices_touched=len(region)
    )
