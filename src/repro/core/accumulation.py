"""Shared dependency-accumulation phase of the incremental framework.

Every per-source repair (addition or removal, with or without structural
changes) ends with the same kind of backtracking pass, which the paper
spreads over Algorithms 2-10: walk the affected region of the shortest-path
DAG from the deepest level towards the source and, for every traversed edge,

* add the *new* dependency ``sigma'[v]/sigma'[w] * (1 + delta'[w])`` carried
  by the edge in the new DAG, and
* subtract the *old* dependency ``sigma[v]/sigma[w] * (1 + delta[w])`` it
  carried in the old DAG,

updating the edge betweenness with both terms and folding the net change of
each vertex's dependency into its betweenness score.  Vertices whose
shortest-path data changed (the "affected" set of the
:class:`~repro.core.repair.RepairPlan`) rebuild their dependency from
scratch; vertices on the fringe (ancestors of the affected region) only
receive corrections.

This module implements that pass once, generically, instead of once per
case; the specialised search phases guarantee the two invariants it relies
on:

1. the affected set is downward-closed in the new DAG (every new-DAG child
   of an affected vertex is affected), so a from-scratch dependency is fed by
   all of its children;
2. every affected vertex is enqueued in the level queues at its new distance.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, FrozenSet, List, Optional, Set, Tuple
from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.brandes import SourceData
from repro.core.flat import (
    FlatBatchState,
    FlatScratch,
    first_occurrence,
    group_by_level,
    slice_positions,
)
from repro.core.jit import scatter_add
from repro.core.repair import FlatRepairPlan, RepairPlan
from repro.graph.graph import Graph
from repro.types import Edge, EdgeScores, Vertex, VertexScores


@dataclass
class AccumulationResult:
    """Output of the dependency-accumulation phase for one source.

    ``new_delta`` holds the updated dependency of every vertex whose
    dependency changed (affected vertices and the fringe above them);
    ``vertices_touched`` counts them, which the experiment harness uses as a
    proxy for the amount of work done per source.
    """

    new_delta: Dict[Vertex, float] = field(default_factory=dict)
    vertices_touched: int = 0


def accumulate_dependencies(
    graph: Graph,
    source: Vertex,
    data: SourceData,
    plan: RepairPlan,
    vertex_scores: VertexScores,
    edge_scores: EdgeScores,
    edge_key: Callable[[Vertex, Vertex], Edge],
    excluded_old_edge: Optional[Tuple[Vertex, Vertex]] = None,
) -> AccumulationResult:
    """Run the dependency accumulation for one source and fold in the scores.

    Parameters
    ----------
    graph:
        The graph *after* the update.
    source:
        The source whose betweenness data is being repaired.
    data:
        The old ``BD[source]`` (distances, sigmas, dependencies before the
        update).
    plan:
        Output of the search phase: affected vertices, their new distances /
        shortest-path counts, level queues, disconnections and, for removals,
        the dependency formerly carried by the removed edge.
    vertex_scores, edge_scores:
        Global score dictionaries, mutated in place with the per-source
        corrections.
    edge_key:
        Canonicalisation function for edge-score keys.
    excluded_old_edge:
        For additions, the newly added edge: although its endpoints satisfied
        the old parent/child distance relation when ``dd == 1``, the edge did
        not exist before the update, so it must not receive an old-dependency
        subtraction.
    """
    if graph.directed:
        # The fused ±-sweep below relies on an undirected rigidity: adjacent
        # vertices' distances differ by at most one, so a fringe ancestor is
        # always touched before the descending level loop passes its level.
        # On a directed graph an old-DAG parent can keep its distance while
        # its child drops arbitrarily far, so the directed path separates
        # the flows instead (see :func:`_accumulate_directed`).
        return _accumulate_directed(
            graph=graph,
            source=source,
            data=data,
            plan=plan,
            vertex_scores=vertex_scores,
            edge_scores=edge_scores,
            edge_key=edge_key,
            excluded_old_edge=excluded_old_edge,
        )
    old_distance = data.distance
    old_sigma = data.sigma
    old_delta = data.delta
    new_distance = plan.new_distance
    new_sigma = plan.new_sigma
    affected = plan.affected
    disconnected: FrozenSet[Vertex] = frozenset(plan.disconnected)

    def dist_new(vertex: Vertex) -> Optional[int]:
        if vertex in disconnected:
            return None
        found = new_distance.get(vertex)
        if found is not None:
            return found
        return old_distance.get(vertex)

    def sig_new(vertex: Vertex) -> int:
        found = new_sigma.get(vertex)
        if found is not None:
            return found
        return old_sigma.get(vertex, 0)

    excluded: FrozenSet[Vertex] = frozenset(excluded_old_edge or ())

    # Level queues: start from the plan's affected vertices; fringe vertices
    # are appended as they are touched.  Affected vertices rebuild their
    # dependency from scratch, fringe vertices start from their old value.
    buckets: Dict[int, List[Vertex]] = {
        level: list(vertices) for level, vertices in plan.level_queues.items()
    }
    new_delta: Dict[Vertex, float] = {vertex: 0.0 for vertex in affected}

    def touch(vertex: Vertex) -> None:
        """Start tracking a fringe vertex (ancestor of the affected region)."""
        if vertex in new_delta:
            return
        new_delta[vertex] = old_delta.get(vertex, 0.0)
        level = dist_new(vertex)
        if level is not None:
            buckets.setdefault(level, []).append(vertex)

    # Removal seeding: the removed edge (high, low) no longer exists, so the
    # dependency it carried must be subtracted from ``high`` explicitly and
    # propagated upwards from there (Alg. 2 lines 11-13, Alg. 7 line 16).
    # The same dependency is subtracted from the edge's own score entry:
    # after every source is processed the entry nets out to ~0 and is either
    # dropped with the edge, or — when the edge reappears later in a batch —
    # becomes the clean base the re-addition accumulates onto.
    if plan.removed_edge_dependency is not None and plan.high is not None:
        touch(plan.high)
        new_delta[plan.high] -= plan.removed_edge_dependency
        if plan.low is not None:
            key = edge_key(plan.high, plan.low)
            edge_scores[key] = (
                edge_scores.get(key, 0.0) - plan.removed_edge_dependency
            )

    processed: Set[Vertex] = set()
    max_level = max(buckets) if buckets else 0
    for level in range(max_level, 0, -1):
        queue = buckets.get(level)
        if not queue:
            continue
        index = 0
        while index < len(queue):
            vertex = queue[index]
            index += 1
            if vertex in processed:
                continue
            processed.add(vertex)

            w_dist_new = dist_new(vertex)
            w_dist_old = old_distance.get(vertex)
            w_sigma_new = sig_new(vertex)
            w_sigma_old = old_sigma.get(vertex)
            w_delta_new = new_delta[vertex]
            w_delta_old = old_delta.get(vertex, 0.0)
            is_excluded_child = vertex in excluded

            for neighbor in graph.in_neighbors(vertex):
                n_dist_new = dist_new(neighbor)
                n_dist_old = old_distance.get(neighbor)

                # New shortest-path DAG edge (neighbor -> vertex).
                if (
                    w_dist_new is not None
                    and n_dist_new is not None
                    and n_dist_new + 1 == w_dist_new
                ):
                    contribution = (
                        sig_new(neighbor) / w_sigma_new * (1.0 + w_delta_new)
                    )
                    touch(neighbor)
                    new_delta[neighbor] += contribution
                    key = edge_key(neighbor, vertex)
                    edge_scores[key] = edge_scores.get(key, 0.0) + contribution

                # Old shortest-path DAG edge (neighbor -> vertex): subtract the
                # dependency it used to carry (skipping the newly added edge,
                # which did not exist before the update).
                if (
                    w_dist_old is not None
                    and n_dist_old is not None
                    and n_dist_old + 1 == w_dist_old
                    and not (is_excluded_child and neighbor in excluded)
                ):
                    old_contribution = (
                        old_sigma[neighbor] / w_sigma_old * (1.0 + w_delta_old)
                    )
                    key = edge_key(neighbor, vertex)
                    edge_scores[key] = edge_scores.get(key, 0.0) - old_contribution
                    if neighbor not in affected:
                        touch(neighbor)
                        new_delta[neighbor] -= old_contribution

            if vertex != source:
                vertex_scores[vertex] = (
                    vertex_scores.get(vertex, 0.0) + w_delta_new - w_delta_old
                )

    # Disconnected vertices (removal only): their dependency disappears
    # entirely, as does the dependency carried by every old DAG edge between
    # them (Algorithm 10).  Edges towards the still-reachable part cannot
    # exist: a reachable neighbor would make the vertex reachable.
    for vertex in plan.disconnected:
        w_dist_old = old_distance.get(vertex)
        w_sigma_old = old_sigma.get(vertex)
        w_delta_old = old_delta.get(vertex, 0.0)
        if vertex != source:
            vertex_scores[vertex] = vertex_scores.get(vertex, 0.0) - w_delta_old
        if w_dist_old is None:
            continue
        for neighbor in graph.in_neighbors(vertex):
            n_dist_old = old_distance.get(neighbor)
            if n_dist_old is not None and n_dist_old + 1 == w_dist_old:
                old_contribution = (
                    old_sigma[neighbor] / w_sigma_old * (1.0 + w_delta_old)
                )
                key = edge_key(neighbor, vertex)
                edge_scores[key] = edge_scores.get(key, 0.0) - old_contribution

    return AccumulationResult(
        new_delta=new_delta, vertices_touched=len(new_delta)
    )


def _accumulate_directed(
    graph: Graph,
    source: Vertex,
    data: SourceData,
    plan: RepairPlan,
    vertex_scores: VertexScores,
    edge_scores: EdgeScores,
    edge_key: Callable[[Vertex, Vertex], Edge],
    excluded_old_edge: Optional[Tuple[Vertex, Vertex]] = None,
) -> AccumulationResult:
    """Dependency accumulation for directed graphs (three clean phases).

    The old and new dependency flows have *different* topological orders on
    a digraph (a vertex's new distance can drop far below an unchanged
    old-DAG parent's), so instead of fusing them into one sweep this path:

    1. closes the repaired region upward — every old- or new-DAG in-parent
       of a vertex whose data changed joins the region, transitively up to
       the source (the same set of vertices the fused sweep would touch);
    2. recomputes the region's *new* dependencies from scratch by
       descending new distance (``delta'[w] = sum over new-DAG children c
       of sigma'[w]/sigma'[c] * (1 + delta'[c])``, children outside the
       region contributing their stored, unchanged dependency) — a pure
       function of the new DAG, needing no old-flow interleaving;
    3. folds the score corrections in: per region vertex the dependency
       difference, per in-edge the new contribution added and the old one
       (a pure function of the *stored* old values, hence order-free)
       subtracted.

    The removed shortest-path edge, being absent from the graph, gets its
    explicit subtraction exactly as in the fused sweep; the freshly added
    edge is excluded from old-flow subtraction by orientation.
    """
    old_distance = data.distance
    old_sigma = data.sigma
    old_delta = data.delta
    new_distance = plan.new_distance
    new_sigma = plan.new_sigma
    disconnected: FrozenSet[Vertex] = frozenset(plan.disconnected)

    def dist_new(vertex: Vertex) -> Optional[int]:
        if vertex in disconnected:
            return None
        found = new_distance.get(vertex)
        if found is not None:
            return found
        return old_distance.get(vertex)

    def sig_new(vertex: Vertex) -> int:
        found = new_sigma.get(vertex)
        if found is not None:
            return found
        return old_sigma.get(vertex, 0)

    # ------------------------------------------------------------------ #
    # Phase 1: upward closure of the changed region.
    # ------------------------------------------------------------------ #
    region: Dict[Vertex, None] = {}  # insertion-ordered set, deterministic
    frontier: List[Vertex] = []

    def join(vertex: Vertex) -> None:
        if vertex not in region:
            region[vertex] = None
            frontier.append(vertex)

    for vertex in plan.affected:
        join(vertex)
    for vertex in plan.disconnected:
        join(vertex)
    if plan.removed_edge_dependency is not None and plan.high is not None:
        # The removed edge's tail lost a child contribution; the edge itself
        # is gone from the graph, so the closure scan below cannot find it.
        join(plan.high)
    cursor = 0
    while cursor < len(frontier):
        vertex = frontier[cursor]
        cursor += 1
        w_dist_new = dist_new(vertex)
        w_dist_old = old_distance.get(vertex)
        for parent in graph.in_neighbors(vertex):
            p_dist_new = dist_new(parent) if w_dist_new is not None else None
            if p_dist_new is not None and p_dist_new + 1 == w_dist_new:
                join(parent)
                continue
            if w_dist_old is None:
                continue
            p_dist_old = old_distance.get(parent)
            if p_dist_old is not None and p_dist_old + 1 == w_dist_old:
                join(parent)

    # ------------------------------------------------------------------ #
    # Phase 2: recompute new dependencies by descending new distance.
    # ------------------------------------------------------------------ #
    buckets: Dict[int, List[Vertex]] = {}
    for vertex in region:
        level = dist_new(vertex)
        if level is not None:
            buckets.setdefault(level, []).append(vertex)
    new_delta: Dict[Vertex, float] = {}
    for level in sorted(buckets, reverse=True):
        for vertex in buckets[level]:
            total = 0.0
            vertex_sigma = sig_new(vertex)
            for child in graph.out_neighbors(vertex):
                if dist_new(child) != level + 1:
                    continue
                child_delta = (
                    new_delta[child]
                    if child in new_delta
                    else old_delta.get(child, 0.0)
                )
                total += vertex_sigma / sig_new(child) * (1.0 + child_delta)
            new_delta[vertex] = total

    # ------------------------------------------------------------------ #
    # Phase 3: fold the corrections into the global scores.
    # ------------------------------------------------------------------ #
    if plan.removed_edge_dependency is not None and plan.high is not None:
        key = edge_key(plan.high, plan.low)
        edge_scores[key] = edge_scores.get(key, 0.0) - plan.removed_edge_dependency

    for vertex in region:
        w_dist_new = dist_new(vertex)
        w_dist_old = old_distance.get(vertex)
        w_delta_new = new_delta.get(vertex, 0.0)
        w_delta_old = old_delta.get(vertex, 0.0)
        if vertex != source:
            vertex_scores[vertex] = (
                vertex_scores.get(vertex, 0.0) + w_delta_new - w_delta_old
            )
        for parent in graph.in_neighbors(vertex):
            p_dist_new = dist_new(parent) if w_dist_new is not None else None
            if p_dist_new is not None and p_dist_new + 1 == w_dist_new:
                contribution = (
                    sig_new(parent) / sig_new(vertex) * (1.0 + w_delta_new)
                )
                key = edge_key(parent, vertex)
                edge_scores[key] = edge_scores.get(key, 0.0) + contribution
            if w_dist_old is None or (parent, vertex) == excluded_old_edge:
                continue
            p_dist_old = old_distance.get(parent)
            if p_dist_old is not None and p_dist_old + 1 == w_dist_old:
                old_contribution = (
                    old_sigma[parent] / old_sigma[vertex] * (1.0 + w_delta_old)
                )
                key = edge_key(parent, vertex)
                edge_scores[key] = edge_scores.get(key, 0.0) - old_contribution

    for vertex in plan.disconnected:
        new_delta.pop(vertex, None)
    return AccumulationResult(
        new_delta=new_delta, vertices_touched=len(region)
    )


# --------------------------------------------------------------------------- #
# Vectorized (slot-space) variants
# --------------------------------------------------------------------------- #
def accumulate_flat(
    state: FlatBatchState,
    source: int,
    distance: np.ndarray,
    sigma: np.ndarray,
    delta: np.ndarray,
    plan: FlatRepairPlan,
    vscore: np.ndarray,
    registry,
    scratch: FlatScratch,
    exclude_new_edge: bool,
    removed_reg_id: int = -1,
) -> Tuple[np.ndarray, int]:
    """Vectorized dependency accumulation over a :class:`FlatRepairPlan`.

    ``distance`` / ``sigma`` / ``delta`` are the *old* (pre-update) columns,
    ``plan`` carries the post-repair working columns, ``vscore`` the flat
    vertex-score array and ``registry`` the kernel's
    ``EdgeScoreRegistry`` (duck-typed: ``values`` array plus
    ``activate_written``).  Returns ``(new_delta_column, vertices_touched)``;
    the caller writes the column back and zeroes disconnected slots.

    Chunks are processed whole because no dependency write can land on a
    *member of the chunk that emits it*: new-DAG writes target parents one
    level up; old-DAG writes target non-affected old-parents, which by the
    undirected rigidity sit at the same or a lower new level and are never
    chunk-mates (plan chunks are all-affected, fringe chunks all-fringe).
    Per float accumulator the scatter order is the scalar visitation order:
    chunk order is deque (FIFO append) order, flattened edges follow
    adjacency order, and each edge's new-contribution precedes its
    old-contribution via the even/odd sort keys.
    """
    if state.directed:
        return _accumulate_directed_flat(
            state,
            source,
            distance,
            sigma,
            delta,
            plan,
            vscore,
            registry,
            scratch,
            exclude_new_edge,
            removed_reg_id,
        )
    n = state.n
    in_indptr = state.in_indptr
    in_indices = state.in_indices
    in_edge_ids = state.in_edge_ids
    reg_of_edge = state.reg_of_edge
    first_of = scratch.first_of
    wd = plan.work_distance
    ws = plan.work_sigma
    affected = plan.affected_mask
    high, low = plan.high, plan.low

    nd = delta.copy()
    tracked = np.zeros(n, dtype=np.bool_)
    touched = 0
    buckets: Dict[int, Deque[np.ndarray]] = {}
    for level, members in plan.levels:
        buckets.setdefault(level, deque()).append(members)
        nd[members] = 0.0
        tracked[members] = True
        touched += members.size

    # Removal seeding: subtract the removed edge's old dependency from its
    # tail and its own score entry before the sweep (Alg. 2 lines 11-13).
    if plan.removed_edge_dependency is not None:
        red = plan.removed_edge_dependency
        if not tracked[high]:
            tracked[high] = True
            touched += 1
            seed_level = int(wd[high])
            if seed_level != -1:
                buckets.setdefault(seed_level, deque()).append(
                    np.array([high], dtype=np.int64)
                )
        nd[high] -= red
        rid = np.array([removed_reg_id], dtype=np.int64)
        registry.activate_written(rid)
        registry.values[removed_reg_id] -= red

    processed = np.zeros(n, dtype=np.bool_)
    max_level = max(buckets) if buckets else 0
    for level in range(max_level, 0, -1):
        queue = buckets.get(level)
        if not queue:
            continue
        while queue:
            chunk = queue.popleft()
            chunk = chunk[~processed[chunk]]
            if chunk.size == 0:
                continue
            processed[chunk] = True

            wdo = distance[chunk]
            deln = nd[chunk]
            delo = np.where(wdo != -1, delta[chunk], 0.0)

            positions, counts = slice_positions(in_indptr, chunk)
            if positions.size:
                par = in_indices[positions]
                eid = reg_of_edge[in_edge_ids[positions]]
                rep = np.repeat(np.arange(chunk.size, dtype=np.int64), counts)
                pdn = wd[par]
                pdo = distance[par]
                new_e = (pdn != -1) & (pdn + 1 == level)
                old_e = (wdo[rep] != -1) & (pdo != -1) & (pdo + 1 == wdo[rep])
                if exclude_new_edge:
                    # The freshly added edge met the old parent/child
                    # distance relation but did not exist before the update.
                    member = chunk[rep]
                    old_e &= ~(
                        ((member == high) | (member == low))
                        & ((par == high) | (par == low))
                    )

                i_new = np.flatnonzero(new_e)
                i_old = np.flatnonzero(old_e)
                c_new = (
                    ws[par[i_new]] / ws[chunk][rep[i_new]]
                    * (1.0 + deln[rep[i_new]])
                )
                c_old = (
                    sigma[par[i_old]] / sigma[chunk][rep[i_old]]
                    * (1.0 + delo[rep[i_old]])
                )

                # Dependency flow: new contributions to every new-DAG parent,
                # old ones subtracted from non-affected old-DAG parents only
                # (affected parents rebuild from scratch).  Even/odd keys
                # interleave them back into per-edge new-before-old order.
                nd_keep = ~affected[par[i_old]]
                i_old_nd = i_old[nd_keep]
                order = np.argsort(
                    np.concatenate((2 * i_new, 2 * i_old_nd + 1))
                )
                nd_targets = np.concatenate((par[i_new], par[i_old_nd]))[order]
                nd_values = np.concatenate((c_new, -c_old[nd_keep]))[order]

                # Fringe vertices enter the sweep the first time a write
                # lands on them, in write order; rigidity puts them at the
                # current level (live queue) or below (their own bucket).
                fresh = first_occurrence(
                    nd_targets[~tracked[nd_targets]], first_of
                )
                if fresh.size:
                    tracked[fresh] = True
                    touched += fresh.size
                    for lvl, members in group_by_level(
                        fresh, wd[fresh].astype(np.int64)
                    ):
                        if lvl == level:
                            queue.append(members)
                        else:
                            buckets.setdefault(lvl, deque()).append(members)
                scatter_add(nd, nd_targets, nd_values)

                # Edge scores take both flows on every DAG edge.
                eorder = np.argsort(np.concatenate((2 * i_new, 2 * i_old + 1)))
                e_targets = np.concatenate((eid[i_new], eid[i_old]))[eorder]
                e_values = np.concatenate((c_new, -c_old))[eorder]
                registry.activate_written(e_targets)
                scatter_add(registry.values, e_targets, e_values)

            # Same association as the scalar update — (score + new) - old,
            # two sequential float ops — not score + (new - old).
            keep = chunk != source
            targets = chunk[keep]
            vscore[targets] = vscore[targets] + deln[keep] - delo[keep]

    # Disconnected vertices: dependency disappears along with every old-DAG
    # edge among them (Algorithm 10).
    disconnected = plan.disconnected
    if disconnected.size:
        wdo = distance[disconnected]
        delo = np.where(wdo != -1, delta[disconnected], 0.0)
        keep = disconnected != source
        vscore[disconnected[keep]] -= delo[keep]
        positions, counts = slice_positions(in_indptr, disconnected)
        if positions.size:
            par = in_indices[positions]
            eid = reg_of_edge[in_edge_ids[positions]]
            rep = np.repeat(
                np.arange(disconnected.size, dtype=np.int64), counts
            )
            pdo = distance[par]
            old_e = (wdo[rep] != -1) & (pdo != -1) & (pdo + 1 == wdo[rep])
            i_old = np.flatnonzero(old_e)
            c_old = (
                sigma[par[i_old]] / sigma[disconnected][rep[i_old]]
                * (1.0 + delo[rep[i_old]])
            )
            targets = eid[i_old]
            registry.activate_written(targets)
            scatter_add(registry.values, targets, -c_old)

    return nd, touched


def _accumulate_directed_flat(
    state: FlatBatchState,
    source: int,
    distance: np.ndarray,
    sigma: np.ndarray,
    delta: np.ndarray,
    plan: FlatRepairPlan,
    vscore: np.ndarray,
    registry,
    scratch: FlatScratch,
    exclude_new_edge: bool,
    removed_reg_id: int,
) -> Tuple[np.ndarray, int]:
    """Vectorized :func:`_accumulate_directed` (three order-free phases).

    Region membership, not order, determines every result here: phase 2 is
    a pure function of the new DAG evaluated level-synchronously, and phase
    3 touches each vertex- and edge-accumulator from exactly one region
    vertex's scan (new contribution before old, like the scalar loop) — so
    the scalar's set-iteration seed order need not be reproduced.
    """
    n = state.n
    indptr, indices = state.indptr, state.indices
    in_indptr = state.in_indptr
    in_indices = state.in_indices
    in_edge_ids = state.in_edge_ids
    reg_of_edge = state.reg_of_edge
    first_of = scratch.first_of
    wd = plan.work_distance
    ws = plan.work_sigma
    high, low = plan.high, plan.low

    # ------------------------------------------------------------------ #
    # Phase 1: upward closure of the changed region.
    # ------------------------------------------------------------------ #
    region_mask = np.zeros(n, dtype=np.bool_)
    region_chunks: List[np.ndarray] = []
    frontier: Deque[np.ndarray] = deque()

    def join(candidates: np.ndarray) -> None:
        fresh = first_occurrence(candidates[~region_mask[candidates]], first_of)
        if fresh.size:
            region_mask[fresh] = True
            region_chunks.append(fresh)
            frontier.append(fresh)

    seeds = [members for _level, members in plan.levels]
    if plan.disconnected.size:
        seeds.append(plan.disconnected)
    if plan.removed_edge_dependency is not None:
        seeds.append(np.array([high], dtype=np.int64))
    if seeds:
        join(seeds[0] if len(seeds) == 1 else np.concatenate(seeds))
    while frontier:
        members = frontier.popleft()
        positions, counts = slice_positions(in_indptr, members)
        if positions.size == 0:
            continue
        par = in_indices[positions]
        rep = np.repeat(np.arange(members.size, dtype=np.int64), counts)
        wdn = wd[members][rep]
        wdo = distance[members][rep]
        pdn = wd[par]
        pdo = distance[par]
        joins = ((wdn != -1) & (pdn != -1) & (pdn + 1 == wdn)) | (
            (wdo != -1) & (pdo != -1) & (pdo + 1 == wdo)
        )
        join(par[joins])
    region = (
        region_chunks[0]
        if len(region_chunks) == 1
        else np.concatenate(region_chunks)
        if region_chunks
        else np.empty(0, dtype=np.int64)
    )

    # ------------------------------------------------------------------ #
    # Phase 2: new dependencies by descending new distance.
    # ------------------------------------------------------------------ #
    nd = delta.copy()
    reach = region[wd[region] != -1]
    if reach.size:
        reach_levels = wd[reach].astype(np.int64)
        for level in np.unique(reach_levels)[::-1]:
            members = reach[reach_levels == level]
            segments = np.zeros(members.size, dtype=np.float64)
            positions, counts = slice_positions(indptr, members)
            if positions.size:
                children = indices[positions]
                rep = np.repeat(
                    np.arange(members.size, dtype=np.int64), counts
                )
                child_mask = wd[children] == level + 1
                if child_mask.any():
                    # Children outside the region contribute their stored
                    # (unchanged) dependency, which nd still holds.
                    terms = (
                        ws[members][rep[child_mask]]
                        / ws[children[child_mask]]
                        * (1.0 + nd[children[child_mask]])
                    )
                    scatter_add(segments, rep[child_mask], terms)
            nd[members] = segments

    # ------------------------------------------------------------------ #
    # Phase 3: fold the corrections into the global scores.
    # ------------------------------------------------------------------ #
    if plan.removed_edge_dependency is not None:
        rid = np.array([removed_reg_id], dtype=np.int64)
        registry.activate_written(rid)
        registry.values[removed_reg_id] -= plan.removed_edge_dependency

    if region.size:
        wdn_v = wd[region]
        wdo_v = distance[region]
        wdeln = np.where(wdn_v != -1, nd[region], 0.0)
        wdelo = np.where(wdo_v != -1, delta[region], 0.0)
        # (score + new) - old, matching the scalar update's association.
        keep = region != source
        targets = region[keep]
        vscore[targets] = vscore[targets] + wdeln[keep] - wdelo[keep]

        positions, counts = slice_positions(in_indptr, region)
        if positions.size:
            par = in_indices[positions]
            eid = reg_of_edge[in_edge_ids[positions]]
            rep = np.repeat(np.arange(region.size, dtype=np.int64), counts)
            pdn = wd[par]
            pdo = distance[par]
            wdn_r = wdn_v[rep]
            wdo_r = wdo_v[rep]
            new_p = (wdn_r != -1) & (pdn != -1) & (pdn + 1 == wdn_r)
            old_p = (wdo_r != -1) & (pdo != -1) & (pdo + 1 == wdo_r)
            if exclude_new_edge:
                old_p &= ~((par == high) & (region[rep] == low))
            i_new = np.flatnonzero(new_p)
            i_old = np.flatnonzero(old_p)
            c_new = (
                ws[par[i_new]] / ws[region][rep[i_new]]
                * (1.0 + wdeln[rep[i_new]])
            )
            c_old = (
                sigma[par[i_old]] / sigma[region][rep[i_old]]
                * (1.0 + wdelo[rep[i_old]])
            )
            # Each directed edge id is scanned from exactly one region
            # vertex, so two ordered scatters keep every accumulator's
            # new-before-old sequence.
            targets = eid[i_new]
            registry.activate_written(targets)
            scatter_add(registry.values, targets, c_new)
            targets = eid[i_old]
            registry.activate_written(targets)
            scatter_add(registry.values, targets, -c_old)

    return nd, int(region.size)


class CohortScoreStreams:
    """Deferred write streams for the batch-shared score accumulators.

    The solo sweep is *source-outer*: every float that source ``s``
    contributes to ``vscore`` or an edge score — across all updates of the
    batch — lands before any contribution of a later source.  The cohort
    sweep is update-outer, so instead of writing during the sweep it
    records ``(source ordinal, target, value)`` triples here; nothing
    reads either accumulator mid-batch (registry pops and score reads all
    happen in batch finalization), so applying the streams once at the end
    of the sweep — stably sorted by ordinal, which keeps each source's
    update-then-emission order intact — reproduces the solo float
    sequence per accumulator exactly.
    """

    def __init__(self) -> None:
        self.vs_g: List[np.ndarray] = []
        self.vs_slot: List[np.ndarray] = []
        self.vs_val: List[np.ndarray] = []
        self.es_g: List[np.ndarray] = []
        self.es_id: List[np.ndarray] = []
        self.es_val: List[np.ndarray] = []

    def extend(
        self,
        ordinals: np.ndarray,
        vs_k: List[np.ndarray],
        vs_slot: List[np.ndarray],
        vs_val: List[np.ndarray],
        es_k: List[np.ndarray],
        es_id: List[np.ndarray],
        es_val: List[np.ndarray],
    ) -> None:
        """Adopt one sweep's local-``k`` streams, remapped to ordinals."""
        for part in vs_k:
            self.vs_g.append(ordinals[part])
        self.vs_slot.extend(vs_slot)
        self.vs_val.extend(vs_val)
        for part in es_k:
            self.es_g.append(ordinals[part])
        self.es_id.extend(es_id)
        self.es_val.extend(es_val)

    def flush(self, vscore: np.ndarray, registry) -> None:
        """Apply both streams in source-major (ordinal) order."""
        if self.vs_g:
            g = np.concatenate(self.vs_g)
            order = np.argsort(g, kind="stable")
            scatter_add(
                vscore,
                np.concatenate(self.vs_slot)[order],
                np.concatenate(self.vs_val)[order],
            )
        if self.es_g:
            g = np.concatenate(self.es_g)
            order = np.argsort(g, kind="stable")
            ids = np.concatenate(self.es_id)[order]
            registry.activate_written(ids)
            scatter_add(registry.values, ids, np.concatenate(self.es_val)[order])
        self.vs_g, self.vs_slot, self.vs_val = [], [], []
        self.es_g, self.es_id, self.es_val = [], [], []



def accumulate_cohort(
    state: FlatBatchState,
    work_distance: np.ndarray,
    work_sigma: np.ndarray,
    old_distance: np.ndarray,
    old_sigma: np.ndarray,
    new_delta: np.ndarray,
    old_delta: np.ndarray,
    affected_rows: Optional[np.ndarray],
    sources: np.ndarray,
    highs: np.ndarray,
    lows: np.ndarray,
    ordinals: np.ndarray,
    chunk_k: np.ndarray,
    chunk_s: np.ndarray,
    chunk_l: np.ndarray,
    rem_k: np.ndarray,
    rem_red: np.ndarray,
    rem_rid: np.ndarray,
    disc_k: np.ndarray,
    disc_s: np.ndarray,
    streams: CohortScoreStreams,
    exclude_new_edge: bool,
    pair_first: np.ndarray,
) -> np.ndarray:
    """Dependency accumulation for a whole cohort of sources at once.

    All jobs repair the *same* update, so they share one compiled
    snapshot; the sweep runs in (job ordinal ``k``, vertex slot) pair
    space, which multiplies chunk widths by the cohort size and amortises
    the per-chunk numpy dispatch cost that dominates solo
    :func:`accumulate_flat` on small per-source regions.

    Bit-identity with the solo sweep run source by source in batch order
    holds per float accumulator:

    * per-source ``nd`` cells live in disjoint rows of ``new_delta``, and
      within a row the write sequence is exactly the solo sequence (each
      ``k``'s subsequence of the merged chunk deque is its solo chunk
      sequence, and fringe admission order is emission order);
    * the shared ``vscore`` / edge-score arrays are never *read* during the
      batch sweep, so their writes are recorded into ``streams`` (see
      :class:`CohortScoreStreams`) and applied source-major after the whole
      batch — the solo loop-nest order;
    * every recorded value is computed from the same operands with the same
      ops as solo (``+(-x)`` replacing ``-x`` is bitwise identical in
      IEEE-754).

    Inputs describe the slab's jobs in stacked form: ``(m, n)`` work
    columns plus pristine pre-update stacks (``old_*``; ``new_delta``
    starts as a copy of ``old_delta`` and is turned into the post-update
    delta rows in place), ``(m,)`` job vectors, the merged plan chunks as
    ``(k, slot, level)`` triples, removal seeds as ``(k, dependency,
    registry id)`` columns, and structural-removal disconnected sets as
    ``(k, slot)`` pair columns in per-job discovery order.  Returns the
    per-job touched-pair counts; the repaired delta is left in
    ``new_delta``.
    """
    if state.directed:
        return _accumulate_directed_cohort(
            state,
            work_distance,
            work_sigma,
            old_distance,
            old_sigma,
            new_delta,
            old_delta,
            sources,
            highs,
            lows,
            ordinals,
            chunk_k,
            chunk_s,
            rem_k,
            rem_red,
            rem_rid,
            disc_k,
            disc_s,
            streams,
            exclude_new_edge,
            pair_first,
        )
    n = state.n
    m = len(sources)
    in_indptr = state.in_indptr
    in_indices = state.in_indices
    in_edge_ids = state.in_edge_ids
    reg_of_edge = state.reg_of_edge
    wd_flat = work_distance.reshape(-1)
    ws_flat = work_sigma.reshape(-1)
    od_flat = old_distance.reshape(-1)
    os_flat = old_sigma.reshape(-1)
    nd_flat = new_delta.reshape(-1)
    odel_flat = old_delta.reshape(-1)
    aff_flat = affected_rows.reshape(-1)

    tracked = np.zeros(m * n, dtype=np.bool_)
    processed = np.zeros(m * n, dtype=np.bool_)

    # Plan chunks, merged per level: each k's members arrive in its solo
    # chunk order, so its subsequence of every bucket equals the solo deque.
    buckets: Dict[int, Deque[Tuple[np.ndarray, np.ndarray]]] = {}
    if chunk_k.size:
        chunk_pid = chunk_k * n + chunk_s
        nd_flat[chunk_pid] = 0.0
        tracked[chunk_pid] = True
        for level, sel in group_by_level(
            np.arange(chunk_k.size, dtype=np.int64), chunk_l
        ):
            buckets.setdefault(level, deque()).append(
                (chunk_k[sel], chunk_s[sel])
            )

    # Deferred shared-score streams: (k, target, value).
    es_k: List[np.ndarray] = []
    es_id: List[np.ndarray] = []
    es_val: List[np.ndarray] = []
    vs_k: List[np.ndarray] = []
    vs_slot: List[np.ndarray] = []
    vs_val: List[np.ndarray] = []

    # Removal seeding, merged across the cohort (Alg. 2 lines 11-13): one
    # seed chunk per level, appended after the plan chunks like each solo
    # seed follows its own plan chunks.  Seed pairs are per-job distinct,
    # so the fancy-indexed subtraction has no duplicate targets.
    if rem_k.size:
        rh = highs[rem_k]
        rem_pid = rem_k * n + rh
        fresh_sel = ~tracked[rem_pid]
        tracked[rem_pid[fresh_sel]] = True
        seed_sel = fresh_sel & (wd_flat[rem_pid] != -1)
        sk = rem_k[seed_sel]
        sh = rh[seed_sel]
        for lvl, sel in group_by_level(
            np.arange(sk.size, dtype=np.int64),
            wd_flat[rem_pid[seed_sel]].astype(np.int64),
        ):
            buckets.setdefault(lvl, deque()).append((sk[sel], sh[sel]))
        nd_flat[rem_pid] -= rem_red
        es_k.append(rem_k)
        es_id.append(rem_rid)
        es_val.append(-rem_red)

    max_level = max(buckets) if buckets else 0
    for level in range(max_level, 0, -1):
        queue = buckets.get(level)
        if not queue:
            continue
        while queue:
            kc, chunk = queue.popleft()
            mpid = kc * n + chunk
            alive = ~processed[mpid]
            if not alive.all():
                kc = kc[alive]
                chunk = chunk[alive]
                mpid = mpid[alive]
            if chunk.size == 0:
                continue
            processed[mpid] = True

            wdo = od_flat[mpid]
            deln = nd_flat[mpid]
            delo = np.where(wdo != -1, odel_flat[mpid], 0.0)

            positions, counts = slice_positions(in_indptr, chunk)
            if positions.size:
                par = in_indices[positions]
                eid = reg_of_edge[in_edge_ids[positions]]
                rep = np.repeat(np.arange(chunk.size, dtype=np.int64), counts)
                krep = kc[rep]
                ppid = krep * n + par
                pdn = wd_flat[ppid]
                pdo = od_flat[ppid]
                new_e = (pdn != -1) & (pdn + 1 == level)
                old_e = (wdo[rep] != -1) & (pdo != -1) & (pdo + 1 == wdo[rep])
                if exclude_new_edge:
                    member = chunk[rep]
                    hi = highs[krep]
                    lo = lows[krep]
                    old_e &= ~(
                        ((member == hi) | (member == lo))
                        & ((par == hi) | (par == lo))
                    )

                i_new = np.flatnonzero(new_e)
                i_old = np.flatnonzero(old_e)
                c_new = (
                    ws_flat[ppid[i_new]]
                    / ws_flat[mpid][rep[i_new]]
                    * (1.0 + deln[rep[i_new]])
                )
                c_old = (
                    os_flat[ppid[i_old]]
                    / os_flat[mpid][rep[i_old]]
                    * (1.0 + delo[rep[i_old]])
                )

                nd_keep = ~aff_flat[ppid[i_old]]
                i_old_nd = i_old[nd_keep]
                order = np.argsort(
                    np.concatenate((2 * i_new, 2 * i_old_nd + 1))
                )
                nd_pid = np.concatenate((ppid[i_new], ppid[i_old_nd]))[order]
                nd_values = np.concatenate((c_new, -c_old[nd_keep]))[order]

                fresh = first_occurrence(nd_pid[~tracked[nd_pid]], pair_first)
                if fresh.size:
                    tracked[fresh] = True
                    fk = fresh // n
                    fs = fresh - fk * n
                    flvl = wd_flat[fresh].astype(np.int64)
                    for lvl, sel in group_by_level(
                        np.arange(fk.size, dtype=np.int64), flvl
                    ):
                        pair_chunk = (fk[sel], fs[sel])
                        if lvl == level:
                            queue.append(pair_chunk)
                        else:
                            buckets.setdefault(lvl, deque()).append(pair_chunk)
                scatter_add(nd_flat, nd_pid, nd_values)

                eorder = np.argsort(np.concatenate((2 * i_new, 2 * i_old + 1)))
                es_k.append(np.concatenate((krep[i_new], krep[i_old]))[eorder])
                es_id.append(np.concatenate((eid[i_new], eid[i_old]))[eorder])
                es_val.append(np.concatenate((c_new, -c_old))[eorder])

            # Two deferred single adds per member — +new then -old — replay
            # the solo (score + new) - old association exactly.
            keep = chunk != sources[kc]
            tk = kc[keep]
            ts = chunk[keep]
            vs_k.append(np.repeat(tk, 2))
            vs_slot.append(np.repeat(ts, 2))
            vals = np.empty(ts.size * 2, dtype=np.float64)
            vals[0::2] = deln[keep]
            vals[1::2] = -delo[keep]
            vs_val.append(vals)

    # Disconnected tails, merged across the cohort (Algorithm 10): each
    # k's entries keep their solo order, and the ordinal-stable flush puts
    # them after that k's sweep entries like the solo epilogue.
    if disc_k.size:
        dpid = disc_k * n + disc_s
        wdo = od_flat[dpid]
        delo = np.where(wdo != -1, odel_flat[dpid], 0.0)
        keep = disc_s != sources[disc_k]
        vs_k.append(disc_k[keep])
        vs_slot.append(disc_s[keep])
        vs_val.append(-delo[keep])
        positions, counts = slice_positions(in_indptr, disc_s)
        if positions.size:
            par = in_indices[positions]
            eid = reg_of_edge[in_edge_ids[positions]]
            rep = np.repeat(np.arange(disc_s.size, dtype=np.int64), counts)
            ppid = disc_k[rep] * n + par
            pdo = od_flat[ppid]
            old_e = (wdo[rep] != -1) & (pdo != -1) & (pdo + 1 == wdo[rep])
            i_old = np.flatnonzero(old_e)
            c_old = (
                os_flat[ppid[i_old]]
                / os_flat[dpid][rep[i_old]]
                * (1.0 + delo[rep[i_old]])
            )
            es_k.append(disc_k[rep[i_old]])
            es_id.append(eid[i_old])
            es_val.append(-c_old)

    streams.extend(ordinals, vs_k, vs_slot, vs_val, es_k, es_id, es_val)
    return tracked.reshape(m, n).sum(axis=1).astype(np.int64)


def _accumulate_directed_cohort(
    state: FlatBatchState,
    work_distance: np.ndarray,
    work_sigma: np.ndarray,
    old_distance: np.ndarray,
    old_sigma: np.ndarray,
    new_delta: np.ndarray,
    old_delta: np.ndarray,
    sources: np.ndarray,
    highs: np.ndarray,
    lows: np.ndarray,
    ordinals: np.ndarray,
    chunk_k: np.ndarray,
    chunk_s: np.ndarray,
    rem_k: np.ndarray,
    rem_red: np.ndarray,
    rem_rid: np.ndarray,
    disc_k: np.ndarray,
    disc_s: np.ndarray,
    streams: CohortScoreStreams,
    exclude_new_edge: bool,
    pair_first: np.ndarray,
) -> np.ndarray:
    """Cohort variant of :func:`_accumulate_directed_flat`.

    The three solo phases are order-free (see the solo docstring), so the
    pair-space lift only has to preserve *per-accumulator* sequences: the
    phase-2 level loop runs over global absolute levels (a per-k no-op on
    levels a region lacks), and phase 3 emits all new contributions before
    all old ones so the ordinal-stable flush yields the solo
    new-before-old order per edge id within each source.
    """
    n = state.n
    m = len(sources)
    indptr, indices = state.indptr, state.indices
    in_indptr = state.in_indptr
    in_indices = state.in_indices
    in_edge_ids = state.in_edge_ids
    reg_of_edge = state.reg_of_edge
    wd_flat = work_distance.reshape(-1)
    ws_flat = work_sigma.reshape(-1)
    od_flat = old_distance.reshape(-1)
    os_flat = old_sigma.reshape(-1)
    nd_flat = new_delta.reshape(-1)
    odel_flat = old_delta.reshape(-1)

    # ------------------------------------------------------------------ #
    # Phase 1: upward closure of every job's changed region.
    # ------------------------------------------------------------------ #
    region_mask = np.zeros(m * n, dtype=np.bool_)
    region_chunks: List[np.ndarray] = []
    frontier: Deque[Tuple[np.ndarray, np.ndarray]] = deque()

    def join(cpid: np.ndarray) -> None:
        fresh = first_occurrence(cpid[~region_mask[cpid]], pair_first)
        if fresh.size:
            region_mask[fresh] = True
            region_chunks.append(fresh)
            fk = fresh // n
            frontier.append((fk, fresh - fk * n))

    seed_pids: List[np.ndarray] = [chunk_k * n + chunk_s]
    if disc_k.size:
        seed_pids.append(disc_k * n + disc_s)
    if rem_k.size:
        seed_pids.append(rem_k * n + highs[rem_k])
    join(np.concatenate(seed_pids))
    while frontier:
        fk, fs = frontier.popleft()
        positions, counts = slice_positions(in_indptr, fs)
        if positions.size == 0:
            continue
        rep = np.repeat(np.arange(fs.size, dtype=np.int64), counts)
        fpid = fk * n + fs
        ppid = fk[rep] * n + in_indices[positions]
        wdn = wd_flat[fpid][rep]
        wdo = od_flat[fpid][rep]
        pdn = wd_flat[ppid]
        pdo = od_flat[ppid]
        joins = ((wdn != -1) & (pdn != -1) & (pdn + 1 == wdn)) | (
            (wdo != -1) & (pdo != -1) & (pdo + 1 == wdo)
        )
        join(ppid[joins])
    if region_chunks:
        region_pid = (
            region_chunks[0]
            if len(region_chunks) == 1
            else np.concatenate(region_chunks)
        )
    else:
        region_pid = np.empty(0, dtype=np.int64)
    region_k = region_pid // n
    region_s = region_pid - region_k * n

    # ------------------------------------------------------------------ #
    # Phase 2: new dependencies by descending (global) new distance.
    # ------------------------------------------------------------------ #
    rwd = wd_flat[region_pid]
    sel = rwd != -1
    reach_pid = region_pid[sel]
    reach_levels = rwd[sel].astype(np.int64)
    if reach_pid.size:
        for level in np.unique(reach_levels)[::-1]:
            msel = reach_levels == level
            mpid = reach_pid[msel]
            mk = mpid // n
            ms = mpid - mk * n
            segments = np.zeros(mpid.size, dtype=np.float64)
            positions, counts = slice_positions(indptr, ms)
            if positions.size:
                rep = np.repeat(np.arange(ms.size, dtype=np.int64), counts)
                kpid = mk[rep] * n + indices[positions]
                child_mask = wd_flat[kpid] == level + 1
                if child_mask.any():
                    terms = (
                        ws_flat[mpid][rep[child_mask]]
                        / ws_flat[kpid[child_mask]]
                        * (1.0 + nd_flat[kpid[child_mask]])
                    )
                    scatter_add(segments, rep[child_mask], terms)
            nd_flat[mpid] = segments

    # ------------------------------------------------------------------ #
    # Phase 3: fold the corrections into the global scores (deferred).
    # ------------------------------------------------------------------ #
    es_k: List[np.ndarray] = []
    es_id: List[np.ndarray] = []
    es_val: List[np.ndarray] = []
    vs_k: List[np.ndarray] = []
    vs_slot: List[np.ndarray] = []
    vs_val: List[np.ndarray] = []

    if rem_k.size:
        es_k.append(rem_k)
        es_id.append(rem_rid)
        es_val.append(-rem_red)

    if region_pid.size:
        wdn_v = wd_flat[region_pid]
        wdo_v = od_flat[region_pid]
        wdeln = np.where(wdn_v != -1, nd_flat[region_pid], 0.0)
        wdelo = np.where(wdo_v != -1, odel_flat[region_pid], 0.0)
        keep = region_s != sources[region_k]
        tk = region_k[keep]
        ts = region_s[keep]
        vs_k.append(np.repeat(tk, 2))
        vs_slot.append(np.repeat(ts, 2))
        vals = np.empty(ts.size * 2, dtype=np.float64)
        vals[0::2] = wdeln[keep]
        vals[1::2] = -wdelo[keep]
        vs_val.append(vals)

        positions, counts = slice_positions(in_indptr, region_s)
        if positions.size:
            par = in_indices[positions]
            eid = reg_of_edge[in_edge_ids[positions]]
            rep = np.repeat(np.arange(region_s.size, dtype=np.int64), counts)
            krep = region_k[rep]
            ppid = krep * n + par
            pdn = wd_flat[ppid]
            pdo = od_flat[ppid]
            wdn_r = wdn_v[rep]
            wdo_r = wdo_v[rep]
            new_p = (wdn_r != -1) & (pdn != -1) & (pdn + 1 == wdn_r)
            old_p = (wdo_r != -1) & (pdo != -1) & (pdo + 1 == wdo_r)
            if exclude_new_edge:
                old_p &= ~(
                    (par == highs[krep]) & (region_s[rep] == lows[krep])
                )
            i_new = np.flatnonzero(new_p)
            i_old = np.flatnonzero(old_p)
            c_new = (
                ws_flat[ppid[i_new]]
                / ws_flat[region_pid][rep[i_new]]
                * (1.0 + wdeln[rep[i_new]])
            )
            c_old = (
                os_flat[ppid[i_old]]
                / os_flat[region_pid][rep[i_old]]
                * (1.0 + wdelo[rep[i_old]])
            )
            # All news before all olds: after the ordinal-stable flush each
            # job's stream is its seed, then its news, then its olds — and
            # each directed edge id is scanned from exactly one region
            # vertex of a job, so per-accumulator order matches the solo
            # scatters.
            es_k.append(krep[i_new])
            es_id.append(eid[i_new])
            es_val.append(c_new)
            es_k.append(krep[i_old])
            es_id.append(eid[i_old])
            es_val.append(-c_old)

    streams.extend(ordinals, vs_k, vs_slot, vs_val, es_k, es_id, es_val)
    return region_mask.reshape(m, n).sum(axis=1).astype(np.int64)
