"""Search-phase repair for edge additions (Algorithms 2 and 4 of the paper).

Both routines operate per source ``s`` on the stored betweenness data
``BD[s]`` and return a :class:`~repro.core.repair.RepairPlan` describing the
vertices whose distance / shortest-path count changed, which the shared
dependency-accumulation phase then turns into betweenness corrections.

The graph passed in must already contain the newly added edge.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set

from repro.algorithms.brandes import SourceData
from repro.core.repair import RepairPlan
from repro.graph.graph import Graph
from repro.types import Vertex


def repair_addition_same_level(
    graph: Graph, data: SourceData, high: Vertex, low: Vertex
) -> RepairPlan:
    """Repair after adding ``(high, low)`` when ``d[low] == d[high] + 1``.

    No distances change (Algorithm 2): the new edge only creates additional
    shortest paths through ``high`` into the sub-DAG rooted at ``low``.  The
    traversal visits exactly that sub-DAG, updating sigma along the way.
    """
    plan = RepairPlan(high=high, low=low)
    distance = data.distance
    sigma = data.sigma

    plan.new_sigma[low] = sigma[low] + sigma[high]
    plan.affected.add(low)
    plan.enqueue(low, distance[low])

    queue: deque[Vertex] = deque([low])
    while queue:
        vertex = queue.popleft()
        vertex_level = distance[vertex]
        delta_sigma = plan.new_sigma[vertex] - sigma[vertex]
        for neighbor in graph.out_neighbors(vertex):
            if distance.get(neighbor) != vertex_level + 1:
                continue
            if neighbor not in plan.affected:
                plan.new_sigma[neighbor] = sigma[neighbor]
                plan.affected.add(neighbor)
                plan.enqueue(neighbor, vertex_level + 1)
                queue.append(neighbor)
            plan.new_sigma[neighbor] += delta_sigma
    return plan


def repair_addition_structural(
    graph: Graph, data: SourceData, high: Vertex, low: Vertex
) -> RepairPlan:
    """Repair after adding ``(high, low)`` when ``uL`` rises one or more levels.

    This is Algorithm 4 of the paper: distances in the sub-DAG reachable from
    ``low`` may shrink, new shortest paths appear and old ones disappear.
    The repair is a level-ordered (bucketed) traversal rooted at ``low``:

    * ``low`` is pulled up to ``d[high] + 1``;
    * every vertex whose distance shrinks is settled in increasing order of
      its *new* distance, so its predecessors are final when its sigma is
      recomputed by scanning in-neighbors;
    * every vertex that keeps its distance but is adjacent (one level below)
      to a settled vertex is also re-processed, because its sigma changes.

    The previously-disconnected case (``low`` unreachable before the update)
    needs no special handling: unreachable vertices simply have no stored
    distance and are settled as the traversal reaches them.
    """
    plan = RepairPlan(high=high, low=low)
    old_distance = data.distance
    old_sigma = data.sigma

    new_distance = plan.new_distance
    new_sigma = plan.new_sigma

    def current_distance(vertex: Vertex) -> int:
        found = new_distance.get(vertex)
        if found is not None:
            return found
        return old_distance.get(vertex)

    start_level = old_distance[high] + 1
    new_distance[low] = start_level

    buckets: Dict[int, List[Vertex]] = {start_level: [low]}
    scheduled: Set[Vertex] = {low}
    level = start_level
    max_level = start_level
    while level <= max_level:
        queue = buckets.get(level, [])
        index = 0
        while index < len(queue):
            vertex = queue[index]
            index += 1
            if vertex in plan.affected:
                continue
            if current_distance(vertex) != level:
                # Stale bucket entry: the vertex was settled at a smaller
                # distance by an earlier level.
                continue
            plan.affected.add(vertex)
            plan.enqueue(vertex, level)

            # Recompute sigma from scratch by scanning predecessors at the
            # new level - 1 (they are already final: smaller levels have been
            # fully processed).
            total = 0
            for neighbor in graph.in_neighbors(vertex):
                neighbor_distance = current_distance(neighbor)
                if neighbor_distance is not None and neighbor_distance + 1 == level:
                    total += new_sigma.get(neighbor, old_sigma.get(neighbor, 0))
            new_sigma[vertex] = total

            # Relax out-neighbors: either their distance shrinks, or they sit
            # exactly one level below and their sigma changes.
            for neighbor in graph.out_neighbors(vertex):
                neighbor_distance = current_distance(neighbor)
                if neighbor_distance is None or neighbor_distance > level + 1:
                    new_distance[neighbor] = level + 1
                    buckets.setdefault(level + 1, []).append(neighbor)
                    scheduled.add(neighbor)
                    max_level = max(max_level, level + 1)
                elif neighbor_distance == level + 1 and neighbor not in plan.affected:
                    if neighbor not in scheduled:
                        buckets.setdefault(level + 1, []).append(neighbor)
                        scheduled.add(neighbor)
                        max_level = max(max_level, level + 1)
        level += 1

    # Distances that did not actually change must not be reported as changed
    # (keeps the accumulation's old/new DAG tests exact).
    for vertex in list(new_distance):
        if old_distance.get(vertex) == new_distance[vertex]:
            del new_distance[vertex]
    return plan
