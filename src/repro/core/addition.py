"""Search-phase repair for edge additions (Algorithms 2 and 4 of the paper).

Both routines operate per source ``s`` on the stored betweenness data
``BD[s]`` and return a :class:`~repro.core.repair.RepairPlan` describing the
vertices whose distance / shortest-path count changed, which the shared
dependency-accumulation phase then turns into betweenness corrections.

The graph passed in must already contain the newly added edge.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set

import numpy as np

from repro.algorithms.brandes import SourceData
from repro.core.flat import (
    FlatBatchState,
    FlatScratch,
    first_occurrence,
    group_by_level,
    slice_positions,
)
from repro.core.repair import FlatRepairPlan, RepairPlan
from repro.graph.graph import Graph
from repro.types import Vertex


def repair_addition_same_level(
    graph: Graph, data: SourceData, high: Vertex, low: Vertex
) -> RepairPlan:
    """Repair after adding ``(high, low)`` when ``d[low] == d[high] + 1``.

    No distances change (Algorithm 2): the new edge only creates additional
    shortest paths through ``high`` into the sub-DAG rooted at ``low``.  The
    traversal visits exactly that sub-DAG, updating sigma along the way.
    """
    plan = RepairPlan(high=high, low=low)
    distance = data.distance
    sigma = data.sigma

    plan.new_sigma[low] = sigma[low] + sigma[high]
    plan.affected.add(low)
    plan.enqueue(low, distance[low])

    queue: deque[Vertex] = deque([low])
    while queue:
        vertex = queue.popleft()
        vertex_level = distance[vertex]
        delta_sigma = plan.new_sigma[vertex] - sigma[vertex]
        for neighbor in graph.out_neighbors(vertex):
            if distance.get(neighbor) != vertex_level + 1:
                continue
            if neighbor not in plan.affected:
                plan.new_sigma[neighbor] = sigma[neighbor]
                plan.affected.add(neighbor)
                plan.enqueue(neighbor, vertex_level + 1)
                queue.append(neighbor)
            plan.new_sigma[neighbor] += delta_sigma
    return plan


def repair_addition_structural(
    graph: Graph, data: SourceData, high: Vertex, low: Vertex
) -> RepairPlan:
    """Repair after adding ``(high, low)`` when ``uL`` rises one or more levels.

    This is Algorithm 4 of the paper: distances in the sub-DAG reachable from
    ``low`` may shrink, new shortest paths appear and old ones disappear.
    The repair is a level-ordered (bucketed) traversal rooted at ``low``:

    * ``low`` is pulled up to ``d[high] + 1``;
    * every vertex whose distance shrinks is settled in increasing order of
      its *new* distance, so its predecessors are final when its sigma is
      recomputed by scanning in-neighbors;
    * every vertex that keeps its distance but is adjacent (one level below)
      to a settled vertex is also re-processed, because its sigma changes.

    The previously-disconnected case (``low`` unreachable before the update)
    needs no special handling: unreachable vertices simply have no stored
    distance and are settled as the traversal reaches them.
    """
    plan = RepairPlan(high=high, low=low)
    old_distance = data.distance
    old_sigma = data.sigma

    new_distance = plan.new_distance
    new_sigma = plan.new_sigma

    def current_distance(vertex: Vertex) -> int:
        found = new_distance.get(vertex)
        if found is not None:
            return found
        return old_distance.get(vertex)

    start_level = old_distance[high] + 1
    new_distance[low] = start_level

    buckets: Dict[int, List[Vertex]] = {start_level: [low]}
    scheduled: Set[Vertex] = {low}
    level = start_level
    max_level = start_level
    while level <= max_level:
        queue = buckets.get(level, [])
        index = 0
        while index < len(queue):
            vertex = queue[index]
            index += 1
            if vertex in plan.affected:
                continue
            if current_distance(vertex) != level:
                # Stale bucket entry: the vertex was settled at a smaller
                # distance by an earlier level.
                continue
            plan.affected.add(vertex)
            plan.enqueue(vertex, level)

            # Recompute sigma from scratch by scanning predecessors at the
            # new level - 1 (they are already final: smaller levels have been
            # fully processed).
            total = 0
            for neighbor in graph.in_neighbors(vertex):
                neighbor_distance = current_distance(neighbor)
                if neighbor_distance is not None and neighbor_distance + 1 == level:
                    total += new_sigma.get(neighbor, old_sigma.get(neighbor, 0))
            new_sigma[vertex] = total

            # Relax out-neighbors: either their distance shrinks, or they sit
            # exactly one level below and their sigma changes.
            for neighbor in graph.out_neighbors(vertex):
                neighbor_distance = current_distance(neighbor)
                if neighbor_distance is None or neighbor_distance > level + 1:
                    new_distance[neighbor] = level + 1
                    buckets.setdefault(level + 1, []).append(neighbor)
                    scheduled.add(neighbor)
                    max_level = max(max_level, level + 1)
                elif neighbor_distance == level + 1 and neighbor not in plan.affected:
                    if neighbor not in scheduled:
                        buckets.setdefault(level + 1, []).append(neighbor)
                        scheduled.add(neighbor)
                        max_level = max(max_level, level + 1)
        level += 1

    # Distances that did not actually change must not be reported as changed
    # (keeps the accumulation's old/new DAG tests exact).
    for vertex in list(new_distance):
        if old_distance.get(vertex) == new_distance[vertex]:
            del new_distance[vertex]
    return plan


# --------------------------------------------------------------------------- #
# Vectorized (slot-space) variants
# --------------------------------------------------------------------------- #
def repair_same_level_flat(
    state: FlatBatchState,
    distance: np.ndarray,
    sigma: np.ndarray,
    high: int,
    low: int,
    sign: int,
    scratch: FlatScratch,
) -> FlatRepairPlan:
    """Level-synchronous form of the two ``dd == 1`` repairs (Algorithm 2).

    Shared by addition (``sign=+1``) and removal (``sign=-1``): no distance
    changes, only path counts in the sub-DAG under ``low`` shift by the
    paths through ``high``.  The scalar FIFO over that sub-DAG is strictly
    level-aligned (every queue edge descends exactly one level), so a
    frontier expansion discovers the same vertices in the same order and the
    integer sigma increments land identically.
    """
    work_distance = distance.copy()
    work_sigma = sigma.copy()
    affected = np.zeros(state.n, dtype=np.bool_)
    first_of = scratch.first_of
    indptr, indices = state.indptr, state.indices

    affected[low] = True
    count = 1
    work_sigma[low] = work_sigma[low] + sign * sigma[high]
    level = int(distance[low])
    frontier = np.array([low], dtype=np.int64)
    levels = [(level, frontier)]
    while frontier.size:
        positions, counts = slice_positions(indptr, frontier)
        if positions.size == 0:
            break
        neighbors = indices[positions]
        in_subdag = distance[neighbors] == level + 1
        if not in_subdag.any():
            break
        targets = neighbors[in_subdag]
        # delta_sigma of the whole frontier is final here: all increments a
        # frontier vertex receives were scattered while expanding the
        # previous level — exactly when the scalar loop pops it.
        delta_sigma = work_sigma[frontier] - sigma[frontier]
        increments = np.repeat(delta_sigma, counts)[in_subdag]
        fresh = first_occurrence(targets[~affected[targets]], first_of)
        np.add.at(work_sigma, targets, increments)
        if fresh.size == 0:
            break
        affected[fresh] = True
        count += fresh.size
        level += 1
        levels.append((level, fresh))
        frontier = fresh
    return FlatRepairPlan(
        work_distance=work_distance,
        work_sigma=work_sigma,
        affected_mask=affected,
        affected_count=count,
        levels=levels,
        disconnected=np.empty(0, dtype=np.int64),
        high=high,
        low=low,
    )


def repair_same_level_cohort(
    state: FlatBatchState,
    ks: np.ndarray,
    highs: np.ndarray,
    lows: np.ndarray,
    sign: int,
    old_distance: np.ndarray,
    old_sigma: np.ndarray,
    work_sigma: np.ndarray,
    affected: np.ndarray,
    pair_first: np.ndarray,
) -> tuple:
    """:func:`repair_same_level_flat` for a whole cohort in pair space.

    All jobs repair the same update against the same compiled snapshot, so
    their per-source sub-DAG walks share frontier expansions: the frontier
    holds ``(job ordinal k, vertex slot)`` pairs and one hop advances every
    job by one (job-relative) level at once.  Exactness carries over from
    the solo routine unchanged — all updates are integer sigma arithmetic
    on per-job rows of ``work_sigma``, every job's pair subsequence of each
    frontier is its solo frontier (first-occurrence order is preserved
    because frontiers stay k-grouped), and jobs whose solo loop would have
    exited simply stop contributing pairs.

    ``ks`` holds the jobs' slab ordinals; ``highs``/``lows`` are the jobs'
    edge endpoints *aligned with ks* (already sliced).  ``old_distance`` /
    ``old_sigma`` are the slab's pristine pre-update column stacks;
    ``work_sigma`` (int64) and ``affected`` (bool) are the ``(m, n)``
    stacked work columns, mutated in place.  Returns the merged plan
    chunks as ``(k, slot, level)`` triples in discovery order.
    """
    n = state.n
    indptr, indices = state.indptr, state.indices
    od_flat = old_distance.reshape(-1)
    os_flat = old_sigma.reshape(-1)
    ws_flat = work_sigma.reshape(-1)
    aff_flat = affected.reshape(-1)

    low_pids = ks * n + lows
    aff_flat[low_pids] = True
    ws_flat[low_pids] = ws_flat[low_pids] + sign * os_flat[ks * n + highs]
    tri_k: List[np.ndarray] = [ks]
    tri_s: List[np.ndarray] = [lows]
    tri_l: List[np.ndarray] = [od_flat[low_pids].astype(np.int64)]
    kc, fc, fpid = ks, lows, low_pids
    while fc.size:
        positions, counts = slice_positions(indptr, fc)
        if positions.size == 0:
            break
        rep = np.repeat(np.arange(fc.size, dtype=np.int64), counts)
        tpid = kc[rep] * n + indices[positions]
        in_subdag = od_flat[tpid] == od_flat[fpid][rep] + 1
        if not in_subdag.any():
            break
        t_pid = tpid[in_subdag]
        # delta_sigma of the whole frontier is final here, as in the solo
        # routine: all increments a frontier pair receives were scattered
        # while expanding the previous hop.
        delta_sigma = ws_flat[fpid] - os_flat[fpid]
        increments = np.repeat(delta_sigma, counts)[in_subdag]
        fresh = first_occurrence(t_pid[~aff_flat[t_pid]], pair_first)
        np.add.at(ws_flat, t_pid, increments)
        if fresh.size == 0:
            break
        fk = fresh // n
        fs = fresh - fk * n
        aff_flat[fresh] = True
        tri_k.append(fk)
        tri_s.append(fs)
        tri_l.append(od_flat[fresh].astype(np.int64))
        kc, fc, fpid = fk, fs, fresh
    return np.concatenate(tri_k), np.concatenate(tri_s), np.concatenate(tri_l)


def repair_addition_structural_cohort(
    state: FlatBatchState,
    ks: np.ndarray,
    highs: np.ndarray,
    lows: np.ndarray,
    old_distance: np.ndarray,
    work_distance: np.ndarray,
    work_sigma: np.ndarray,
    affected: np.ndarray,
    pair_first: np.ndarray,
) -> tuple:
    """:func:`repair_addition_structural_flat` for a cohort in pair space.

    The bucketed settle runs over *absolute* levels shared by every job:
    each job's levels are a contiguous subrange starting at its own
    ``d[high] + 1``, levels a job lacks simply contribute none of its
    pairs, and every per-pair decision (stale test, sigma recount, relax)
    reads only that pair's row — so the merged level loop replays each
    job's solo ascending settle exactly.  All arithmetic is integer.

    Arguments follow :func:`repair_same_level_cohort`, plus the stacked
    ``work_distance`` (mutated by the settle).  Returns merged plan chunks
    as ``(k, slot, level)`` triples.
    """
    n = state.n
    indptr, indices = state.indptr, state.indices
    in_indptr, in_indices = state.in_indptr, state.in_indices
    od_flat = old_distance.reshape(-1)
    wd_flat = work_distance.reshape(-1)
    ws_flat = work_sigma.reshape(-1)
    aff_flat = affected.reshape(-1)
    scheduled = np.zeros(work_distance.size, dtype=np.bool_)

    start_levels = od_flat[ks * n + highs].astype(np.int64) + 1
    low_pids = ks * n + lows
    wd_flat[low_pids] = start_levels
    scheduled[low_pids] = True
    buckets: Dict[int, List[np.ndarray]] = {}
    for lvl, members in group_by_level(low_pids, start_levels):
        buckets.setdefault(lvl, []).append(members)

    tri_k: List[np.ndarray] = []
    tri_s: List[np.ndarray] = []
    tri_l: List[np.ndarray] = []
    level = min(buckets)
    max_level = max(buckets)
    while level <= max_level:
        chunks = buckets.get(level)
        if chunks:
            cand = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            keep = (~aff_flat[cand]) & (wd_flat[cand] == level)
            members = first_occurrence(cand[keep], pair_first)
            if members.size:
                aff_flat[members] = True
                mk = members // n
                ms = members - mk * n
                tri_k.append(mk)
                tri_s.append(ms)
                tri_l.append(np.full(members.size, level, dtype=np.int64))

                # Sigma recount from parents one level above (all final).
                positions, counts = slice_positions(in_indptr, ms)
                totals = np.zeros(members.size, dtype=np.int64)
                if positions.size:
                    rep = np.repeat(
                        np.arange(members.size, dtype=np.int64), counts
                    )
                    ppid = mk[rep] * n + in_indices[positions]
                    parent_distance = wd_flat[ppid]
                    parent_mask = (parent_distance != -1) & (
                        parent_distance + 1 == level
                    )
                    if parent_mask.any():
                        np.add.at(
                            totals,
                            rep[parent_mask],
                            ws_flat[ppid[parent_mask]],
                        )
                ws_flat[members] = totals

                # Relax out-neighbors (see the solo routine for why the
                # level-batched first-occurrence filter is exact).
                positions, counts = slice_positions(indptr, ms)
                if positions.size:
                    rep = np.repeat(
                        np.arange(members.size, dtype=np.int64), counts
                    )
                    kpid = mk[rep] * n + indices[positions]
                    kids = first_occurrence(kpid, pair_first)
                    kid_distance = wd_flat[kids]
                    shrink = (kid_distance == -1) | (kid_distance > level + 1)
                    requeue = (
                        (kid_distance == level + 1)
                        & ~aff_flat[kids]
                        & ~scheduled[kids]
                    )
                    appended = kids[shrink | requeue]
                    if appended.size:
                        wd_flat[kids[shrink]] = level + 1
                        scheduled[appended] = True
                        buckets.setdefault(level + 1, []).append(appended)
                        max_level = max(max_level, level + 1)
        level += 1
    empty = np.empty(0, dtype=np.int64)
    return (
        np.concatenate(tri_k) if tri_k else empty,
        np.concatenate(tri_s) if tri_s else empty,
        np.concatenate(tri_l) if tri_l else empty,
    )


def repair_addition_structural_flat(
    state: FlatBatchState,
    distance: np.ndarray,
    sigma: np.ndarray,
    high: int,
    low: int,
    scratch: FlatScratch,
) -> FlatRepairPlan:
    """Vectorized Algorithm 4: bucketed settle of the shrinking sub-DAG.

    Levels are processed in ascending order as in the scalar routine; within
    a level the whole bucket is filtered (stale / already-affected entries
    out, first occurrences kept) and settled at once.  Batch processing is
    exact because every per-vertex decision the scalar loop makes at this
    level reads only state that is static across the level: distances of
    parents (settled at smaller levels) and of children (only lowered *to*
    ``level + 1``, never to ``level``), and the scheduled/affected sets are
    consulted in first-occurrence order just as the sequential loop would.
    """
    n = state.n
    work_distance = distance.copy()
    work_sigma = sigma.copy()
    affected = np.zeros(n, dtype=np.bool_)
    scheduled = np.zeros(n, dtype=np.bool_)
    first_of = scratch.first_of
    indptr, indices = state.indptr, state.indices
    in_indptr, in_indices = state.in_indptr, state.in_indices

    start_level = int(distance[high]) + 1
    work_distance[low] = start_level
    scheduled[low] = True
    buckets: Dict[int, List[np.ndarray]] = {
        start_level: [np.array([low], dtype=np.int64)]
    }
    levels: List = []
    count = 0
    level = start_level
    max_level = start_level
    while level <= max_level:
        chunks = buckets.get(level)
        if chunks:
            cand = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            keep = (~affected[cand]) & (work_distance[cand] == level)
            members = first_occurrence(cand[keep], first_of)
            if members.size:
                affected[members] = True
                count += members.size
                levels.append((level, members))

                # Sigma recount from parents one level above (all final).
                positions, counts = slice_positions(in_indptr, members)
                parents = in_indices[positions]
                parent_distance = work_distance[parents]
                parent_mask = (parent_distance != -1) & (
                    parent_distance + 1 == level
                )
                totals = np.zeros(members.size, dtype=np.int64)
                if parent_mask.any():
                    rep = np.repeat(
                        np.arange(members.size, dtype=np.int64), counts
                    )
                    np.add.at(
                        totals, rep[parent_mask], work_sigma[parents[parent_mask]]
                    )
                work_sigma[members] = totals

                # Relax out-neighbors: distance shrinks to level + 1, or the
                # neighbor sits exactly one level below and its sigma must be
                # recounted.  Only a child's first encounter can qualify (a
                # relaxation pins its distance to level + 1 and schedules it,
                # after which both branches reject it), so first-occurrence
                # filtering reproduces the sequential append order.
                positions, _counts = slice_positions(indptr, members)
                kids = first_occurrence(indices[positions], first_of)
                kid_distance = work_distance[kids]
                shrink = (kid_distance == -1) | (kid_distance > level + 1)
                requeue = (
                    (kid_distance == level + 1)
                    & ~affected[kids]
                    & ~scheduled[kids]
                )
                appended = kids[shrink | requeue]
                if appended.size:
                    work_distance[kids[shrink]] = level + 1
                    scheduled[appended] = True
                    buckets.setdefault(level + 1, []).append(appended)
                    max_level = max(max_level, level + 1)
        level += 1
    return FlatRepairPlan(
        work_distance=work_distance,
        work_sigma=work_sigma,
        affected_mask=affected,
        affected_count=count,
        levels=levels,
        disconnected=np.empty(0, dtype=np.int64),
        high=high,
        low=low,
    )
