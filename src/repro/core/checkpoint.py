"""Sidecar checkpoints of an :class:`IncrementalBetweenness` instance.

The per-source data ``BD[.]`` already lives in a (possibly durable) store;
what the store cannot express is the *global* state of the framework: the
current graph, the maintained vertex/edge betweenness scores and whether the
instance is restricted to a source partition.  A checkpoint is a small
sidecar file holding exactly that, framed with the same magic/version/CRC
scheme as the store header (:mod:`repro.storage.header`).

Two resume paths exist, both exposed on the framework:

* **fast** — ``IncrementalBetweenness.resume(checkpoint)``: scores come from
  the sidecar, records from the reopened store (or an embedded snapshot when
  the store had no durable file); nothing is recomputed.
* **reconstructive** — ``IncrementalBetweenness.from_store(graph, store)``:
  no sidecar needed; the global scores are rebuilt by scanning the store's
  records (``score[v] = Σ_s δ_s[v]`` and the DAG-edge contributions), which
  yields exactly the scores a from-scratch bootstrap would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.algorithms.brandes import SourceData
from repro.storage.header import read_sidecar, write_sidecar
from repro.types import Edge, EdgeScores, Vertex, VertexScores

#: Magic number of a framework checkpoint sidecar ("Repro Betweenness ChecKpoint").
CHECKPOINT_MAGIC = b"RBCK"

PathLike = Union[str, Path]


@dataclass
class FrameworkCheckpoint:
    """Picklable global state of one framework instance.

    Exactly one of ``store_path`` (the durable store to reopen) and
    ``snapshot`` (embedded ``BD[.]`` records, used when the instance ran on
    an in-memory or temporary store) is set.
    """

    vertices: List[Vertex]
    edges: List[Edge]
    vertex_scores: VertexScores
    edge_scores: EdgeScores
    restricted: bool
    store_path: Optional[str] = None
    snapshot: Optional[Dict[Vertex, SourceData]] = field(default=None, repr=False)
    #: Generation of the durable store at checkpoint time; resume refuses a
    #: store whose generation has moved on (the sidecar would be stale).
    store_generation: Optional[int] = None
    #: Whether the checkpointed graph is directed (sidecars written before
    #: directed support decode as ``False``, their only possibility).
    directed: bool = False
    #: The session configuration (``BetweennessConfig.to_dict()``) that
    #: produced this checkpoint, when one was in play.  It is stored as a
    #: plain dict so the storage layer needs no knowledge of the API layer;
    #: ``repro.api.resume_session`` rebuilds the config from it, which is
    #: why resuming needs nothing but the checkpoint path.
    config: Optional[Dict] = None
    #: Number of update batches applied when the checkpoint was written.
    #: The shard coordinator compares this against its manifest's batch
    #: cursor: an older sidecar is replayed forward from the batch log, a
    #: newer one (state from a future run) is refused — never silently mixed.
    batch_cursor: Optional[int] = None
    #: Order-exact adjacency capture (:meth:`repro.graph.Graph
    #: .adjacency_payload`).  ``vertices``/``edges`` rebuild the same graph
    #: but canonicalize neighbor order; resume prefers this payload when
    #: present so post-resume repair sweeps accumulate floats in the exact
    #: order the checkpointing process would have.
    adjacency: Optional[Dict] = field(default=None, repr=False)
    #: Shard bookkeeping written by the shard coordinator's workers:
    #: ``{"shard_id", "num_shards", "source_order"}``.  ``source_order`` is
    #: the live store's source insertion order, so a replacement worker
    #: reloads its records in the exact order the dead worker held them.
    shard_meta: Optional[Dict] = None


def save_checkpoint(path: PathLike, checkpoint: FrameworkCheckpoint) -> Path:
    """Write ``checkpoint`` to ``path`` (overwriting any previous checkpoint)."""
    path = Path(path)
    write_sidecar(
        path,
        CHECKPOINT_MAGIC,
        {
            "vertices": checkpoint.vertices,
            "edges": checkpoint.edges,
            "vertex_scores": checkpoint.vertex_scores,
            "edge_scores": checkpoint.edge_scores,
            "restricted": checkpoint.restricted,
            "store_path": checkpoint.store_path,
            "snapshot": checkpoint.snapshot,
            "store_generation": checkpoint.store_generation,
            "directed": checkpoint.directed,
            "config": checkpoint.config,
            "batch_cursor": checkpoint.batch_cursor,
            "adjacency": checkpoint.adjacency,
            "shard_meta": checkpoint.shard_meta,
        },
    )
    return path


def load_checkpoint(path: PathLike) -> FrameworkCheckpoint:
    """Read a checkpoint written by :func:`save_checkpoint` (CRC-validated)."""
    payload = read_sidecar(path, CHECKPOINT_MAGIC)
    return FrameworkCheckpoint(
        vertices=payload["vertices"],
        edges=payload["edges"],
        vertex_scores=payload["vertex_scores"],
        edge_scores=payload["edge_scores"],
        restricted=payload["restricted"],
        store_path=payload["store_path"],
        snapshot=payload["snapshot"],
        store_generation=payload.get("store_generation"),
        directed=bool(payload.get("directed", False)),
        config=payload.get("config"),
        batch_cursor=payload.get("batch_cursor"),
        adjacency=payload.get("adjacency"),
        shard_meta=payload.get("shard_meta"),
    )
