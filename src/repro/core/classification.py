"""Per-source classification of an edge update.

For a given source ``s``, the work required by an update to edge ``(u1, u2)``
depends on the difference ``dd = d(s, uL) - d(s, uH)`` between the distances
of the two endpoints (Section 3.1 of the paper), where ``uH`` is the endpoint
closer to the source and ``uL`` the farther one:

* ``dd == 0`` (or both endpoints unreachable): the edge lies on no shortest
  path from ``s`` (Proposition 3.1), so the source is skipped entirely;
* addition with ``dd == 1``: no structural change, only path counts and
  dependencies must be repaired (Algorithm 2);
* addition with ``dd > 1`` (including a previously unreachable ``uL``):
  structural change — distances shrink in the sub-DAG under ``uL``
  (Algorithm 4);
* removal with ``dd == 1`` where ``uL`` keeps another predecessor: no
  structural change (Algorithm 2, deletion flavour);
* removal where ``uL`` loses its last predecessor: structural change repaired
  through pivots (Algorithms 6-9), possibly disconnecting a component
  (Algorithm 10).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.algorithms.brandes import SourceData
from repro.core.updates import EdgeUpdate
from repro.graph.graph import Graph
from repro.types import Vertex


class UpdateCase(enum.Enum):
    """The per-source update cases of Section 3.1."""

    SKIP = "skip"
    ADD_NO_STRUCTURE = "add_no_structure"
    ADD_STRUCTURAL = "add_structural"
    REMOVE_NO_STRUCTURE = "remove_no_structure"
    REMOVE_STRUCTURAL = "remove_structural"


@dataclass(frozen=True)
class SourceClassification:
    """Outcome of classifying one update for one source.

    ``high`` (``uH``) is the endpoint closer to the source and ``low``
    (``uL``) the farther one; both are ``None`` for skipped sources where the
    distinction is irrelevant.  ``distance_difference`` is ``dd``; ``None``
    encodes "``uL`` unreachable" (infinite difference).
    """

    case: UpdateCase
    high: Optional[Vertex] = None
    low: Optional[Vertex] = None
    distance_difference: Optional[int] = None


def classify(
    graph: Graph, data: SourceData, update: EdgeUpdate
) -> SourceClassification:
    """Classify ``update`` for the source whose betweenness data is ``data``.

    ``graph`` must already reflect the update (edge added or removed), since
    the removal case needs to inspect the *remaining* predecessors of ``uL``.

    On a directed graph the endpoints cannot be reordered by distance: the
    updated edge only ever carries paths ``u -> v``, so ``uH`` is always the
    tail and ``uL`` always the head (see :func:`_classify_directed`).
    """
    if graph.directed:
        return _classify_directed(graph, data, update)
    u, v = update.endpoints
    du = data.distance.get(u)
    dv = data.distance.get(v)

    # Both endpoints unreachable: the update can neither create nor destroy
    # any shortest path from this source.
    if du is None and dv is None:
        return SourceClassification(UpdateCase.SKIP)

    # Order the endpoints: uH is closer to the source (unreachable counts as
    # infinitely far).
    if dv is None or (du is not None and du <= dv):
        high, low, d_high, d_low = u, v, du, dv
    else:
        high, low, d_high, d_low = v, u, dv, du

    if update.is_addition:
        if d_low is None:
            # uL previously unreachable: structural change, distances appear.
            return SourceClassification(
                UpdateCase.ADD_STRUCTURAL, high, low, None
            )
        dd = d_low - d_high
        if dd == 0:
            return SourceClassification(UpdateCase.SKIP, high, low, 0)
        if dd == 1:
            return SourceClassification(UpdateCase.ADD_NO_STRUCTURE, high, low, 1)
        return SourceClassification(UpdateCase.ADD_STRUCTURAL, high, low, dd)

    # Removal: the two endpoints were adjacent, so if one is reachable the
    # other is too and their distances differ by at most one.
    if d_low is None or d_high is None:
        return SourceClassification(UpdateCase.SKIP)
    dd = d_low - d_high
    if dd == 0:
        # Proposition 3.1: no shortest path used the removed edge.
        return SourceClassification(UpdateCase.SKIP, high, low, 0)
    if _has_other_predecessor(graph, data, low):
        return SourceClassification(UpdateCase.REMOVE_NO_STRUCTURE, high, low, dd)
    return SourceClassification(UpdateCase.REMOVE_STRUCTURAL, high, low, dd)


def _classify_directed(
    graph: Graph, data: SourceData, update: EdgeUpdate
) -> SourceClassification:
    """Directed-edge classification: the edge is oriented ``u -> v``.

    Only paths traversing the edge in its own direction exist, so the roles
    are fixed (``uH = u``, ``uL = v``) and ``dd = d(s, v) - d(s, u)`` may be
    negative — any ``dd <= 0`` means the edge lies on no shortest path from
    this source (the directed form of Proposition 3.1) and the source is
    skipped.  An unreachable tail likewise guarantees a skip, whatever the
    head's distance: no path from the source can enter the edge.
    """
    u, v = update.endpoints
    du = data.distance.get(u)
    dv = data.distance.get(v)

    if du is None:
        return SourceClassification(UpdateCase.SKIP)

    if update.is_addition:
        if dv is None:
            # Head previously unreachable: structural, distances appear.
            return SourceClassification(UpdateCase.ADD_STRUCTURAL, u, v, None)
        dd = dv - du
        if dd <= 0:
            return SourceClassification(UpdateCase.SKIP, u, v, dd)
        if dd == 1:
            return SourceClassification(UpdateCase.ADD_NO_STRUCTURE, u, v, 1)
        return SourceClassification(UpdateCase.ADD_STRUCTURAL, u, v, dd)

    # Removal: with a reachable tail the head was reachable too while the
    # edge existed (d(v) <= d(u) + 1); the edge carried shortest paths iff
    # the difference is exactly one.
    if dv is None:
        return SourceClassification(UpdateCase.SKIP)
    dd = dv - du
    if dd != 1:
        return SourceClassification(UpdateCase.SKIP, u, v, dd)
    if _has_other_predecessor(graph, data, v):
        return SourceClassification(UpdateCase.REMOVE_NO_STRUCTURE, u, v, 1)
    return SourceClassification(UpdateCase.REMOVE_STRUCTURAL, u, v, 1)


def _has_other_predecessor(graph: Graph, data: SourceData, low: Vertex) -> bool:
    """Does ``low`` still have a shortest-path predecessor after the removal?

    Predecessors are identified by distance level (the paper's
    predecessor-free convention): any remaining neighbor one level closer to
    the source.  The removed edge is already absent from ``graph``, so the
    scan naturally excludes it.
    """
    target_level = data.distance[low] - 1
    for neighbor in graph.in_neighbors(low):
        if data.distance.get(neighbor) == target_level:
            return True
    return False


def classify_flat(state, distance) -> Tuple[UpdateCase, int, int]:
    """Slot-space :func:`classify` over a record's raw distance column.

    ``state`` is the :class:`~repro.core.flat.FlatBatchState` of the update
    (graph already reflecting it, endpoints as slots) and ``distance`` the
    length-``n`` int16 column (``-1`` = unreachable).  Returns
    ``(case, high, low)`` with slot endpoints (``-1`` when skipped); the
    decision tree is a literal transcription of :func:`classify` /
    :func:`_classify_directed` with ``-1`` standing in for ``None``.
    """
    us, vs = state.us, state.vs
    du = int(distance[us])
    dv = int(distance[vs])
    if state.directed:
        if du == -1:
            return UpdateCase.SKIP, -1, -1
        if state.is_addition:
            if dv == -1:
                return UpdateCase.ADD_STRUCTURAL, us, vs
            dd = dv - du
            if dd <= 0:
                return UpdateCase.SKIP, -1, -1
            if dd == 1:
                return UpdateCase.ADD_NO_STRUCTURE, us, vs
            return UpdateCase.ADD_STRUCTURAL, us, vs
        if dv == -1:
            return UpdateCase.SKIP, -1, -1
        if dv - du != 1:
            return UpdateCase.SKIP, -1, -1
        if _has_other_predecessor_flat(state, distance, vs):
            return UpdateCase.REMOVE_NO_STRUCTURE, us, vs
        return UpdateCase.REMOVE_STRUCTURAL, us, vs

    if du == -1 and dv == -1:
        return UpdateCase.SKIP, -1, -1
    # Order the endpoints: uH is closer to the source (unreachable counts
    # as infinitely far; ties keep u as uH, like the dict classifier).
    if dv == -1 or (du != -1 and du <= dv):
        high, low, d_high, d_low = us, vs, du, dv
    else:
        high, low, d_high, d_low = vs, us, dv, du

    if state.is_addition:
        if d_low == -1:
            return UpdateCase.ADD_STRUCTURAL, high, low
        dd = d_low - d_high
        if dd == 0:
            return UpdateCase.SKIP, -1, -1
        if dd == 1:
            return UpdateCase.ADD_NO_STRUCTURE, high, low
        return UpdateCase.ADD_STRUCTURAL, high, low

    if d_low == -1 or d_high == -1:
        return UpdateCase.SKIP, -1, -1
    if d_low - d_high == 0:
        return UpdateCase.SKIP, -1, -1
    if _has_other_predecessor_flat(state, distance, low):
        return UpdateCase.REMOVE_NO_STRUCTURE, high, low
    return UpdateCase.REMOVE_STRUCTURAL, high, low


def _has_other_predecessor_flat(state, distance, low: int) -> bool:
    """Flat form of :func:`_has_other_predecessor` over the in-CSR."""
    target_level = int(distance[low]) - 1
    start = state.in_indptr[low]
    stop = state.in_indptr[low + 1]
    if start == stop:
        return False
    return bool((distance[state.in_indices[start:stop]] == target_level).any())
