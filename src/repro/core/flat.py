"""Shared primitives of the vectorized (slot-space) update-sweep repair.

The vectorized repair phases in :mod:`repro.core.addition`,
:mod:`repro.core.removal` and :mod:`repro.core.accumulation` all work on the
same raw material: a compiled CSR snapshot of the graph *as of one update of
the batch* (:class:`FlatBatchState`), the record's column arrays, and a
couple of order-preserving array tricks.  This module holds that common
ground.

The two tricks carry the bit-identity burden:

* :func:`slice_positions` flattens the adjacency slices of a vertex array in
  *vertex order* — the exact sequence a scalar ``for v: for nbr in adj[v]``
  double loop visits;
* :func:`first_occurrence` deduplicates such a flattened sequence keeping the
  first copy of every slot in encounter order — the exact sequence in which
  a scalar loop guarded by a "seen" set admits them.

Everything else in the vectorized phases is arithmetic on arrays arranged by
these two orders, applied through the ordered scatter-add of
:mod:`repro.core.jit`.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = [
    "FlatBatchState",
    "FlatScratch",
    "slice_positions",
    "first_occurrence",
    "group_by_level",
]


class FlatBatchState:
    """Compiled slot-space graph snapshot for one update of a batch.

    Holds the out- and in-CSR families of the graph *after* applying the
    batch prefix up to and including this update (the state every scalar
    repair of this update sees), plus ``reg_of_edge`` mapping this
    snapshot's edge ids to persistent :class:`~repro.core.kernel.\
EdgeScoreRegistry` ids, so edge-score contributions land in the same
    accumulator across snapshots.
    """

    __slots__ = (
        "n",
        "directed",
        "indptr",
        "indices",
        "edge_ids",
        "in_indptr",
        "in_indices",
        "in_edge_ids",
        "reg_of_edge",
        "us",
        "vs",
        "is_addition",
    )

    def __init__(
        self,
        n: int,
        directed: bool,
        indptr: np.ndarray,
        indices: np.ndarray,
        edge_ids: np.ndarray,
        in_indptr: np.ndarray,
        in_indices: np.ndarray,
        in_edge_ids: np.ndarray,
        reg_of_edge: np.ndarray,
        us: int,
        vs: int,
        is_addition: bool,
    ) -> None:
        self.n = n
        self.directed = directed
        self.indptr = indptr
        self.indices = indices
        self.edge_ids = edge_ids
        self.in_indptr = in_indptr
        self.in_indices = in_indices
        self.in_edge_ids = in_edge_ids
        self.reg_of_edge = reg_of_edge
        self.us = us
        self.vs = vs
        self.is_addition = is_addition


class FlatScratch:
    """Reusable length-``n`` scratch arrays for the vectorized repair.

    ``first_of`` backs :func:`first_occurrence`; ``position_of`` and
    ``member_mask`` back the accumulation sweep's same-level write-hazard
    detection.  ``member_mask`` must be all-``False`` between uses (every
    user restores it); the other two carry no invariant.
    """

    __slots__ = ("n", "first_of", "position_of", "member_mask")

    def __init__(self, n: int) -> None:
        self.n = n
        self.first_of = np.empty(n, dtype=np.int64)
        self.position_of = np.empty(n, dtype=np.int64)
        self.member_mask = np.zeros(n, dtype=np.bool_)


def slice_positions(
    indptr: np.ndarray, vertices: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Flattened ``indices`` positions of every vertex's adjacency slice.

    Returns ``(positions, counts)`` where ``positions`` walks the slices in
    ``vertices`` order — i.e. the exact order a scalar loop ``for v in
    vertices: for nbr in adj[v]`` would visit them.
    """
    starts = indptr[vertices]
    counts = indptr[vertices + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), counts
    offsets = np.cumsum(counts) - counts
    positions = np.arange(total, dtype=np.int64) + np.repeat(
        starts - offsets, counts
    )
    return positions, counts


def first_occurrence(values: np.ndarray, scratch: np.ndarray) -> np.ndarray:
    """First copy of every slot in ``values``, in encounter order.

    ``scratch`` is a length-``n`` int64 array (slots index into it); its
    contents are overwritten before every read.  Reversed assignment makes
    the *first* occurrence win, so comparing each element's recorded first
    position with its own position keeps exactly the first copy of every
    slot — no sort, no hashing.
    """
    if values.size <= 1:
        return values
    flat = np.arange(values.size, dtype=np.int64)
    scratch[values[::-1]] = flat[::-1]
    return values[scratch[values] == flat]


def group_by_level(
    vertices: np.ndarray, levels: np.ndarray
) -> List[Tuple[int, np.ndarray]]:
    """Split ``vertices`` into per-level groups, preserving order within each.

    The scalar code appends each vertex to ``buckets[level]`` while
    iterating ``vertices``; a stable selection per distinct level reproduces
    every bucket's append order exactly.
    """
    out: List[Tuple[int, np.ndarray]] = []
    if vertices.size == 0:
        return out
    for level in np.unique(levels):
        out.append((int(level), vertices[levels == level]))
    return out
