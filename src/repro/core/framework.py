"""Public facade of the incremental betweenness framework (Figure 1).

:class:`IncrementalBetweenness` glues the pieces together:

* **Step 1** — run the modified Brandes algorithm once on the initial graph,
  keeping vertex and edge betweenness and storing the per-source data
  ``BD[s]`` in a pluggable :class:`~repro.storage.base.BDStore` (in memory or
  out of core);
* **Step 2** — for every edge addition or removal in the update stream,
  sweep over the sources: peek at the two endpoint distances to skip sources
  the update cannot affect (Proposition 3.1), repair the others with the
  per-source incremental algorithms, and fold the corrections into the
  global vertex/edge betweenness scores.

A framework instance can also be restricted to a subset of sources, in which
case it maintains *partial* betweenness scores — exactly what one mapper of
the parallel embodiment (Section 5.4) owns; the reducer then sums partial
scores across instances.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.algorithms.brandes import brandes_betweenness
from repro.core.result import UpdateResult
from repro.core.source_update import update_source
from repro.core.updates import EdgeUpdate, UpdateKind
from repro.exceptions import DirectedGraphUnsupportedError, UpdateError
from repro.graph.graph import Graph
from repro.storage.base import BDStore
from repro.storage.memory import InMemoryBDStore
from repro.types import Edge, EdgeScores, Vertex, VertexScores, canonical_edge
from repro.utils.timing import Timer


class IncrementalBetweenness:
    """Maintain vertex and edge betweenness under edge additions and removals.

    Parameters
    ----------
    graph:
        The initial graph.  The framework keeps its own copy; callers apply
        subsequent changes through :meth:`add_edge` / :meth:`remove_edge` /
        :meth:`apply` so that the internal data structures stay consistent.
    store:
        Backend holding the per-source data.  Defaults to an in-memory store
        (the "MO" configuration); pass a
        :class:`~repro.storage.disk.DiskBDStore` for the out-of-core "DO"
        configuration.
    sources:
        Optional subset of sources this instance is responsible for.  When
        given, the maintained scores are partial (summing the scores of a
        set of instances whose source sets partition the vertex set yields
        the exact scores).  New vertices arriving in the stream are adopted
        as new sources only by unrestricted instances; restricted instances
        adopt them through :meth:`add_source`, letting the parallel driver
        decide the owner.
    maintain_predecessors:
        Also keep per-source predecessor lists up to date, reproducing the
        memory and maintenance cost of the paper's "MP" configuration.  The
        incremental repairs never need the lists (that is the point of the
        memory optimisation of Section 3), so this switch exists purely for
        the MP-vs-MO comparison of Figure 5 and for ablation experiments.

    Examples
    --------
    >>> from repro.graph import Graph
    >>> g = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
    >>> ibc = IncrementalBetweenness(g)
    >>> ibc.add_edge(0, 3)
    UpdateResult(...)
    >>> round(ibc.vertex_score(1), 6)
    2.0
    """

    def __init__(
        self,
        graph: Graph,
        store: Optional[BDStore] = None,
        sources: Optional[Sequence[Vertex]] = None,
        maintain_predecessors: bool = False,
    ) -> None:
        if graph.directed:
            raise DirectedGraphUnsupportedError(
                "the incremental framework supports undirected graphs; "
                "use repro.algorithms.brandes_betweenness for directed graphs"
            )
        self._graph = graph.copy()
        self._store: BDStore = store if store is not None else InMemoryBDStore()
        self._restricted = sources is not None
        self._maintain_predecessors = maintain_predecessors
        self._predecessors: Dict[Vertex, Dict[Vertex, set]] = {}
        source_list = list(sources) if sources is not None else self._graph.vertex_list()

        self._vertex_scores: VertexScores = {v: 0.0 for v in self._graph.vertices()}
        self._edge_scores: EdgeScores = {
            self._edge_key(u, v): 0.0 for u, v in self._graph.edges()
        }
        self._initialize(source_list)

    # ------------------------------------------------------------------ #
    # Step 1: offline bootstrap
    # ------------------------------------------------------------------ #
    def _initialize(self, sources: Sequence[Vertex]) -> None:
        result = brandes_betweenness(
            self._graph,
            sources=sources,
            keep_predecessors=False,
            collect_source_data=True,
        )
        self._vertex_scores = result.vertex_scores
        self._edge_scores = result.edge_scores
        for source, data in result.source_data.items():
            self._store.put(data)
            if self._maintain_predecessors:
                self._predecessors[source] = self._build_predecessors(data)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> Graph:
        """The framework's current view of the graph (do not mutate directly)."""
        return self._graph

    @property
    def store(self) -> BDStore:
        """The backing betweenness-data store."""
        return self._store

    @property
    def num_sources(self) -> int:
        """Number of sources this instance maintains."""
        return len(self._store)

    def vertex_betweenness(self) -> VertexScores:
        """Copy of the current vertex betweenness scores."""
        return dict(self._vertex_scores)

    def edge_betweenness(self) -> EdgeScores:
        """Copy of the current edge betweenness scores."""
        return dict(self._edge_scores)

    def vertex_score(self, vertex: Vertex) -> float:
        """Current betweenness of ``vertex``."""
        return self._vertex_scores[vertex]

    def edge_score(self, u: Vertex, v: Vertex) -> float:
        """Current betweenness of the edge ``(u, v)``."""
        return self._edge_scores[self._edge_key(u, v)]

    # ------------------------------------------------------------------ #
    # Step 2: online updates
    # ------------------------------------------------------------------ #
    def add_edge(self, u: Vertex, v: Vertex) -> UpdateResult:
        """Add the edge ``(u, v)`` and update all betweenness scores."""
        return self.apply(EdgeUpdate.addition(u, v))

    def remove_edge(self, u: Vertex, v: Vertex) -> UpdateResult:
        """Remove the edge ``(u, v)`` and update all betweenness scores."""
        return self.apply(EdgeUpdate.removal(u, v))

    def apply(self, update: EdgeUpdate) -> UpdateResult:
        """Apply a single edge update (Step 2 of the framework)."""
        timer = Timer()
        with timer.measure():
            result = self._apply(update)
        result.elapsed_seconds = timer.total
        return result

    def process_stream(self, updates: Iterable[EdgeUpdate]) -> List[UpdateResult]:
        """Apply a whole update stream, returning one result per update."""
        return [self.apply(update) for update in updates]

    def add_source(self, vertex: Vertex) -> None:
        """Adopt ``vertex`` as a source maintained by this (partial) instance."""
        if not self._graph.has_vertex(vertex):
            self._graph.add_vertex(vertex)
        self._vertex_scores.setdefault(vertex, 0.0)
        if vertex not in self._store:
            self._store.add_source(vertex)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _edge_key(self, u: Vertex, v: Vertex) -> Edge:
        return canonical_edge(u, v)

    def _build_predecessors(self, data) -> Dict[Vertex, set]:
        """Predecessor lists of one source, derived from its distances."""
        lists: Dict[Vertex, set] = {}
        for vertex, level in data.distance.items():
            lists[vertex] = {
                neighbor
                for neighbor in self._graph.in_neighbors(vertex)
                if data.distance.get(neighbor) == level - 1
            }
        return lists

    def _apply(self, update: EdgeUpdate) -> UpdateResult:
        u, v = update.endpoints
        if update.kind is UpdateKind.ADDITION:
            self._apply_graph_addition(u, v)
        elif update.kind is UpdateKind.REMOVAL:
            self._apply_graph_removal(u, v)
        else:  # pragma: no cover - defensive, enum is closed
            raise UpdateError(f"unknown update kind {update.kind!r}")

        result = UpdateResult(update=update)
        for source in self._store.sources():
            if self._can_skip(source, u, v):
                data = None
            else:
                data = self._store.get(source)
            if data is None:
                from repro.core.classification import UpdateCase
                from repro.core.result import SourceUpdateStats

                result.record(SourceUpdateStats(case=UpdateCase.SKIP))
                continue
            stats = update_source(
                self._graph,
                data,
                update,
                self._vertex_scores,
                self._edge_scores,
                self._edge_key,
                predecessors=(
                    self._predecessors.setdefault(source, {})
                    if self._maintain_predecessors
                    else None
                ),
            )
            result.record(stats)
            self._store.put(data)

        if update.kind is UpdateKind.REMOVAL:
            self._edge_scores.pop(self._edge_key(u, v), None)
        return result

    def _can_skip(self, source: Vertex, u: Vertex, v: Vertex) -> bool:
        """Cheap pre-check of Proposition 3.1 using only two stored distances."""
        du, dv = self._store.endpoint_distances(source, u, v)
        if du is None and dv is None:
            return True
        return du is not None and dv is not None and du == dv

    def _apply_graph_addition(self, u: Vertex, v: Vertex) -> None:
        if u == v:
            raise UpdateError("self loops are not supported")
        if self._graph.has_edge(u, v):
            raise UpdateError(f"edge ({u!r}, {v!r}) is already in the graph")
        new_vertices = [w for w in (u, v) if not self._graph.has_vertex(w)]
        self._graph.add_edge(u, v)
        self._edge_scores[self._edge_key(u, v)] = 0.0
        for vertex in new_vertices:
            self._vertex_scores.setdefault(vertex, 0.0)
            if not self._restricted:
                self._store.add_source(vertex)

    def _apply_graph_removal(self, u: Vertex, v: Vertex) -> None:
        if not self._graph.has_edge(u, v):
            raise UpdateError(f"edge ({u!r}, {v!r}) is not in the graph")
        self._graph.remove_edge(u, v)
