"""Public facade of the incremental betweenness framework (Figure 1).

:class:`IncrementalBetweenness` glues the pieces together:

* **Step 1** — run the modified Brandes algorithm once on the initial graph,
  keeping vertex and edge betweenness and storing the per-source data
  ``BD[s]`` in a pluggable :class:`~repro.storage.base.BDStore` (in memory or
  out of core);
* **Step 2** — for every edge addition or removal in the update stream,
  sweep over the sources: peek at the two endpoint distances to skip sources
  the update cannot affect (Proposition 3.1), repair the others with the
  per-source incremental algorithms, and fold the corrections into the
  global vertex/edge betweenness scores.

A framework instance can also be restricted to a subset of sources, in which
case it maintains *partial* betweenness scores — exactly what one mapper of
the parallel embodiment (Section 5.4) owns; the reducer then sums partial
scores across instances.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.algorithms.brandes import SourceData, brandes_betweenness
from repro.core.checkpoint import (
    FrameworkCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.core.classification import UpdateCase
from repro.core.kernel import ArrayKernel
from repro.core.result import BatchResult, SourceUpdateStats, UpdateResult
from repro.core.source_update import update_source
from repro.core.updates import EdgeUpdate, UpdateKind, batches, validate_batch
from repro.exceptions import ConfigurationError, UpdateError
from repro.graph.graph import Graph
from repro.storage.arrays import ArrayBDStore
from repro.storage.base import BDStore
from repro.storage.disk import DiskBDStore
from repro.storage.memory import InMemoryBDStore
from repro.types import (
    BACKENDS,
    UNREACHABLE,
    Edge,
    EdgeScores,
    Vertex,
    VertexScores,
    canonical_edge,
    validate_backend,
)
from repro.utils.timing import Timer

PathLike = Union[str, Path]


def _check_store_orientation(store: Optional[BDStore], directed: bool) -> None:
    """Refuse a store whose recorded orientation contradicts the graph's.

    Stores that persist a directedness flag (the disk store's header bit,
    the array store's constructor argument) expose it as a ``directed``
    attribute; ``None`` means "orientation-agnostic" and is accepted.  A
    mismatch would silently misinterpret every BD record — a directed
    record set replayed with symmetric adjacency, or vice versa — so it is
    rejected up front.
    """
    if store is None:
        return
    store_directed = getattr(store, "directed", None)
    if store_directed is not None and store_directed != directed:
        store_kind = "directed" if store_directed else "undirected"
        graph_kind = "directed" if directed else "undirected"
        raise ConfigurationError(
            f"store records a {store_kind} graph but the framework graph is "
            f"{graph_kind}; a store can only be resumed with the orientation "
            "it was written with"
        )


class IncrementalBetweenness:
    """Maintain vertex and edge betweenness under edge additions and removals.

    Parameters
    ----------
    graph:
        The initial graph.  The framework keeps its own copy; callers apply
        subsequent changes through :meth:`add_edge` / :meth:`remove_edge` /
        :meth:`apply` so that the internal data structures stay consistent.
    store:
        Backend holding the per-source data.  Defaults to an in-memory store
        (the "MO" configuration); pass a
        :class:`~repro.storage.disk.DiskBDStore` for the out-of-core "DO"
        configuration.
    sources:
        Optional subset of sources this instance is responsible for.  When
        given, the maintained scores are partial (summing the scores of a
        set of instances whose source sets partition the vertex set yields
        the exact scores).  New vertices arriving in the stream are adopted
        as new sources only by unrestricted instances; restricted instances
        adopt them through :meth:`add_source`, letting the parallel driver
        decide the owner.
    maintain_predecessors:
        Also keep per-source predecessor lists up to date, reproducing the
        memory and maintenance cost of the paper's "MP" configuration.  The
        incremental repairs never need the lists (that is the point of the
        memory optimisation of Section 3), so this switch exists purely for
        the MP-vs-MO comparison of Figure 5 and for ablation experiments.

    Examples
    --------
    >>> from repro.graph import Graph
    >>> g = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
    >>> ibc = IncrementalBetweenness(g)
    >>> ibc.add_edge(0, 3)
    UpdateResult(...)
    >>> round(ibc.vertex_score(1), 6)
    2.0
    """

    def __init__(
        self,
        graph: Graph,
        store: Optional[BDStore] = None,
        sources: Optional[Sequence[Vertex]] = None,
        maintain_predecessors: bool = False,
        backend: str = "dicts",
    ) -> None:
        _check_store_orientation(store, graph.directed)
        self._graph = graph.copy()
        self._backend = validate_backend(backend)
        self._kernel: Optional[ArrayKernel] = None
        self._vector_batch = False
        self._restricted = sources is not None
        self._maintain_predecessors = maintain_predecessors
        self._predecessors: Dict[Vertex, Dict[Vertex, set]] = {}
        source_list = list(sources) if sources is not None else self._graph.vertex_list()

        if self._backend == "arrays":
            if maintain_predecessors:
                raise ConfigurationError(
                    "maintain_predecessors (the MP configuration) is only "
                    "supported by the dicts backend"
                )
            self._store = (
                store if store is not None
                else ArrayBDStore(
                    self._graph.vertex_list(),
                    row_capacity=len(source_list),
                    directed=self._graph.directed,
                )
            )
            self._kernel = ArrayKernel(self._graph, self._store)
            self._vertex_scores = self._kernel.vertex_score_view()
            self._edge_scores = self._kernel.edge_score_view()
        else:
            self._store = store if store is not None else InMemoryBDStore()
            self._vertex_scores: VertexScores = {
                v: 0.0 for v in self._graph.vertices()
            }
            self._edge_scores: EdgeScores = {
                self._edge_key(u, v): 0.0 for u, v in self._graph.edges()
            }
        self._initialize(source_list)

    @classmethod
    def from_source_data(
        cls,
        graph: Graph,
        source_data: Dict[Vertex, SourceData],
        store: Optional[BDStore] = None,
        restricted: bool = True,
        backend: str = "dicts",
    ) -> "IncrementalBetweenness":
        """Build an instance from existing ``BD[.]`` records, skipping Brandes.

        The (partial) vertex scores are rebuilt from the stored dependencies
        (``score[v] = sum_s delta_s[v]``) and the edge scores from the
        shortest-path DAG each record encodes, so the result is exactly the
        instance that running Brandes over ``source_data``'s sources would
        produce.  This is how a parallel worker is seeded from a picklable
        snapshot of an existing store
        (:meth:`~repro.storage.base.BDStore.snapshot`) instead of
        re-running the bootstrap.
        """
        self = cls._bare(graph, store, restricted, backend)
        self._store.load_snapshot(source_data.values())
        for data in source_data.values():
            self._accumulate_record(data)
        return self

    @classmethod
    def from_store(
        cls,
        graph: Graph,
        store: BDStore,
        restricted: Optional[bool] = None,
        backend: str = "dicts",
    ) -> "IncrementalBetweenness":
        """Resume from a store that *already* holds ``BD[.]`` records.

        This is the reconstruction path of checkpoint/resume: a durable
        :class:`~repro.storage.disk.DiskBDStore` written by a previous
        process is reopened by path and handed here together with the
        current graph; the global vertex/edge scores are rebuilt by scanning
        every stored record once (one record in memory at a time — no
        snapshot dict is materialised), yielding exactly the scores a
        from-scratch bootstrap over the same sources would produce.

        **Contract:** ``graph`` must be the graph state the store's records
        describe.  The store persists no edge list, so a mismatched graph
        cannot generally be detected and would yield silently wrong scores —
        use :meth:`checkpoint`/:meth:`resume` when the graph itself needs to
        be persisted alongside the records.  Sources referencing vertices
        the graph lacks *are* detected and rejected.

        ``restricted`` defaults to auto-detection: an instance whose store
        covers every graph vertex as a source is unrestricted (it will adopt
        stream-born vertices automatically), anything less is treated as a
        partition worker.
        """
        graph_vertices = set(graph.vertices())
        stray = set(store.sources()) - graph_vertices
        if stray:
            raise ConfigurationError(
                f"store sources {sorted(map(repr, stray))} are not vertices "
                "of the given graph — the store describes a different graph "
                "state (resume from a checkpoint to restore the matching "
                "graph)"
            )
        if restricted is None:
            restricted = set(store.sources()) != graph_vertices
        self = cls._bare(graph, store, restricted, backend)
        if isinstance(store, ArrayBDStore):
            self._accumulate_column_store(store)
        else:
            for source in store.sources():
                self._accumulate_record(store.get(source))
        return self

    @classmethod
    def _bare(
        cls,
        graph: Graph,
        store: Optional[BDStore],
        restricted: bool,
        backend: str = "dicts",
        copy_graph: bool = True,
    ) -> "IncrementalBetweenness":
        """Instance with zeroed scores and no bootstrap (shared by resume paths).

        ``copy_graph=False`` adopts ``graph`` as-is — used by resume when the
        graph was just rebuilt order-exactly from a checkpoint's adjacency
        payload (``copy()`` would re-canonicalize neighbor order and break
        bit-identical post-resume sweeps); the caller must not reuse it.
        """
        _check_store_orientation(store, graph.directed)
        self = cls.__new__(cls)
        self._graph = graph.copy() if copy_graph else graph
        self._backend = validate_backend(backend)
        self._kernel = None
        self._vector_batch = False
        self._restricted = restricted
        self._maintain_predecessors = False
        self._predecessors = {}
        if self._backend == "arrays":
            self._store = (
                store if store is not None
                else ArrayBDStore(
                    self._graph.vertex_list(), directed=self._graph.directed
                )
            )
            self._kernel = ArrayKernel(self._graph, self._store)
            self._vertex_scores = self._kernel.vertex_score_view()
            self._edge_scores = self._kernel.edge_score_view()
            for u, v in self._graph.edges():
                self._edge_scores[self._edge_key(u, v)] = 0.0
        else:
            self._store = store if store is not None else InMemoryBDStore()
            self._vertex_scores = {v: 0.0 for v in self._graph.vertices()}
            self._edge_scores = {
                self._edge_key(u, v): 0.0 for u, v in self._graph.edges()
            }
        return self

    def _accumulate_column_store(self, store: ArrayBDStore) -> None:
        """:meth:`_accumulate_record` over a whole column store, in column space.

        The rebuild reads each record's ``(distance, sigma, delta)`` row
        views directly — no dict decode — and folds it into per-slot and
        per-edge accumulator vectors with element-wise numpy ops.  Bit
        identity with the scalar loop is by construction: records are
        folded one at a time in source order (never summed across an
        axis, which would re-associate), masked lanes contribute an exact
        ``+0.0`` (every real contribution is positive, so ``x + 0.0``
        round-trips its bits), and each lane applies the scalar path's
        own expression shape ``(sigma_u / sigma_v) * (1.0 + delta_v)``.
        """
        index = store.vertex_index
        edge_entries = []  # (canonical key, u slot, v slot)
        for u, v in self._graph.edges():
            if u in index and v in index:
                edge_entries.append(
                    (self._edge_key(u, v), index.slot(u), index.slot(v))
                )
        num_edges = len(edge_entries)
        u_slots = np.array([e[1] for e in edge_entries], dtype=np.int64)
        v_slots = np.array([e[2] for e in edge_entries], dtype=np.int64)
        if not self._graph.directed:
            # Both orientations of every undirected edge, reverse pairs in
            # the second half: per record at most one orientation is a DAG
            # edge, so halves recombine into canonical edge space exactly.
            u_slots, v_slots = (
                np.concatenate([u_slots, v_slots]),
                np.concatenate([v_slots, u_slots]),
            )

        vertex_acc = np.zeros(store.capacity, dtype=np.float64)
        edge_acc = np.zeros(num_edges, dtype=np.float64)
        for source in store.sources():
            dist_row, sigma_row, delta_row = store.record_columns(source)
            contribution = delta_row.copy()
            contribution[index.slot(source)] = 0.0  # own dependency excluded
            vertex_acc += contribution
            if num_edges:
                dist = dist_row.astype(np.int64)
                dist_u = dist[u_slots]
                mask = (dist_u != UNREACHABLE) & (dist[v_slots] == dist_u + 1)
                ratio = sigma_row[u_slots] / np.where(mask, sigma_row[v_slots], 1)
                pair = np.where(mask, ratio * (1.0 + delta_row[v_slots]), 0.0)
                edge_acc += (
                    pair if self._graph.directed
                    else pair[:num_edges] + pair[num_edges:]
                )

        for vertex in self._graph.vertices():
            if vertex in index:
                self._vertex_scores[vertex] = float(vertex_acc[index.slot(vertex)])
        for position, (key, _, _) in enumerate(edge_entries):
            self._edge_scores[key] = float(edge_acc[position])

    def _accumulate_record(self, data: SourceData) -> None:
        """Fold one ``BD[s]`` record into the global vertex/edge scores."""
        source = data.source
        for vertex, dependency in data.delta.items():
            if vertex != source:
                self._vertex_scores[vertex] += dependency
        # Every DAG edge (parent -> child) carries the dependency
        # sigma[parent]/sigma[child] * (1 + delta[child]).  Only edges
        # between vertices the record reaches can be DAG edges, so the
        # scan is proportional to the record, not the whole graph.
        for parent, parent_distance in data.distance.items():
            for child in self._graph.out_neighbors(parent):
                if data.distance.get(child) != parent_distance + 1:
                    continue
                contribution = (
                    data.sigma[parent]
                    / data.sigma[child]
                    * (1.0 + data.delta[child])
                )
                self._edge_scores[self._edge_key(parent, child)] += contribution

    # ------------------------------------------------------------------ #
    # Checkpoint / resume
    # ------------------------------------------------------------------ #
    def checkpoint(self, path: PathLike, config: Optional[Dict] = None) -> Path:
        """Write a sidecar checkpoint so a later process can :meth:`resume`.

        The sidecar holds the graph, the global vertex/edge scores and the
        restriction flag.  When the backing store is a durable
        :class:`~repro.storage.disk.DiskBDStore` (caller-named path) only
        its *path* is recorded — the records stay in the store file, which
        is flushed here; otherwise (in-memory or temporary store) a full
        ``BD[.]`` snapshot is embedded in the sidecar.

        ``config`` optionally embeds a session configuration dict
        (``BetweennessConfig.to_dict()``) into the sidecar, which is what
        lets ``repro.api.resume_session`` restore a session from nothing
        but the checkpoint path.

        Predecessor lists (the MP configuration) are not checkpointed; a
        resumed instance runs without them, which never changes scores.
        """
        return save_checkpoint(path, self.build_checkpoint(config=config))

    def build_checkpoint(
        self,
        config: Optional[Dict] = None,
        batch_cursor: Optional[int] = None,
        shard_meta: Optional[Dict] = None,
        store_path: Optional[str] = None,
        store_generation: Optional[int] = None,
    ) -> FrameworkCheckpoint:
        """Assemble the sidecar payload of :meth:`checkpoint` without writing it.

        By default the record location is derived from the backing store
        exactly as :meth:`checkpoint` does (durable disk store → path +
        generation, anything else → embedded snapshot).  The shard
        coordinator's workers instead pass ``store_path``/``store_generation``
        explicitly: their live store is in RAM and the records were just
        written to a cursor-stamped per-shard store file, which is what the
        sidecar must reference.  ``batch_cursor`` and ``shard_meta`` are
        recorded verbatim (see :class:`FrameworkCheckpoint`).
        """
        snapshot: Optional[Dict[Vertex, SourceData]] = None
        if store_path is None:
            if isinstance(self._store, DiskBDStore) and self._store.persistent:
                self._store.flush()
                # Resolve to an absolute path: the sidecar may be loaded from
                # a different working directory than the one that wrote it.
                store_path = str(Path(self._store.path).resolve())
                store_generation = self._store.generation
            else:
                snapshot = self._store.snapshot()
        return FrameworkCheckpoint(
            vertices=self._graph.vertex_list(),
            edges=self._graph.edge_list(),
            vertex_scores=dict(self._vertex_scores),
            edge_scores=dict(self._edge_scores),
            restricted=self._restricted,
            store_path=store_path,
            snapshot=snapshot,
            store_generation=store_generation,
            directed=self._graph.directed,
            config=config,
            batch_cursor=batch_cursor,
            adjacency=self._graph.adjacency_payload(),
            shard_meta=shard_meta,
        )

    @classmethod
    def resume(
        cls,
        checkpoint_path: PathLike,
        store: Optional[BDStore] = None,
        backend: str = "dicts",
        checkpoint: Optional[FrameworkCheckpoint] = None,
    ) -> "IncrementalBetweenness":
        """Rebuild an instance from a :meth:`checkpoint` sidecar — no Brandes.

        The graph and the global scores come straight from the sidecar;
        the ``BD[.]`` records come from (in order of precedence) the
        explicitly passed ``store``, the durable store file recorded in the
        checkpoint (reopened via :meth:`DiskBDStore.open
        <repro.storage.disk.DiskBDStore.open>`), or the snapshot embedded in
        the sidecar (loaded into a fresh in-memory store).

        A caller that already parsed the sidecar (the session layer reads
        the embedded config first) passes it as ``checkpoint`` so the file
        — which may embed a full ``BD[.]`` snapshot — is not deserialized a
        second time; ``checkpoint_path`` is then only used in messages.
        """
        ckpt = checkpoint if checkpoint is not None else load_checkpoint(checkpoint_path)
        if ckpt.adjacency is not None:
            # Order-exact rebuild: post-resume repair sweeps accumulate
            # floats in the same neighbor order the checkpointing process
            # would have, so a resumed run is bit-identical to an unbroken
            # one.  Older sidecars fall back to the canonical edge-list
            # rebuild below (same scores at rest, neighbor order not exact).
            graph = Graph.from_adjacency_payload(ckpt.adjacency, directed=ckpt.directed)
            exact_graph = True
        else:
            graph = Graph(directed=ckpt.directed)
            for vertex in ckpt.vertices:
                graph.add_vertex(vertex)
            for u, v in ckpt.edges:
                graph.add_edge(u, v)
            exact_graph = False
        if store is None:
            if ckpt.store_path is not None:
                store = DiskBDStore.open(ckpt.store_path)
                if (
                    ckpt.store_generation is not None
                    and store.generation != ckpt.store_generation
                ):
                    generation = store.generation
                    store.close()
                    raise ConfigurationError(
                        f"store {ckpt.store_path} is at generation "
                        f"{generation} but the checkpoint was written at "
                        f"generation {ckpt.store_generation}: the store was "
                        "modified after checkpointing, so the sidecar's "
                        "scores no longer describe it — re-checkpoint after "
                        "every session that writes to the store"
                    )
            elif ckpt.snapshot is not None:
                if backend == "arrays":
                    store = ArrayBDStore(
                        graph.vertex_list(), directed=graph.directed
                    )
                else:
                    store = InMemoryBDStore()
                store.load_snapshot(ckpt.snapshot.values())
            else:
                raise ConfigurationError(
                    f"checkpoint {checkpoint_path} records neither a store "
                    "path nor an embedded snapshot; pass a store explicitly"
                )
        self = cls._bare(
            graph, store, ckpt.restricted, backend, copy_graph=not exact_graph
        )
        if self._backend == "arrays":
            # The facades stay in place; the checkpointed values are loaded
            # into the kernel's flat score structures verbatim.
            for vertex, score in ckpt.vertex_scores.items():
                self._vertex_scores[vertex] = score
            for key, score in ckpt.edge_scores.items():
                self._edge_scores[key] = score
        else:
            self._vertex_scores = dict(ckpt.vertex_scores)
            self._edge_scores = dict(ckpt.edge_scores)
        return self

    # ------------------------------------------------------------------ #
    # Step 1: offline bootstrap
    # ------------------------------------------------------------------ #
    def _initialize(self, sources: Sequence[Vertex]) -> None:
        if self._backend == "arrays":
            # Vectorized Brandes over the CSR mirror; records land in the
            # column store and the scores in the kernel's flat structures
            # (already exposed through the facades).
            self._kernel.bootstrap(sources)
            return
        result = brandes_betweenness(
            self._graph,
            sources=sources,
            keep_predecessors=False,
            collect_source_data=True,
        )
        self._vertex_scores = result.vertex_scores
        self._edge_scores = result.edge_scores
        for source, data in result.source_data.items():
            self._store.put(data)
            if self._maintain_predecessors:
                self._predecessors[source] = self._build_predecessors(data)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> Graph:
        """The framework's current view of the graph (do not mutate directly)."""
        return self._graph

    @property
    def store(self) -> BDStore:
        """The backing betweenness-data store."""
        return self._store

    @property
    def backend(self) -> str:
        """The compute backend: ``"dicts"`` or ``"arrays"``."""
        return self._backend

    @property
    def num_sources(self) -> int:
        """Number of sources this instance maintains."""
        return len(self._store)

    def vertex_betweenness(self) -> VertexScores:
        """Copy of the current vertex betweenness scores."""
        return dict(self._vertex_scores)

    def edge_betweenness(self) -> EdgeScores:
        """Copy of the current edge betweenness scores."""
        return dict(self._edge_scores)

    def vertex_score(self, vertex: Vertex) -> float:
        """Current betweenness of ``vertex``."""
        return self._vertex_scores[vertex]

    def edge_score(self, u: Vertex, v: Vertex) -> float:
        """Current betweenness of the edge ``(u, v)``."""
        return self._edge_scores[self._edge_key(u, v)]

    # ------------------------------------------------------------------ #
    # Step 2: online updates
    # ------------------------------------------------------------------ #
    def add_edge(self, u: Vertex, v: Vertex) -> UpdateResult:
        """Add the edge ``(u, v)`` and update all betweenness scores."""
        return self.apply(EdgeUpdate.addition(u, v))

    def remove_edge(self, u: Vertex, v: Vertex) -> UpdateResult:
        """Remove the edge ``(u, v)`` and update all betweenness scores."""
        return self.apply(EdgeUpdate.removal(u, v))

    def apply(self, update: EdgeUpdate) -> UpdateResult:
        """Apply a single edge update (Step 2 of the framework)."""
        timer = Timer()
        with timer.measure():
            result = self._apply(update)
        result.elapsed_seconds = timer.total
        return result

    def process_stream(self, updates: Iterable[EdgeUpdate]) -> List[UpdateResult]:
        """Apply a whole update stream, returning one result per update."""
        return [self.apply(update) for update in updates]

    def apply_updates(
        self,
        updates: Iterable[EdgeUpdate],
        adopt: Optional[Iterable[Vertex]] = None,
    ) -> BatchResult:
        """Apply a batch of consecutive edge updates in a single source sweep.

        The one-at-a-time path (:meth:`apply`) sweeps the whole source store
        once per update, so a stream of ``k`` updates loads and saves every
        non-skipped ``BD[s]`` record up to ``k`` times — the dominant cost of
        the out-of-core configuration.  This method inverts the loop nest:
        every source is visited *once* and the batch is replayed against it
        in order, so each record is loaded and saved at most once per batch
        while the scores remain exactly those of the one-at-a-time path
        (each (source, update) repair sees the same graph state and the
        per-source corrections are additive, hence order-independent across
        sources).

        Parameters
        ----------
        updates:
            The batch, in application order.  The whole batch is validated
            against the current graph before any state is touched, so an
            invalid update leaves the framework unchanged.
        adopt:
            Only for restricted (partial) instances: vertices created by this
            batch that *this* instance adopts as new sources.  Unrestricted
            instances adopt every new vertex automatically and must leave
            this ``None``.  Mirrors :meth:`add_source` for the batched path:
            the parallel driver decides which worker owns each new vertex.
        """
        timer = Timer()
        with timer.measure():
            result = self._apply_batch(list(updates), adopt)
        result.elapsed_seconds = timer.total
        return result

    def process_stream_batched(
        self, updates: Iterable[EdgeUpdate], batch_size: int
    ) -> List[BatchResult]:
        """Deprecated: apply a stream in consecutive batches.

        .. deprecated::
            The chunk-and-sweep loop now lives in one place —
            :meth:`repro.api.BetweennessSession.stream`; this shim forwards
            to the same :meth:`apply_updates` machinery (scores are
            bit-identical) and will be removed in a future release.
        """
        warnings.warn(
            "IncrementalBetweenness.process_stream_batched is deprecated; "
            "drive the stream through repro.api.BetweennessSession.stream "
            "(batch_size lives in BetweennessConfig)",
            DeprecationWarning,
            stacklevel=2,
        )
        return [self.apply_updates(chunk) for chunk in batches(updates, batch_size)]

    def add_source(self, vertex: Vertex) -> None:
        """Adopt ``vertex`` as a source maintained by this (partial) instance."""
        if not self._graph.has_vertex(vertex):
            self._graph.add_vertex(vertex)
        self._register_vertex(vertex)
        self._vertex_scores.setdefault(vertex, 0.0)
        if vertex not in self._store:
            self._store.add_source(vertex)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _edge_key(self, u: Vertex, v: Vertex) -> Edge:
        if self._graph.directed:
            return (u, v)
        return canonical_edge(u, v)

    # -- backend engine: graph mutation mirroring ----------------------- #
    def _graph_add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add an edge to the label graph and, for arrays, its CSR mirror."""
        self._graph.add_edge(u, v)
        if self._kernel is not None:
            self._kernel.add_edge(u, v)

    def _graph_remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove an edge from the label graph and its CSR mirror."""
        self._graph.remove_edge(u, v)
        if self._kernel is not None:
            self._kernel.remove_edge(u, v)

    def _register_vertex(self, vertex: Vertex) -> None:
        """Give a stream-born vertex a store slot (and CSR/score slots)."""
        if self._kernel is not None:
            self._kernel.register_vertex(vertex)
        else:
            self._store.register_vertex(vertex)

    # -- backend engine: record load / repair / save -------------------- #
    def _load_record(self, source: Vertex):
        """Load ``BD[source]`` for repair — flat columns or a dict record."""
        if self._kernel is not None:
            return self._kernel.load(source)
        return self._store.get(source)

    def _repair_record(
        self,
        source: Vertex,
        data,
        update: EdgeUpdate,
        update_index: Optional[int] = None,
    ):
        """Run one (source, update) repair on the loaded record."""
        if self._kernel is not None:
            return self._kernel.repair(data, update, update_index)
        return update_source(
            self._graph,
            data,
            update,
            self._vertex_scores,
            self._edge_scores,
            self._edge_key,
            predecessors=(
                self._predecessors.setdefault(source, {})
                if self._maintain_predecessors
                else None
            ),
        )

    def _save_record(self, source: Vertex, data) -> None:
        """Persist a repaired record back into the store."""
        if self._kernel is not None:
            self._kernel.save(source, data)
        else:
            self._store.put(data)

    def _build_predecessors(self, data) -> Dict[Vertex, set]:
        """Predecessor lists of one source, derived from its distances."""
        lists: Dict[Vertex, set] = {}
        for vertex, level in data.distance.items():
            lists[vertex] = {
                neighbor
                for neighbor in self._graph.in_neighbors(vertex)
                if data.distance.get(neighbor) == level - 1
            }
        return lists

    def _apply(self, update: EdgeUpdate) -> UpdateResult:
        """A single update is a batch of one — the batched sweep is the engine.

        The one-at-a-time and batched paths used to be two separate
        implementations of the same Step-2 sweep (validate, peek, repair,
        fold, finalize); they are deduplicated here, so every invariant —
        Proposition 3.1 skips, vertex births, edge-score key lifecycle —
        lives in exactly one place (:meth:`_apply_batch`).
        """
        return self._apply_batch([update], None).results[0]

    # ------------------------------------------------------------------ #
    # Batched pipeline internals
    # ------------------------------------------------------------------ #
    def _apply_batch(
        self, batch: List[EdgeUpdate], adopt: Optional[Iterable[Vertex]]
    ) -> BatchResult:
        if adopt is not None and not self._restricted:
            raise UpdateError(
                "adopt is only meaningful for restricted instances; "
                "unrestricted instances adopt new vertices automatically"
            )
        if not batch:
            return BatchResult()

        births = validate_batch(self._graph, batch)
        if self._restricted:
            adopted = self._resolve_adoptions(adopt, births)
        else:
            adopted = dict(births)

        results = [UpdateResult(update=update) for update in batch]
        batch_result = BatchResult(updates=list(batch), results=results)

        # Existing sources may start reaching the batch's new vertices, so
        # the store needs slots for all of them before any record is saved.
        for vertex in births:
            self._register_vertex(vertex)

        # A buffered disk store has no live column matrices; materialising
        # them for the duration of the batch (begin/end_column_sweep) lets
        # the kernel's cohort repair run on it too, with one bulk read
        # before the sweep and one write-back after.  Must open after the
        # births above registered their slots — the store cannot grow
        # inside the window.
        sweep_window = False
        if self._kernel is not None:
            begin_sweep = getattr(self._store, "begin_column_sweep", None)
            if begin_sweep is not None:
                sweep_window = bool(begin_sweep())

        # Sweep the existing sources once each (Step 2, loop inverted).
        sources = list(self._store.sources())
        to_load = self._sources_to_load(sources, batch)
        kernel_batch = (
            self._kernel.begin_batch(batch) if self._kernel is not None else False
        )
        self._vector_batch = kernel_batch
        try:
            if kernel_batch and self._kernel.cohort_capable:
                self._sweep_batch_cohort(
                    sources, to_load, adopted, batch, results, batch_result
                )
            else:
                for source in sources:
                    if to_load is not None:
                        first = to_load.get(source)
                        skip = first is None
                    else:
                        first = 0
                        skip = self._peek_all_skip(source, batch)
                    if skip:
                        for result in results:
                            result.record(
                                SourceUpdateStats(case=UpdateCase.SKIP)
                            )
                        batch_result.sources_peek_skipped += 1
                        continue
                    data = self._load_record(source)
                    batch_result.sources_loaded += 1
                    # Updates before the source's first failing peek are
                    # proven skips on an untouched record — recorded
                    # without replaying.
                    for index in range(first):
                        results[index].record(
                            SourceUpdateStats(case=UpdateCase.SKIP)
                        )
                    self._replay_batch_for_source(
                        source, data, first, batch, results
                    )
                    self._save_record(source, data)

                # Sources born inside the batch replay only their suffix.
                for vertex, birth in sorted(
                    adopted.items(), key=lambda item: item[1]
                ):
                    if self._kernel is not None:
                        # The identity record goes into the column store
                        # first and is then repaired in place — same final
                        # state as the dict path's build-then-put, with no
                        # intermediate dict record.
                        self._store.add_source(vertex)
                        data = self._kernel.load(vertex)
                    else:
                        data = SourceData(source=vertex)
                        data.distance[vertex] = 0
                        data.sigma[vertex] = 1
                        data.delta[vertex] = 0.0
                    self._replay_batch_for_source(
                        vertex, data, birth, batch, results
                    )
                    self._save_record(vertex, data)
                    batch_result.sources_loaded += 1
        finally:
            self._vector_batch = False
            if kernel_batch:
                self._kernel.end_batch()
            if sweep_window:
                self._store.end_column_sweep()

        self._finalize_batch(batch, births)
        return batch_result

    def _sweep_batch_cohort(
        self,
        sources: List[Vertex],
        to_load: Optional[Dict[Vertex, int]],
        adopted: Dict[Vertex, int],
        batch: List[EdgeUpdate],
        results: List[UpdateResult],
        batch_result: BatchResult,
    ) -> None:
        """Update-outer sweep: each update repairs its whole cohort at once.

        Source-outer replay (the solo path) runs every (source, update)
        repair on its own tiny region; flipping the loop nest lets the
        kernel accumulate one update across *all* affected sources in a
        single pair-space sweep (:meth:`ArrayKernel.repair_update_cohort`),
        which is where the batched sweep's speedup comes from.  Peek
        semantics, per-update stats and the final record/score state are
        identical to the source-outer loop.
        """
        active: List[Tuple[Vertex, int]] = []
        for source in sources:
            if to_load is not None:
                first = to_load.get(source)
                skip = first is None
            else:
                first = 0
                skip = self._peek_all_skip(source, batch)
            if skip:
                for result in results:
                    result.record(SourceUpdateStats(case=UpdateCase.SKIP))
                batch_result.sources_peek_skipped += 1
                continue
            for index in range(first):
                results[index].record(SourceUpdateStats(case=UpdateCase.SKIP))
            active.append((source, first))
        # Row growth reallocates the store's matrices, so every born source
        # gets its row before any record view is opened.
        for vertex, birth in sorted(adopted.items(), key=lambda item: item[1]):
            self._store.add_source(vertex)
            active.append((vertex, birth))
        loaded = [
            (source, self._kernel.load(source), first)
            for source, first in active
        ]
        batch_result.sources_loaded += len(loaded)
        for index in range(len(batch)):
            cohort = [
                (ordinal, data)
                for ordinal, (_source, data, first) in enumerate(loaded)
                if first <= index
            ]
            if not cohort:
                continue
            stats_list = self._kernel.repair_update_cohort(
                [data for _ordinal, data in cohort],
                [ordinal for ordinal, _data in cohort],
                index,
            )
            for stats in stats_list:
                results[index].record(stats)
        self._kernel.flush_cohort_scores()
        for source, data, _first in loaded:
            self._save_record(source, data)

    def _resolve_adoptions(
        self, adopt: Optional[Iterable[Vertex]], births: Dict[Vertex, int]
    ) -> Dict[Vertex, int]:
        """Map the vertices this restricted instance adopts to birth indices."""
        adopted: Dict[Vertex, int] = {}
        for vertex in adopt or ():
            if vertex in self._store:
                raise UpdateError(f"{vertex!r} is already a source of this instance")
            if vertex in births:
                adopted[vertex] = births[vertex]
            elif (
                self._graph.has_vertex(vertex)
                and not self._graph.neighbors(vertex)
            ):
                # An isolated pre-existing vertex is exactly what a fresh
                # self-only record describes, so adopting it mid-stream and
                # replaying the whole batch matches add_source() + apply().
                adopted[vertex] = 0
            else:
                raise UpdateError(
                    f"cannot adopt {vertex!r}: a batch can only adopt "
                    "vertices it creates or isolated pre-existing vertices "
                    "(a connected vertex needs a real BD record, not the "
                    "self-only seed)"
                )
        return adopted

    def _sources_to_load(
        self, sources: List[Vertex], batch: List[EdgeUpdate]
    ) -> Optional[Dict[Vertex, int]]:
        """Vectorized Proposition 3.1 peek over the whole source set.

        Arrays backend only: one fancy-indexed gather over the stored
        distance columns decides, for every source at once, whether the
        batch can possibly affect it — the same decision the scalar
        per-source peek makes, without a Python loop over sources.  The
        result maps each possibly-affected source to the index of the
        first update whose peek fails; earlier updates are proven skips
        and need not be replayed.  Returns ``None`` when unavailable
        (dicts backend, or a store that cannot serve distance blocks), in
        which case the caller falls back to the scalar peek.
        """
        if self._kernel is None or not sources:
            return None
        return self._kernel.sources_to_load(sources, batch)

    def _peek_all_skip(self, source: Vertex, batch: List[EdgeUpdate]) -> bool:
        """Decide, from stored distances alone, that the batch skips ``source``.

        The check is exact: a skipped update leaves ``BD[source]`` untouched,
        so as long as every prefix of the batch consists of skips, the stored
        (pre-batch) distances are the live distances and Proposition 3.1
        applies to the next update too.  The first update that fails the
        check invalidates the induction, and the caller falls back to loading
        the record and replaying the batch against it.
        """
        for update in batch:
            u, v = update.endpoints
            du, dv = self._store.endpoint_distances(source, u, v)
            if not self._distances_skip(du, dv):
                return False
        return True

    def _distances_skip(self, du: Optional[int], dv: Optional[int]) -> bool:
        """Proposition 3.1 on two stored endpoint distances.

        Undirected: skip iff both endpoints sit on the same level (with
        "unreachable" comparing equal to itself).  Directed (the edge is
        oriented ``u -> v``): skip iff the tail is unreachable, or the head
        is no farther than the tail (``dv <= du`` — the edge can neither
        carry nor have carried a shortest path).  Both forms are exact for
        every update kind: a skipped source's record is provably untouched.
        """
        if self._graph.directed:
            if du is None:
                return True
            return dv is not None and dv <= du
        if du is None and dv is None:
            return True
        return du is not None and dv is not None and du == dv

    def _replay_batch_for_source(
        self,
        source: Vertex,
        data: SourceData,
        start_index: int,
        batch: List[EdgeUpdate],
        results: List[UpdateResult],
    ) -> None:
        """Replay the batch in order against one source's betweenness data.

        The graph is rolled forward through the batch so that each repair
        sees exactly the state the one-at-a-time path would, and rewound
        afterwards so the next source starts from the pre-batch graph.
        Updates before ``start_index`` (the source's birth) mutate the graph
        but are not repaired, matching the serial path where the source did
        not exist yet.

        The rewind restores adjacency *snapshots* rather than applying
        inverse updates: re-adding a removed edge would append it at the
        end of its endpoints' neighbor lists, perturbing iteration order
        for every subsequent source and thereby the floating-point
        summation order of their repairs.  Snapshot restore keeps each
        source's roll starting from the bit-identical pre-batch order —
        the same order the compiled snapshots of the vectorized path see.

        Inside a vectorized batch window the rolling is skipped entirely:
        every repair reads a compiled per-update snapshot taken by
        :meth:`ArrayKernel.begin_batch`, and nothing in the flat repair
        path consults the label graph or the live CSR mirror.
        """
        if self._vector_batch:
            for index, update in enumerate(batch):
                if index < start_index:
                    continue
                stats = self._repair_record(source, data, update, index)
                results[index].record(stats)
            return
        endpoints = {w for update in batch for w in update.endpoints}
        graph_snapshot = self._graph.adjacency_snapshot(endpoints)
        kernel_snapshot = (
            self._kernel.adjacency_snapshot(endpoints)
            if self._kernel is not None
            else None
        )
        try:
            for index, update in enumerate(batch):
                u, v = update.endpoints
                if update.kind is UpdateKind.ADDITION:
                    self._graph_add_edge(u, v)
                else:
                    self._graph_remove_edge(u, v)
                if index < start_index:
                    continue
                stats = self._repair_record(source, data, update)
                results[index].record(stats)
        finally:
            self._graph.restore_adjacency(graph_snapshot)
            if kernel_snapshot is not None:
                self._kernel.restore_adjacency(kernel_snapshot)

    def _finalize_batch(
        self, batch: List[EdgeUpdate], births: Dict[Vertex, int]
    ) -> None:
        """Advance the graph to the post-batch state and fix score keys."""
        for update in batch:
            u, v = update.endpoints
            if update.kind is UpdateKind.ADDITION:
                self._graph_add_edge(u, v)
            else:
                self._graph_remove_edge(u, v)
        for vertex in births:
            self._vertex_scores.setdefault(vertex, 0.0)
        # An edge's score entry exists exactly while the edge does; within a
        # batch only the final state matters (net-zero contributions of an
        # edge added and removed in the same batch disappear with its key).
        for update in batch:
            u, v = update.endpoints
            key = self._edge_key(u, v)
            if self._graph.has_edge(u, v):
                self._edge_scores.setdefault(key, 0.0)
            else:
                self._edge_scores.pop(key, None)

