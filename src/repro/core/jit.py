"""Optional Numba acceleration for the vectorized repair kernel.

The update-sweep repair (:mod:`repro.core.accumulation` and friends) is
expressed almost entirely in whole-array numpy operations, but its single
irreducible inner loop — the ordered scatter-add that lands every
contribution on its accumulator in the scalar visitation order — goes through ``np.add.at``,
which is markedly slower than a compiled loop.  When Numba is installed
(``pip install repro[jit]``) that loop is JIT-compiled; otherwise the pure
numpy implementation is used.  Both execute the *same* additions on the same
operands in the same sequence, so results are bit-identical either way —
the JIT is a speed switch, never a semantics switch.

Control surface:

* auto-detection at import: the JIT is used iff ``numba`` imports cleanly;
* ``REPRO_DISABLE_JIT=1`` in the environment forces the numpy fallback even
  with Numba installed (the CI matrix runs both legs);
* :func:`set_jit_enabled` toggles at runtime (used by the differential
  tests to run one stream through both implementations in one process).
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "DISABLE_ENV",
    "jit_available",
    "jit_enabled",
    "set_jit_enabled",
    "scatter_add",
]

#: Environment variable that disables the JIT even when Numba is present.
DISABLE_ENV = "REPRO_DISABLE_JIT"

try:  # pragma: no cover - exercised only when numba is installed
    import numba as _numba  # type: ignore[import-not-found]

    _HAVE_NUMBA = True
except Exception:  # pragma: no cover - the baked-in environment has no numba
    _numba = None
    _HAVE_NUMBA = False

_enabled = _HAVE_NUMBA and not os.environ.get(DISABLE_ENV)


def jit_available() -> bool:
    """Whether Numba imported successfully (regardless of the enable flag)."""
    return _HAVE_NUMBA


def jit_enabled() -> bool:
    """Whether scatter-adds currently dispatch to the compiled loop."""
    return _enabled


def set_jit_enabled(on: bool) -> bool:
    """Enable/disable the JIT at runtime; returns the *effective* state.

    Enabling is a request, not a guarantee — without Numba the fallback
    stays in force and ``False`` is returned.
    """
    global _enabled
    _enabled = bool(on) and _HAVE_NUMBA
    return _enabled


if _HAVE_NUMBA:  # pragma: no cover - exercised only when numba is installed

    @_numba.njit(cache=True)
    def _scatter_add_jit(acc, idx, vals):  # type: ignore[no-untyped-def]
        for k in range(idx.shape[0]):
            acc[idx[k]] += vals[k]

    def scatter_add(acc: np.ndarray, idx: np.ndarray, vals: np.ndarray) -> None:
        """Ordered ``acc[idx[k]] += vals[k]`` for ``k = 0, 1, ...`` in sequence."""
        if _enabled:
            _scatter_add_jit(acc, idx, vals)
        else:
            np.add.at(acc, idx, vals)

else:

    def scatter_add(acc: np.ndarray, idx: np.ndarray, vals: np.ndarray) -> None:
        """Ordered ``acc[idx[k]] += vals[k]`` for ``k = 0, 1, ...`` in sequence."""
        np.add.at(acc, idx, vals)
