"""Array-native compute kernel: CSR graph + flat slot-indexed BD records.

This module is the compute side of the columnar storage layout: where the
classic (``dicts``) backend of :class:`~repro.core.framework.\
IncrementalBetweenness` keeps ``BD[s]`` as Python dictionaries keyed by
arbitrary vertex labels, the array backend works directly on the three
fixed-width columns the stores persist (int16 distance / int64 sigma /
float64 delta), indexed by dense integer *slots*:

* the **bootstrap** (Step 1) is a vectorized, level-synchronous Brandes:
  per source, BFS frontiers and dependency accumulation are whole-level
  numpy operations over the compiled CSR arrays, with edge-betweenness
  contributions folded into a flat per-edge array via ``np.add.at``;
* the **update sweep** (Step 2) reuses the per-source repair machinery of
  :mod:`repro.core` verbatim, but runs it in slot space: the record is the
  store's own column arrays (zero-copy views for the mmap disk store and
  the RAM array store — no dictionary is ever materialised), the graph is
  the :class:`~repro.graph.csr.CSRGraph` mirror, and the global scores are
  a flat float64 array plus a slot-pair edge dict;
* the **skip test** (Proposition 3.1) is evaluated for a whole batch and
  every source with one fancy-indexed gather over the distance columns.

Bit-identity with the dict backend is by construction, not by accident:
the label graph's insertion-ordered adjacency is mirrored slot for slot by
the CSR structure, every repair runs the *same* control flow over the same
neighbor orders, and the vectorized bootstrap arranges its ``np.add.at``
operands in exactly the order the scalar loops would visit them — so every
floating-point operation happens on the same operands in the same
sequence, and the two backends return byte-for-byte equal scores.
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.algorithms.brandes import BrandesResult, SourceData
from repro.core.result import SourceUpdateStats
from repro.core.source_update import update_source
from repro.core.updates import EdgeUpdate
from repro.exceptions import ConfigurationError, StoreCorruptedError
from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.storage.codec import (
    DELTA_DTYPE,
    DISTANCE_DTYPE,
    MAX_DISTANCE,
    SIGMA_DTYPE,
    decode_record_arrays,
)
from repro.storage.index import VertexIndex
from repro.types import UNREACHABLE, Vertex, canonical_edge

__all__ = [
    "ArrayKernel",
    "FlatSourceData",
    "brandes_betweenness_arrays",
]


def _slot_edge_key(i: int, j: int) -> Tuple[int, int]:
    """Canonical slot-pair key — the slot-space twin of ``canonical_edge``."""
    return (i, j) if i <= j else (j, i)


def _directed_slot_edge_key(i: int, j: int) -> Tuple[int, int]:
    """Oriented slot-pair key for directed graphs (no canonicalisation)."""
    return (i, j)


# --------------------------------------------------------------------------- #
# Flat (slot-indexed) BD records
# --------------------------------------------------------------------------- #
def _indexable(arr: np.ndarray):
    """Fastest scalar-indexable face of a column array.

    A :class:`memoryview` reads and writes native Python scalars at
    dictionary speed (no numpy scalar boxing) and range-checks writes, so
    it is preferred.  Memoryview scalar indexing however requires a
    natively aligned buffer — an mmap-mapped record whose column happens
    to start off-alignment exports a ``'=q'``-style format that raises
    ``NotImplementedError`` on indexing — so the array itself (numpy
    scalar access, bit-identical arithmetic, somewhat slower) is the
    fallback.  Probed once per record load, off the hot path.
    """
    try:
        view = memoryview(arr)
        if len(view):
            view[0]  # probe: unaligned/non-native formats raise here
        return view
    except (NotImplementedError, TypeError, ValueError):
        return arr


class _DistanceColumn:
    """Dict-like view of an int16 distance column (``-1`` = absent).

    Implements exactly the mapping subset the repair machinery uses, so
    the shared repair code runs unmodified on column arrays.
    """

    __slots__ = ("_mv",)

    def __init__(self, arr: np.ndarray) -> None:
        self._mv = _indexable(arr)

    def get(self, slot: int, default=None):
        value = self._mv[slot]
        return default if value == -1 else value

    def __getitem__(self, slot: int) -> int:
        value = self._mv[slot]
        if value == -1:
            raise KeyError(slot)
        return value

    def __setitem__(self, slot: int, value: int) -> None:
        self._mv[slot] = value

    def __contains__(self, slot: int) -> bool:
        return self._mv[slot] != -1

    def pop(self, slot: int, default=None):
        value = self._mv[slot]
        self._mv[slot] = -1
        return default if value == -1 else value


class _ValueColumn:
    """Dict-like view of a sigma/delta column gated by the distance column.

    A slot "has a key" exactly while its distance entry is reachable, which
    reproduces the dict records' invariant that the three dictionaries
    share one key set.
    """

    __slots__ = ("_mv", "_dist_mv", "_zero")

    def __init__(self, arr: np.ndarray, distance: "_DistanceColumn", zero) -> None:
        self._mv = _indexable(arr)
        self._dist_mv = distance._mv
        self._zero = zero

    def get(self, slot: int, default=None):
        if self._dist_mv[slot] == -1:
            return default
        return self._mv[slot]

    def __getitem__(self, slot: int):
        if self._dist_mv[slot] == -1:
            raise KeyError(slot)
        return self._mv[slot]

    def __setitem__(self, slot: int, value) -> None:
        self._mv[slot] = value

    def __contains__(self, slot: int) -> bool:
        return self._dist_mv[slot] != -1

    def pop(self, slot: int, default=None):
        value = self._mv[slot]
        self._mv[slot] = self._zero
        return value


class FlatSourceData:
    """Slot-indexed ``BD[s]`` record over three column arrays.

    Duck-types :class:`~repro.algorithms.brandes.SourceData` for the repair
    machinery: ``source`` is the source *slot* and ``distance`` / ``sigma``
    / ``delta`` are dict-like column views keyed by vertex slot.  When the
    arrays are store views (``in_place``), mutating the record *is*
    persisting it.
    """

    __slots__ = (
        "source",
        "distance",
        "sigma",
        "delta",
        "distance_array",
        "sigma_array",
        "delta_array",
        "in_place",
    )

    def __init__(
        self,
        source_slot: int,
        distance: np.ndarray,
        sigma: np.ndarray,
        delta: np.ndarray,
        in_place: bool,
    ) -> None:
        self.source = source_slot
        self.distance_array = distance
        self.sigma_array = sigma
        self.delta_array = delta
        self.in_place = in_place
        self.distance = _DistanceColumn(distance)
        self.sigma = _ValueColumn(sigma, self.distance, 0)
        self.delta = _ValueColumn(delta, self.distance, 0.0)

    def to_source_data(self, index: VertexIndex) -> SourceData:
        """Decode into a label-keyed :class:`SourceData` (testing/snapshot)."""
        return decode_record_arrays(
            self.distance_array,
            self.sigma_array,
            self.delta_array,
            index.vertex(self.source),
            index,
        )


# --------------------------------------------------------------------------- #
# Slot-space adapters handed to the shared repair machinery
# --------------------------------------------------------------------------- #
class _SlotGraphView:
    """Adjacency view over the CSR mirror (slots in, slots out).

    Exposes exactly what the shared repair machinery consumes: the two
    neighbor directions and the ``directed`` flag the classifier branches
    on.  For undirected mirrors both directions are the same lists.
    """

    __slots__ = ("_csr", "directed")

    def __init__(self, csr: CSRGraph) -> None:
        self._csr = csr
        self.directed = csr.directed

    def out_neighbors(self, slot: int) -> List[int]:
        return self._csr.neighbors(slot)

    def in_neighbors(self, slot: int) -> List[int]:
        return self._csr.in_neighbors(slot)


class _SlotVertexScores:
    """Dict-like slot view over the kernel's flat vertex-score array."""

    __slots__ = ("_kernel",)

    def __init__(self, kernel: "ArrayKernel") -> None:
        self._kernel = kernel

    def get(self, slot: int, default=0.0) -> float:
        return self._kernel._vscore_mv[slot]

    def __getitem__(self, slot: int) -> float:
        return self._kernel._vscore_mv[slot]

    def __setitem__(self, slot: int, value: float) -> None:
        self._kernel._vscore_mv[slot] = value


# --------------------------------------------------------------------------- #
# Label-keyed facades (what the framework exposes as its score mappings)
# --------------------------------------------------------------------------- #
class LabelVertexScores:
    """Label-keyed mapping facade over the kernel's vertex-score array.

    Behaves like the dict backend's ``{vertex: score}`` dictionary for
    every operation the framework (and its callers) perform, while the
    values live in one flat float64 array.
    """

    __slots__ = ("_kernel",)

    def __init__(self, kernel: "ArrayKernel") -> None:
        self._kernel = kernel

    def _slot(self, label: Vertex) -> int:
        try:
            return self._kernel.index.slot(label)
        except Exception:
            raise KeyError(label) from None

    def __getitem__(self, label: Vertex) -> float:
        return float(self._kernel._vscore[self._slot(label)])

    def get(self, label: Vertex, default=None):
        if label not in self._kernel.index:
            return default
        return float(self._kernel._vscore[self._kernel.index.slot(label)])

    def __setitem__(self, label: Vertex, value: float) -> None:
        self._kernel._vscore[self._slot(label)] = value

    def setdefault(self, label: Vertex, default: float = 0.0) -> float:
        return float(self._kernel._vscore[self._slot(label)])

    def __contains__(self, label: Vertex) -> bool:
        return label in self._kernel.index

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._kernel.index.vertices())

    def __len__(self) -> int:
        return len(self._kernel.index)

    def keys(self):
        return self._kernel.index.vertices()

    def items(self):
        vscore = self._kernel._vscore
        for slot, label in enumerate(self._kernel.index.vertices()):
            yield label, float(vscore[slot])

    def copy(self) -> Dict[Vertex, float]:
        return dict(self.items())


class LabelEdgeScores:
    """Label-keyed mapping facade over the kernel's slot-pair edge scores."""

    __slots__ = ("_kernel",)

    def __init__(self, kernel: "ArrayKernel") -> None:
        self._kernel = kernel

    def _slot_key(self, key: Tuple[Vertex, Vertex]) -> Tuple[int, int]:
        u, v = key
        index = self._kernel.index
        try:
            return self._kernel.slot_edge_key(index.slot(u), index.slot(v))
        except Exception:
            raise KeyError(key) from None

    def _label_key(self, slot_key: Tuple[int, int]) -> Tuple[Vertex, Vertex]:
        index = self._kernel.index
        u = index.vertex(slot_key[0])
        v = index.vertex(slot_key[1])
        if self._kernel.directed:
            return (u, v)
        return canonical_edge(u, v)

    def __getitem__(self, key) -> float:
        slot_key = self._slot_key(key)
        try:
            return self._kernel._escore[slot_key]
        except KeyError:
            raise KeyError(key) from None

    def get(self, key, default=None):
        try:
            slot_key = self._slot_key(key)
        except KeyError:
            return default
        return self._kernel._escore.get(slot_key, default)

    def __setitem__(self, key, value: float) -> None:
        self._kernel._escore[self._slot_key(key)] = value

    def setdefault(self, key, default: float = 0.0) -> float:
        return self._kernel._escore.setdefault(self._slot_key(key), default)

    def pop(self, key, default=None):
        try:
            slot_key = self._slot_key(key)
        except KeyError:
            return default
        return self._kernel._escore.pop(slot_key, default)

    def __contains__(self, key) -> bool:
        try:
            slot_key = self._slot_key(key)
        except KeyError:
            return False
        return slot_key in self._kernel._escore

    def __iter__(self) -> Iterator[Tuple[Vertex, Vertex]]:
        for slot_key in self._kernel._escore:
            yield self._label_key(slot_key)

    def __len__(self) -> int:
        return len(self._kernel._escore)

    def keys(self):
        return list(self)

    def items(self):
        for slot_key, value in self._kernel._escore.items():
            yield self._label_key(slot_key), value

    def copy(self) -> Dict[Tuple[Vertex, Vertex], float]:
        return dict(self.items())


# --------------------------------------------------------------------------- #
# Vectorized single-source Brandes (the bootstrap kernel)
# --------------------------------------------------------------------------- #
def _slice_positions(
    indptr: np.ndarray, vertices: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Flattened ``indices`` positions of every vertex's adjacency slice.

    Returns ``(positions, counts)`` where ``positions`` walks the slices in
    ``vertices`` order — i.e. the exact order a scalar loop ``for v in
    vertices: for nbr in adj[v]`` would visit them.
    """
    starts = indptr[vertices]
    counts = indptr[vertices + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), counts
    offsets = np.cumsum(counts) - counts
    positions = np.arange(total, dtype=np.int64) + np.repeat(
        starts - offsets, counts
    )
    return positions, counts


def _bfs_levels(
    indptr: np.ndarray,
    indices: np.ndarray,
    n: int,
    source_slot: int,
    first_of: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, List[np.ndarray]]:
    """Level-synchronous BFS with shortest-path counting.

    Returns ``(distance, sigma, levels)`` where ``levels[l]`` lists the
    slots discovered at distance ``l`` in discovery order — the same order
    the scalar FIFO BFS of ``single_source_brandes`` appends them.

    ``first_of`` is an optional length-``n`` int64 scratch array reused
    across sources (its contents are overwritten before every read).

    The columnar format caps values (int16 distances, int64 path counts —
    the same bounds :func:`repro.storage.codec.check_ranges` enforces when
    dict records are encoded).  Exceeding them here would otherwise *wrap*
    silently inside the fixed-width arrays, so both are guarded: a BFS
    deeper than ``MAX_DISTANCE`` levels raises, and a path count crossing
    ``2**63`` is caught by the wrapped-negative check below (the first
    overflowing int64 addition of two in-range counts always lands
    negative).
    """
    distance = np.full(n, UNREACHABLE, dtype=DISTANCE_DTYPE)
    sigma = np.zeros(n, dtype=SIGMA_DTYPE)
    distance[source_slot] = 0
    sigma[source_slot] = 1
    if first_of is None:
        first_of = np.empty(n, dtype=np.int64)
    levels: List[np.ndarray] = [np.array([source_slot], dtype=np.int64)]
    level = 0
    while True:
        frontier = levels[-1]
        positions, counts = _slice_positions(indptr, frontier)
        if positions.size == 0:
            break
        neighbors = indices[positions]
        undiscovered = distance[neighbors] == UNREACHABLE
        if undiscovered.any():
            if level + 1 > MAX_DISTANCE:
                raise StoreCorruptedError(
                    f"BFS from slot {source_slot} exceeds the int16 distance "
                    f"column (levels beyond {MAX_DISTANCE})"
                )
            fresh = neighbors[undiscovered]
            # First-occurrence order == scalar BFS enqueue order.  Reversed
            # assignment makes the *first* occurrence win, so comparing each
            # element's recorded first position with its own position keeps
            # exactly the first copy of every slot — no sort needed.
            flat = np.arange(fresh.size, dtype=np.int64)
            first_of[fresh[::-1]] = flat[::-1]
            discovered = fresh[first_of[fresh] == flat]
            distance[discovered] = level + 1
        else:
            discovered = np.empty(0, dtype=np.int64)
        next_mask = distance[neighbors] == level + 1
        if next_mask.any():
            np.add.at(
                sigma,
                neighbors[next_mask],
                np.repeat(sigma[frontier], counts)[next_mask],
            )
        if discovered.size == 0:
            break
        levels.append(discovered)
        level += 1
    if sigma.min() < 0:
        raise StoreCorruptedError(
            f"shortest-path count from slot {source_slot} overflowed the "
            "int64 sigma column (the columnar format's limit; the dict "
            "backend with an in-memory store has no such cap)"
        )
    return distance, sigma, levels


def _accumulate_levels(
    indptr: np.ndarray,
    indices: np.ndarray,
    edge_ids: np.ndarray,
    distance: np.ndarray,
    sigma: np.ndarray,
    levels: List[np.ndarray],
    edge_scores: np.ndarray,
) -> np.ndarray:
    """Vectorized dependency accumulation, deepest level first.

    Mirrors the scalar backtracking of ``single_source_brandes`` exactly:
    within a level, vertices are taken in *reversed* discovery order and
    each vertex's predecessors in adjacency order, and ``np.add.at``
    applies the per-(vertex, parent) contributions sequentially in that
    order — so every float lands on its accumulator in the same sequence
    as the dict implementation, keeping the sums bit-identical.

    ``indptr`` / ``indices`` / ``edge_ids`` must be the CSR family the
    scalar loop's ``graph.in_neighbors`` scan corresponds to: the shared
    adjacency for undirected graphs, the predecessor mirror
    (:meth:`~repro.graph.csr.CSRGraph.compiled_in`) for directed ones.
    """
    n = distance.shape[0]
    delta = np.zeros(n, dtype=DELTA_DTYPE)
    sigma_f = sigma.astype(np.float64)
    for level in range(len(levels) - 1, 0, -1):
        members = levels[level][::-1]
        positions, counts = _slice_positions(indptr, members)
        if positions.size == 0:
            continue
        neighbors = indices[positions]
        parent_mask = distance[neighbors] == level - 1
        if not parent_mask.any():
            continue
        parents = neighbors[parent_mask]
        coefficient = (1.0 + delta[members]) / sigma_f[members]
        contributions = sigma_f[parents] * np.repeat(coefficient, counts)[parent_mask]
        np.add.at(delta, parents, contributions)
        np.add.at(edge_scores, edge_ids[positions[parent_mask]], contributions)
    return delta


# --------------------------------------------------------------------------- #
# The kernel
# --------------------------------------------------------------------------- #
class ArrayKernel:
    """Array-native state and operations behind ``backend="arrays"``.

    Owns the CSR mirror of the framework's graph, the flat vertex-score
    array, the slot-pair edge-score dict, and the link to a *column store*
    (:class:`~repro.storage.arrays.ArrayBDStore` or
    :class:`~repro.storage.disk.DiskBDStore`) whose vertex index doubles as
    the label ↔ slot mapping.
    """

    def __init__(self, graph: Graph, store) -> None:
        index = getattr(store, "vertex_index", None)
        if index is None or not hasattr(store, "put_columns"):
            raise ConfigurationError(
                f"store {type(store).__name__} does not speak the column "
                "protocol required by backend='arrays'; use ArrayBDStore "
                "(default) or DiskBDStore"
            )
        self._store = store
        self.index: VertexIndex = index
        self.directed: bool = graph.directed
        self.slot_edge_key = (
            _directed_slot_edge_key if graph.directed else _slot_edge_key
        )
        for vertex in graph.vertices():
            if vertex not in index:
                store.register_vertex(vertex)
        self.csr = CSRGraph.from_graph(graph, index)
        self._vscore = np.zeros(max(len(index), 1), dtype=np.float64)
        self._vscore_mv = memoryview(self._vscore)
        self._escore: Dict[Tuple[int, int], float] = {}
        self._slot_graph = _SlotGraphView(self.csr)
        self._slot_scores = _SlotVertexScores(self)

    # ------------------------------------------------------------------ #
    # Facades
    # ------------------------------------------------------------------ #
    def vertex_score_view(self) -> LabelVertexScores:
        return LabelVertexScores(self)

    def edge_score_view(self) -> LabelEdgeScores:
        return LabelEdgeScores(self)

    # ------------------------------------------------------------------ #
    # Graph mirroring
    # ------------------------------------------------------------------ #
    def register_vertex(self, label: Vertex) -> None:
        """Give ``label`` a slot everywhere: store index, CSR, score array."""
        self._store.register_vertex(label)
        self._sync_capacity()

    def _sync_capacity(self) -> None:
        n = len(self.index)
        self.csr.ensure_vertices(n)
        if len(self._vscore) < n:
            grown = np.zeros(max(n, int(len(self._vscore) * 1.5) + 1), np.float64)
            grown[: len(self._vscore)] = self._vscore
            self._vscore = grown
            self._vscore_mv = memoryview(self._vscore)

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Mirror a label-graph edge addition (registers new endpoints)."""
        for label in (u, v):
            if label not in self.index:
                self.register_vertex(label)
        self.csr.add_edge(self.index.slot(u), self.index.slot(v))

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Mirror a label-graph edge removal."""
        self.csr.remove_edge(self.index.slot(u), self.index.slot(v))

    # ------------------------------------------------------------------ #
    # Records
    # ------------------------------------------------------------------ #
    def load(self, source: Vertex) -> FlatSourceData:
        """Open ``source``'s record for repair — zero-copy where the store allows."""
        in_place = bool(self._store.columns_in_place)
        distance, sigma, delta = self._store.record_columns(source, writable=True)
        return FlatSourceData(
            self.index.slot(source), distance, sigma, delta, in_place
        )

    def save(self, source: Vertex, data: FlatSourceData) -> None:
        """Commit a repaired record (a write-back only when not in place)."""
        if data.in_place:
            self._store.record_written(source)
        else:
            self._store.put_columns(
                source, data.distance_array, data.sigma_array, data.delta_array
            )

    # ------------------------------------------------------------------ #
    # Step 2: per-source repair (shared machinery, slot space)
    # ------------------------------------------------------------------ #
    def repair(self, data: FlatSourceData, update: EdgeUpdate) -> SourceUpdateStats:
        """Run one (source, update) repair on the flat record."""
        slot_update = EdgeUpdate(
            update.kind, self.index.slot(update.u), self.index.slot(update.v)
        )
        return update_source(
            self._slot_graph,
            data,
            slot_update,
            self._slot_scores,
            self._escore,
            self.slot_edge_key,
            predecessors=None,
        )

    # ------------------------------------------------------------------ #
    # Batched Proposition 3.1 peek
    # ------------------------------------------------------------------ #
    def sources_to_load(
        self, sources: Sequence[Vertex], batch: Sequence[EdgeUpdate]
    ) -> Optional[Set[Vertex]]:
        """Sources the batch may affect, from one vectorized distance gather.

        Semantics are exactly those of the scalar per-(source, update) peek
        — undirected: skip iff both endpoint distances are equal (with
        "unreachable" compared as ``-1 == -1``); directed (edge ``u -> v``):
        skip iff the tail is unreachable or the head is no farther than the
        tail — only the evaluation is batched.  Returns ``None`` when the
        store cannot serve a distance block (buffered disk mode),
        signalling the caller to fall back to scalar peeks.
        """
        if not sources or not batch:
            return set()
        endpoint_slots: List[int] = []
        for update in batch:
            endpoint_slots.append(self.index.slot(update.u))
            endpoint_slots.append(self.index.slot(update.v))
        source_slots = [self.index.slot(source) for source in sources]
        block = self._store.peek_distance_block(source_slots, endpoint_slots)
        if block is None:
            return None
        us = block[:, 0::2]
        vs = block[:, 1::2]
        if self.directed:
            affected = (
                (us != UNREACHABLE) & ((vs == UNREACHABLE) | (vs > us))
            ).any(axis=1)
        else:
            affected = (us != vs).any(axis=1)
        return {source for source, hit in zip(sources, affected.tolist()) if hit}

    # ------------------------------------------------------------------ #
    # Step 1: vectorized Brandes bootstrap
    # ------------------------------------------------------------------ #
    def bootstrap(self, sources: Iterable[Vertex]) -> None:
        """Run the modified Brandes over ``sources``, filling store and scores."""
        indptr, indices, _edge_ids, edge_pairs = self.csr.compiled()
        # The forward BFS follows out-links, the dependency accumulation
        # scans in-links; for undirected graphs the in-CSR *is* the out-CSR
        # (same arrays), so this stays bit-identical to the historical path.
        in_indptr, in_indices, in_edge_ids = self.csr.compiled_in()
        n = self.csr.num_vertices
        self._sync_capacity()
        edge_scores = np.zeros(len(edge_pairs), dtype=np.float64)
        vscore = self._vscore
        scratch = np.empty(n, dtype=np.int64)
        for label in sources:
            source_slot = self.index.slot(label)
            distance, sigma, levels = _bfs_levels(
                indptr, indices, n, source_slot, scratch
            )
            delta = _accumulate_levels(
                in_indptr, in_indices, in_edge_ids, distance, sigma, levels,
                edge_scores,
            )
            if len(levels) > 1:
                reached = np.concatenate(levels[1:])
                vscore[reached] += delta[reached]
            self._store.put_columns(label, distance, sigma, delta)
        self._escore = dict(zip(edge_pairs, edge_scores.tolist()))


# --------------------------------------------------------------------------- #
# Standalone vectorized Brandes (no framework, no persistent store)
# --------------------------------------------------------------------------- #
def brandes_betweenness_arrays(
    graph: Graph,
    sources: Optional[Iterable[Vertex]] = None,
    collect_source_data: bool = False,
) -> BrandesResult:
    """Vectorized equivalent of :func:`repro.algorithms.brandes.\
brandes_betweenness` (predecessor-free variant, directed or undirected).

    Returns bit-identical scores to the dict implementation; see the module
    docstring for why.  Directed graphs run the forward sweep over the
    out-CSR and the dependency accumulation over the predecessor mirror,
    with edge scores keyed by the oriented ``(u, v)`` pair.
    ``collect_source_data`` decodes each flat record into a label-keyed
    :class:`SourceData`, which costs the dictionary materialisation the
    kernel otherwise avoids — only ask for it when the records are
    actually needed.
    """
    index = VertexIndex(graph.vertex_list())
    csr = CSRGraph.from_graph(graph, index)
    indptr, indices, _edge_ids, edge_pairs = csr.compiled()
    in_indptr, in_indices, in_edge_ids = csr.compiled_in()
    n = csr.num_vertices
    vscore = np.zeros(n, dtype=np.float64)
    edge_scores = np.zeros(len(edge_pairs), dtype=np.float64)
    source_list = list(sources) if sources is not None else graph.vertex_list()
    all_source_data: Optional[Dict[Vertex, SourceData]] = (
        {} if collect_source_data else None
    )
    scratch = np.empty(n, dtype=np.int64)
    for label in source_list:
        source_slot = index.slot(label)
        distance, sigma, levels = _bfs_levels(
            indptr, indices, n, source_slot, scratch
        )
        delta = _accumulate_levels(
            in_indptr, in_indices, in_edge_ids, distance, sigma, levels,
            edge_scores,
        )
        if len(levels) > 1:
            reached = np.concatenate(levels[1:])
            vscore[reached] += delta[reached]
        if all_source_data is not None:
            all_source_data[label] = decode_record_arrays(
                distance, sigma, delta, label, index
            )
    vertex_scores = {
        label: score
        for label, score in zip(index.vertices(), vscore.tolist())
    }
    if graph.directed:
        edge_score_dict = {
            (index.vertex(i), index.vertex(j)): score
            for (i, j), score in zip(edge_pairs, edge_scores.tolist())
        }
    else:
        edge_score_dict = {
            canonical_edge(index.vertex(i), index.vertex(j)): score
            for (i, j), score in zip(edge_pairs, edge_scores.tolist())
        }
    return BrandesResult(
        vertex_scores=vertex_scores,
        edge_scores=edge_score_dict,
        source_data=all_source_data,
    )
