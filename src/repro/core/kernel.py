"""Array-native compute kernel: CSR graph + flat slot-indexed BD records.

This module is the compute side of the columnar storage layout: where the
classic (``dicts``) backend of :class:`~repro.core.framework.\
IncrementalBetweenness` keeps ``BD[s]`` as Python dictionaries keyed by
arbitrary vertex labels, the array backend works directly on the three
fixed-width columns the stores persist (int16 distance / int64 sigma /
float64 delta), indexed by dense integer *slots*:

* the **bootstrap** (Step 1) is a vectorized, level-synchronous Brandes:
  per source, BFS frontiers and dependency accumulation are whole-level
  numpy operations over the compiled CSR arrays, with edge-betweenness
  contributions folded into a flat per-edge array via ``np.add.at``;
* the **update sweep** (Step 2) reuses the per-source repair machinery of
  :mod:`repro.core` verbatim, but runs it in slot space: the record is the
  store's own column arrays (zero-copy views for the mmap disk store and
  the RAM array store — no dictionary is ever materialised), the graph is
  the :class:`~repro.graph.csr.CSRGraph` mirror, and the global scores are
  a flat float64 array plus a slot-pair edge dict;
* the **skip test** (Proposition 3.1) is evaluated for a whole batch and
  every source with one fancy-indexed gather over the distance columns.

Bit-identity with the dict backend is by construction, not by accident:
the label graph's insertion-ordered adjacency is mirrored slot for slot by
the CSR structure, every repair runs the *same* control flow over the same
neighbor orders, and the vectorized bootstrap arranges its ``np.add.at``
operands in exactly the order the scalar loops would visit them — so every
floating-point operation happens on the same operands in the same
sequence, and the two backends return byte-for-byte equal scores.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.algorithms.brandes import BrandesResult, SourceData
from repro.core.accumulation import (
    CohortScoreStreams,
    accumulate_cohort,
    accumulate_flat,
)
from repro.core.addition import (
    repair_addition_structural_cohort,
    repair_addition_structural_flat,
    repair_same_level_cohort,
    repair_same_level_flat,
)
from repro.core.classification import UpdateCase, classify_flat
from repro.core.flat import FlatBatchState, FlatScratch
from repro.core.removal import (
    repair_removal_same_level_flat,
    repair_removal_structural_cohort,
    repair_removal_structural_flat,
)
from repro.core.repair import FlatRepairPlan
from repro.core.result import SourceUpdateStats
from repro.core.source_update import update_source
from repro.core.updates import EdgeUpdate
from repro.exceptions import ConfigurationError, StoreCorruptedError
from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.storage.codec import (
    DELTA_DTYPE,
    DISTANCE_DTYPE,
    MAX_DISTANCE,
    SIGMA_DTYPE,
    decode_record_arrays,
)
from repro.storage.index import VertexIndex
from repro.types import UNREACHABLE, Vertex, canonical_edge

__all__ = [
    "ArrayKernel",
    "EdgeScoreRegistry",
    "FlatSourceData",
    "brandes_betweenness_arrays",
]

#: Environment variable forcing the scalar (per-vertex) repair path.
VECTOR_ENV = "REPRO_VECTOR_REPAIR"

#: Environment variable forcing solo (per-source) flat repairs — disables
#: the cohort sweep without touching the vectorized path itself.
COHORT_ENV = "REPRO_COHORT_REPAIR"


def _slot_edge_key(i: int, j: int) -> Tuple[int, int]:
    """Canonical slot-pair key — the slot-space twin of ``canonical_edge``."""
    return (i, j) if i <= j else (j, i)


def _directed_slot_edge_key(i: int, j: int) -> Tuple[int, int]:
    """Oriented slot-pair key for directed graphs (no canonicalisation)."""
    return (i, j)


class EdgeScoreRegistry:
    """Slot-pair edge scores as a flat float64 array behind a dict facade.

    The vectorized accumulation folds a whole level's edge contributions
    into one scatter-add, which needs every edge score to live at a stable
    integer id.  The registry assigns each slot pair a *permanent* id on
    first sight (ids survive the edge being removed and re-added, so every
    compiled snapshot of a batch maps its edge ids to the same
    accumulators) and keeps the scores in :attr:`values` with an
    :attr:`active` mask tracking which pairs currently "exist" as dict
    keys.

    The mapping face reproduces plain-dict semantics for the scalar repair
    path and the label facade: ``pop`` deactivates *and zeroes* the slot,
    so a re-added edge starts from the same ``get(key, 0.0)`` baseline the
    dict backend sees.  Iteration runs in ascending id order — a permuted
    key order relative to the dict backend, which only equality / per-key
    comparisons observe (none of the consumers depend on insertion order).
    """

    __slots__ = ("_id_of", "_pairs", "values", "active", "_count")

    def __init__(self) -> None:
        self._id_of: Dict[Tuple[int, int], int] = {}
        self._pairs: List[Tuple[int, int]] = []
        self.values = np.zeros(8, dtype=np.float64)
        self.active = np.zeros(8, dtype=np.bool_)
        self._count = 0

    def _ensure_capacity(self, needed: int) -> None:
        capacity = len(self.values)
        if needed <= capacity:
            return
        grown = max(needed, capacity + (capacity >> 1) + 1)
        values = np.zeros(grown, dtype=np.float64)
        values[:capacity] = self.values
        active = np.zeros(grown, dtype=np.bool_)
        active[:capacity] = self.active
        self.values = values
        self.active = active

    # -- id management (vectorized path) ------------------------------- #
    def ensure_id(self, pair: Tuple[int, int]) -> int:
        """Permanent id of ``pair``, assigning one on first sight."""
        edge_id = self._id_of.get(pair)
        if edge_id is None:
            edge_id = len(self._pairs)
            self._id_of[pair] = edge_id
            self._pairs.append(pair)
            self._ensure_capacity(edge_id + 1)
        return edge_id

    def ensure_ids(self, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Ids of a compiled snapshot's ``edge_pairs``, in snapshot order."""
        out = np.empty(len(pairs), dtype=np.int64)
        for position, pair in enumerate(pairs):
            out[position] = self.ensure_id(pair)
        return out

    def activate_written(self, ids: np.ndarray) -> None:
        """Make every id in ``ids`` an active key before it is scattered to.

        Freshly activated slots start from 0.0 — the ``get(key, 0.0)``
        baseline the scalar accumulation uses for unseen edges.
        """
        inactive = ids[~self.active[ids]]
        if inactive.size:
            fresh = np.unique(inactive)
            self.values[fresh] = 0.0
            self.active[fresh] = True
            self._count += int(fresh.size)

    def reset(self, pairs: Sequence[Tuple[int, int]], scores: np.ndarray) -> None:
        """Replace the whole registry (bootstrap): ``pairs[k]`` gets id ``k``."""
        self._id_of = {pair: edge_id for edge_id, pair in enumerate(pairs)}
        self._pairs = list(pairs)
        count = len(self._pairs)
        capacity = max(count, 8)
        self.values = np.zeros(capacity, dtype=np.float64)
        self.values[:count] = scores
        self.active = np.zeros(capacity, dtype=np.bool_)
        self.active[:count] = True
        self._count = count

    # -- mapping face (scalar path + label facade) ---------------------- #
    def get(self, key: Tuple[int, int], default=None):
        edge_id = self._id_of.get(key)
        if edge_id is None or not self.active[edge_id]:
            return default
        return float(self.values[edge_id])

    def __getitem__(self, key: Tuple[int, int]) -> float:
        edge_id = self._id_of.get(key)
        if edge_id is None or not self.active[edge_id]:
            raise KeyError(key)
        return float(self.values[edge_id])

    def __setitem__(self, key: Tuple[int, int], value: float) -> None:
        edge_id = self.ensure_id(key)
        if not self.active[edge_id]:
            self.active[edge_id] = True
            self._count += 1
        self.values[edge_id] = value

    def setdefault(self, key: Tuple[int, int], default: float = 0.0) -> float:
        edge_id = self.ensure_id(key)
        if not self.active[edge_id]:
            self.active[edge_id] = True
            self._count += 1
            self.values[edge_id] = default
        return float(self.values[edge_id])

    def pop(self, key: Tuple[int, int], default=None):
        edge_id = self._id_of.get(key)
        if edge_id is None or not self.active[edge_id]:
            return default
        value = float(self.values[edge_id])
        self.active[edge_id] = False
        self.values[edge_id] = 0.0
        self._count -= 1
        return value

    def __contains__(self, key: Tuple[int, int]) -> bool:
        edge_id = self._id_of.get(key)
        return edge_id is not None and bool(self.active[edge_id])

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        active = self.active
        for edge_id, pair in enumerate(self._pairs):
            if active[edge_id]:
                yield pair

    def __len__(self) -> int:
        return self._count

    def keys(self) -> List[Tuple[int, int]]:
        return list(self)

    def items(self) -> Iterator[Tuple[Tuple[int, int], float]]:
        active = self.active
        values = self.values
        for edge_id, pair in enumerate(self._pairs):
            if active[edge_id]:
                yield pair, float(values[edge_id])

    def copy(self) -> Dict[Tuple[int, int], float]:
        return dict(self.items())


# --------------------------------------------------------------------------- #
# Flat (slot-indexed) BD records
# --------------------------------------------------------------------------- #
def _indexable(arr: np.ndarray):
    """Fastest scalar-indexable face of a column array.

    A :class:`memoryview` reads and writes native Python scalars at
    dictionary speed (no numpy scalar boxing) and range-checks writes, so
    it is preferred.  Memoryview scalar indexing however requires a
    natively aligned buffer — an mmap-mapped record whose column happens
    to start off-alignment exports a ``'=q'``-style format that raises
    ``NotImplementedError`` on indexing — so the array itself (numpy
    scalar access, bit-identical arithmetic, somewhat slower) is the
    fallback.  Probed once per record load, off the hot path.
    """
    try:
        view = memoryview(arr)
        if len(view):
            view[0]  # probe: unaligned/non-native formats raise here
        return view
    except (NotImplementedError, TypeError, ValueError):
        return arr


class _DistanceColumn:
    """Dict-like view of an int16 distance column (``-1`` = absent).

    Implements exactly the mapping subset the repair machinery uses, so
    the shared repair code runs unmodified on column arrays.
    """

    __slots__ = ("_mv",)

    def __init__(self, arr: np.ndarray) -> None:
        self._mv = _indexable(arr)

    def get(self, slot: int, default=None):
        value = self._mv[slot]
        return default if value == -1 else value

    def __getitem__(self, slot: int) -> int:
        value = self._mv[slot]
        if value == -1:
            raise KeyError(slot)
        return value

    def __setitem__(self, slot: int, value: int) -> None:
        self._mv[slot] = value

    def __contains__(self, slot: int) -> bool:
        return self._mv[slot] != -1

    def pop(self, slot: int, default=None):
        value = self._mv[slot]
        self._mv[slot] = -1
        return default if value == -1 else value


class _ValueColumn:
    """Dict-like view of a sigma/delta column gated by the distance column.

    A slot "has a key" exactly while its distance entry is reachable, which
    reproduces the dict records' invariant that the three dictionaries
    share one key set.
    """

    __slots__ = ("_mv", "_dist_mv", "_zero")

    def __init__(self, arr: np.ndarray, distance: "_DistanceColumn", zero) -> None:
        self._mv = _indexable(arr)
        self._dist_mv = distance._mv
        self._zero = zero

    def get(self, slot: int, default=None):
        if self._dist_mv[slot] == -1:
            return default
        return self._mv[slot]

    def __getitem__(self, slot: int):
        if self._dist_mv[slot] == -1:
            raise KeyError(slot)
        return self._mv[slot]

    def __setitem__(self, slot: int, value) -> None:
        self._mv[slot] = value

    def __contains__(self, slot: int) -> bool:
        return self._dist_mv[slot] != -1

    def pop(self, slot: int, default=None):
        value = self._mv[slot]
        self._mv[slot] = self._zero
        return value


class FlatSourceData:
    """Slot-indexed ``BD[s]`` record over three column arrays.

    Duck-types :class:`~repro.algorithms.brandes.SourceData` for the repair
    machinery: ``source`` is the source *slot* and ``distance`` / ``sigma``
    / ``delta`` are dict-like column views keyed by vertex slot.  When the
    arrays are store views (``in_place``), mutating the record *is*
    persisting it.
    """

    __slots__ = (
        "source",
        "distance",
        "sigma",
        "delta",
        "distance_array",
        "sigma_array",
        "delta_array",
        "in_place",
    )

    def __init__(
        self,
        source_slot: int,
        distance: np.ndarray,
        sigma: np.ndarray,
        delta: np.ndarray,
        in_place: bool,
    ) -> None:
        self.source = source_slot
        self.distance_array = distance
        self.sigma_array = sigma
        self.delta_array = delta
        self.in_place = in_place
        self.distance = _DistanceColumn(distance)
        self.sigma = _ValueColumn(sigma, self.distance, 0)
        self.delta = _ValueColumn(delta, self.distance, 0.0)

    def to_source_data(self, index: VertexIndex) -> SourceData:
        """Decode into a label-keyed :class:`SourceData` (testing/snapshot)."""
        return decode_record_arrays(
            self.distance_array,
            self.sigma_array,
            self.delta_array,
            index.vertex(self.source),
            index,
        )


# --------------------------------------------------------------------------- #
# Slot-space adapters handed to the shared repair machinery
# --------------------------------------------------------------------------- #
class _SlotGraphView:
    """Adjacency view over the CSR mirror (slots in, slots out).

    Exposes exactly what the shared repair machinery consumes: the two
    neighbor directions and the ``directed`` flag the classifier branches
    on.  For undirected mirrors both directions are the same lists.
    """

    __slots__ = ("_csr", "directed")

    def __init__(self, csr: CSRGraph) -> None:
        self._csr = csr
        self.directed = csr.directed

    def out_neighbors(self, slot: int) -> List[int]:
        return self._csr.neighbors(slot)

    def in_neighbors(self, slot: int) -> List[int]:
        return self._csr.in_neighbors(slot)


class _SlotVertexScores:
    """Dict-like slot view over the kernel's flat vertex-score array."""

    __slots__ = ("_kernel",)

    def __init__(self, kernel: "ArrayKernel") -> None:
        self._kernel = kernel

    def get(self, slot: int, default=0.0) -> float:
        return self._kernel._vscore_mv[slot]

    def __getitem__(self, slot: int) -> float:
        return self._kernel._vscore_mv[slot]

    def __setitem__(self, slot: int, value: float) -> None:
        self._kernel._vscore_mv[slot] = value


# --------------------------------------------------------------------------- #
# Label-keyed facades (what the framework exposes as its score mappings)
# --------------------------------------------------------------------------- #
class LabelVertexScores:
    """Label-keyed mapping facade over the kernel's vertex-score array.

    Behaves like the dict backend's ``{vertex: score}`` dictionary for
    every operation the framework (and its callers) perform, while the
    values live in one flat float64 array.
    """

    __slots__ = ("_kernel",)

    def __init__(self, kernel: "ArrayKernel") -> None:
        self._kernel = kernel

    def _slot(self, label: Vertex) -> int:
        try:
            return self._kernel.index.slot(label)
        except Exception:
            raise KeyError(label) from None

    def __getitem__(self, label: Vertex) -> float:
        return float(self._kernel._vscore[self._slot(label)])

    def get(self, label: Vertex, default=None):
        if label not in self._kernel.index:
            return default
        return float(self._kernel._vscore[self._kernel.index.slot(label)])

    def __setitem__(self, label: Vertex, value: float) -> None:
        self._kernel._vscore[self._slot(label)] = value

    def setdefault(self, label: Vertex, default: float = 0.0) -> float:
        return float(self._kernel._vscore[self._slot(label)])

    def __contains__(self, label: Vertex) -> bool:
        return label in self._kernel.index

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._kernel.index.vertices())

    def __len__(self) -> int:
        return len(self._kernel.index)

    def keys(self):
        return self._kernel.index.vertices()

    def items(self):
        vscore = self._kernel._vscore
        for slot, label in enumerate(self._kernel.index.vertices()):
            yield label, float(vscore[slot])

    def copy(self) -> Dict[Vertex, float]:
        return dict(self.items())


class LabelEdgeScores:
    """Label-keyed mapping facade over the kernel's slot-pair edge scores."""

    __slots__ = ("_kernel",)

    def __init__(self, kernel: "ArrayKernel") -> None:
        self._kernel = kernel

    def _slot_key(self, key: Tuple[Vertex, Vertex]) -> Tuple[int, int]:
        u, v = key
        index = self._kernel.index
        try:
            return self._kernel.slot_edge_key(index.slot(u), index.slot(v))
        except Exception:
            raise KeyError(key) from None

    def _label_key(self, slot_key: Tuple[int, int]) -> Tuple[Vertex, Vertex]:
        index = self._kernel.index
        u = index.vertex(slot_key[0])
        v = index.vertex(slot_key[1])
        if self._kernel.directed:
            return (u, v)
        return canonical_edge(u, v)

    def __getitem__(self, key) -> float:
        slot_key = self._slot_key(key)
        try:
            return self._kernel._escore[slot_key]
        except KeyError:
            raise KeyError(key) from None

    def get(self, key, default=None):
        try:
            slot_key = self._slot_key(key)
        except KeyError:
            return default
        return self._kernel._escore.get(slot_key, default)

    def __setitem__(self, key, value: float) -> None:
        self._kernel._escore[self._slot_key(key)] = value

    def setdefault(self, key, default: float = 0.0) -> float:
        return self._kernel._escore.setdefault(self._slot_key(key), default)

    def pop(self, key, default=None):
        try:
            slot_key = self._slot_key(key)
        except KeyError:
            return default
        return self._kernel._escore.pop(slot_key, default)

    def __contains__(self, key) -> bool:
        try:
            slot_key = self._slot_key(key)
        except KeyError:
            return False
        return slot_key in self._kernel._escore

    def __iter__(self) -> Iterator[Tuple[Vertex, Vertex]]:
        for slot_key in self._kernel._escore:
            yield self._label_key(slot_key)

    def __len__(self) -> int:
        return len(self._kernel._escore)

    def keys(self):
        return list(self)

    def items(self):
        for slot_key, value in self._kernel._escore.items():
            yield self._label_key(slot_key), value

    def copy(self) -> Dict[Tuple[Vertex, Vertex], float]:
        return dict(self.items())


# --------------------------------------------------------------------------- #
# Vectorized single-source Brandes (the bootstrap kernel)
# --------------------------------------------------------------------------- #
def _slice_positions(
    indptr: np.ndarray, vertices: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Flattened ``indices`` positions of every vertex's adjacency slice.

    Returns ``(positions, counts)`` where ``positions`` walks the slices in
    ``vertices`` order — i.e. the exact order a scalar loop ``for v in
    vertices: for nbr in adj[v]`` would visit them.
    """
    starts = indptr[vertices]
    counts = indptr[vertices + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), counts
    offsets = np.cumsum(counts) - counts
    positions = np.arange(total, dtype=np.int64) + np.repeat(
        starts - offsets, counts
    )
    return positions, counts


def _bfs_levels(
    indptr: np.ndarray,
    indices: np.ndarray,
    n: int,
    source_slot: int,
    first_of: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, List[np.ndarray]]:
    """Level-synchronous BFS with shortest-path counting.

    Returns ``(distance, sigma, levels)`` where ``levels[l]`` lists the
    slots discovered at distance ``l`` in discovery order — the same order
    the scalar FIFO BFS of ``single_source_brandes`` appends them.

    ``first_of`` is an optional length-``n`` int64 scratch array reused
    across sources (its contents are overwritten before every read).

    The columnar format caps values (int16 distances, int64 path counts —
    the same bounds :func:`repro.storage.codec.check_ranges` enforces when
    dict records are encoded).  Exceeding them here would otherwise *wrap*
    silently inside the fixed-width arrays, so both are guarded: a BFS
    deeper than ``MAX_DISTANCE`` levels raises, and a path count crossing
    ``2**63`` is caught by the wrapped-negative check below (the first
    overflowing int64 addition of two in-range counts always lands
    negative).
    """
    distance = np.full(n, UNREACHABLE, dtype=DISTANCE_DTYPE)
    sigma = np.zeros(n, dtype=SIGMA_DTYPE)
    distance[source_slot] = 0
    sigma[source_slot] = 1
    if first_of is None:
        first_of = np.empty(n, dtype=np.int64)
    levels: List[np.ndarray] = [np.array([source_slot], dtype=np.int64)]
    level = 0
    while True:
        frontier = levels[-1]
        positions, counts = _slice_positions(indptr, frontier)
        if positions.size == 0:
            break
        neighbors = indices[positions]
        undiscovered = distance[neighbors] == UNREACHABLE
        if undiscovered.any():
            if level + 1 > MAX_DISTANCE:
                raise StoreCorruptedError(
                    f"BFS from slot {source_slot} exceeds the int16 distance "
                    f"column (levels beyond {MAX_DISTANCE})"
                )
            fresh = neighbors[undiscovered]
            # First-occurrence order == scalar BFS enqueue order.  Reversed
            # assignment makes the *first* occurrence win, so comparing each
            # element's recorded first position with its own position keeps
            # exactly the first copy of every slot — no sort needed.
            flat = np.arange(fresh.size, dtype=np.int64)
            first_of[fresh[::-1]] = flat[::-1]
            discovered = fresh[first_of[fresh] == flat]
            distance[discovered] = level + 1
        else:
            discovered = np.empty(0, dtype=np.int64)
        next_mask = distance[neighbors] == level + 1
        if next_mask.any():
            np.add.at(
                sigma,
                neighbors[next_mask],
                np.repeat(sigma[frontier], counts)[next_mask],
            )
        if discovered.size == 0:
            break
        levels.append(discovered)
        level += 1
    if sigma.min() < 0:
        raise StoreCorruptedError(
            f"shortest-path count from slot {source_slot} overflowed the "
            "int64 sigma column (the columnar format's limit; the dict "
            "backend with an in-memory store has no such cap)"
        )
    return distance, sigma, levels


def _accumulate_levels(
    indptr: np.ndarray,
    indices: np.ndarray,
    edge_ids: np.ndarray,
    distance: np.ndarray,
    sigma: np.ndarray,
    levels: List[np.ndarray],
    edge_scores: np.ndarray,
) -> np.ndarray:
    """Vectorized dependency accumulation, deepest level first.

    Mirrors the scalar backtracking of ``single_source_brandes`` exactly:
    within a level, vertices are taken in *reversed* discovery order and
    each vertex's predecessors in adjacency order, and ``np.add.at``
    applies the per-(vertex, parent) contributions sequentially in that
    order — so every float lands on its accumulator in the same sequence
    as the dict implementation, keeping the sums bit-identical.

    ``indptr`` / ``indices`` / ``edge_ids`` must be the CSR family the
    scalar loop's ``graph.in_neighbors`` scan corresponds to: the shared
    adjacency for undirected graphs, the predecessor mirror
    (:meth:`~repro.graph.csr.CSRGraph.compiled_in`) for directed ones.
    """
    n = distance.shape[0]
    delta = np.zeros(n, dtype=DELTA_DTYPE)
    sigma_f = sigma.astype(np.float64)
    for level in range(len(levels) - 1, 0, -1):
        members = levels[level][::-1]
        positions, counts = _slice_positions(indptr, members)
        if positions.size == 0:
            continue
        neighbors = indices[positions]
        parent_mask = distance[neighbors] == level - 1
        if not parent_mask.any():
            continue
        parents = neighbors[parent_mask]
        coefficient = (1.0 + delta[members]) / sigma_f[members]
        contributions = sigma_f[parents] * np.repeat(coefficient, counts)[parent_mask]
        np.add.at(delta, parents, contributions)
        np.add.at(edge_scores, edge_ids[positions[parent_mask]], contributions)
    return delta


# --------------------------------------------------------------------------- #
# The kernel
# --------------------------------------------------------------------------- #
class ArrayKernel:
    """Array-native state and operations behind ``backend="arrays"``.

    Owns the CSR mirror of the framework's graph, the flat vertex-score
    array, the slot-pair edge-score dict, and the link to a *column store*
    (:class:`~repro.storage.arrays.ArrayBDStore` or
    :class:`~repro.storage.disk.DiskBDStore`) whose vertex index doubles as
    the label ↔ slot mapping.
    """

    def __init__(self, graph: Graph, store) -> None:
        index = getattr(store, "vertex_index", None)
        if index is None or not hasattr(store, "put_columns"):
            raise ConfigurationError(
                f"store {type(store).__name__} does not speak the column "
                "protocol required by backend='arrays'; use ArrayBDStore "
                "(default) or DiskBDStore"
            )
        self._store = store
        self.index: VertexIndex = index
        self.directed: bool = graph.directed
        self.slot_edge_key = (
            _directed_slot_edge_key if graph.directed else _slot_edge_key
        )
        for vertex in graph.vertices():
            if vertex not in index:
                store.register_vertex(vertex)
        self.csr = CSRGraph.from_graph(graph, index)
        self._vscore = np.zeros(max(len(index), 1), dtype=np.float64)
        self._vscore_mv = memoryview(self._vscore)
        self._escore = EdgeScoreRegistry()
        self._slot_graph = _SlotGraphView(self.csr)
        self._slot_scores = _SlotVertexScores(self)
        self._vector_enabled = os.environ.get(VECTOR_ENV, "1") != "0"
        self._batch_states: Optional[List[FlatBatchState]] = None
        self._scratch: Optional[FlatScratch] = None
        self._cohort_streams: Optional[CohortScoreStreams] = None
        #: When set to a dict, the flat repair path accumulates per-phase
        #: wall-clock seconds into the keys "classify" / "repair" /
        #: "accumulate" (benchmark instrumentation, off by default).
        self.phase_timings: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------ #
    # Facades
    # ------------------------------------------------------------------ #
    def vertex_score_view(self) -> LabelVertexScores:
        return LabelVertexScores(self)

    def edge_score_view(self) -> LabelEdgeScores:
        return LabelEdgeScores(self)

    # ------------------------------------------------------------------ #
    # Graph mirroring
    # ------------------------------------------------------------------ #
    def register_vertex(self, label: Vertex) -> None:
        """Give ``label`` a slot everywhere: store index, CSR, score array."""
        self._store.register_vertex(label)
        self._sync_capacity()

    def _sync_capacity(self) -> None:
        n = len(self.index)
        self.csr.ensure_vertices(n)
        if len(self._vscore) < n:
            grown = np.zeros(max(n, int(len(self._vscore) * 1.5) + 1), np.float64)
            grown[: len(self._vscore)] = self._vscore
            self._vscore = grown
            self._vscore_mv = memoryview(self._vscore)

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Mirror a label-graph edge addition (registers new endpoints)."""
        for label in (u, v):
            if label not in self.index:
                self.register_vertex(label)
        self.csr.add_edge(self.index.slot(u), self.index.slot(v))

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Mirror a label-graph edge removal."""
        self.csr.remove_edge(self.index.slot(u), self.index.slot(v))

    def adjacency_snapshot(self, labels: Iterable[Vertex]) -> tuple:
        """Capture the CSR rows of ``labels`` for an order-exact rewind.

        Labels without a slot yet (stream births rolled in later) are
        remembered and their rows cleared on restore — slots are permanent,
        so clearing is exactly the freshly registered state.
        """
        slots: List[int] = []
        unregistered: List[Vertex] = []
        for label in labels:
            if label in self.index:
                slots.append(self.index.slot(label))
            else:
                unregistered.append(label)
        return self.csr.adjacency_snapshot(slots), unregistered

    def restore_adjacency(self, snapshot: tuple) -> None:
        """Reinstate CSR rows captured by :meth:`adjacency_snapshot`."""
        (rows, num_edges), unregistered = snapshot
        for label in unregistered:
            if label in self.index:
                rows[self.index.slot(label)] = None
        self.csr.restore_adjacency((rows, num_edges))

    # ------------------------------------------------------------------ #
    # Records
    # ------------------------------------------------------------------ #
    def load(self, source: Vertex) -> FlatSourceData:
        """Open ``source``'s record for repair — zero-copy where the store allows."""
        in_place = bool(self._store.columns_in_place)
        distance, sigma, delta = self._store.record_columns(source, writable=True)
        return FlatSourceData(
            self.index.slot(source), distance, sigma, delta, in_place
        )

    def save(self, source: Vertex, data: FlatSourceData) -> None:
        """Commit a repaired record (a write-back only when not in place)."""
        if data.in_place:
            self._store.record_written(source)
        else:
            self._store.put_columns(
                source, data.distance_array, data.sigma_array, data.delta_array
            )

    # ------------------------------------------------------------------ #
    # Step 2: per-source repair (vectorized by default, scalar fallback)
    # ------------------------------------------------------------------ #
    def begin_batch(self, batch: Sequence[EdgeUpdate]) -> bool:
        """Compile per-update graph snapshots for a vectorized batch sweep.

        Rolls a clone of the CSR mirror forward through the batch, stashing
        the compiled out-/in-CSR families after every update — the graph
        state each scalar repair of that update would see.  Stashing
        references is safe because a recompile *replaces* the arrays rather
        than mutating them.  Returns False (and compiles nothing) when the
        vectorized path is disabled via ``REPRO_VECTOR_REPAIR=0``; the
        caller then rolls the live graph exactly as before.
        """
        if not self._vector_enabled or not batch:
            return False
        self._sync_capacity()
        n = len(self.index)
        if self._scratch is None or self._scratch.n < n:
            self._scratch = FlatScratch(n)
        work = self.csr.clone()
        work.ensure_vertices(n)
        states: List[FlatBatchState] = []
        for update in batch:
            us = self.index.slot(update.u)
            vs = self.index.slot(update.v)
            if update.is_addition:
                work.add_edge(us, vs)
            else:
                work.remove_edge(us, vs)
            indptr, indices, edge_ids, edge_pairs = work.compiled()
            in_indptr, in_indices, in_edge_ids = work.compiled_in()
            reg_of_edge = self._escore.ensure_ids(edge_pairs)
            states.append(
                FlatBatchState(
                    n,
                    self.directed,
                    indptr,
                    indices,
                    edge_ids,
                    in_indptr,
                    in_indices,
                    in_edge_ids,
                    reg_of_edge,
                    us,
                    vs,
                    update.is_addition,
                )
            )
        self._batch_states = states
        return True

    def end_batch(self) -> None:
        """Drop the compiled batch snapshots (the batch sweep is over)."""
        self._batch_states = None
        self._cohort_streams = None

    def repair(
        self,
        data: FlatSourceData,
        update: EdgeUpdate,
        update_index: Optional[int] = None,
    ) -> SourceUpdateStats:
        """Run one (source, update) repair on the flat record.

        Inside a :meth:`begin_batch` window, ``update_index`` selects the
        compiled snapshot of that update and the repair runs vectorized in
        slot space; otherwise the shared scalar machinery runs over the
        live CSR mirror (which must already reflect the update, as always).
        """
        if self._batch_states is not None and update_index is not None:
            return self._repair_flat(data, self._batch_states[update_index])
        slot_update = EdgeUpdate(
            update.kind, self.index.slot(update.u), self.index.slot(update.v)
        )
        return update_source(
            self._slot_graph,
            data,
            slot_update,
            self._slot_scores,
            self._escore,
            self.slot_edge_key,
            predecessors=None,
        )

    def _repair_flat(
        self, data: FlatSourceData, state: FlatBatchState
    ) -> SourceUpdateStats:
        """Vectorized (source, update) repair over the compiled snapshot."""
        timings = self.phase_timings
        if timings is not None:
            tick = perf_counter()
        n = state.n
        distance = data.distance_array[:n]
        sigma = data.sigma_array[:n]
        delta = data.delta_array[:n]

        case, high, low = classify_flat(state, distance)
        if timings is not None:
            now = perf_counter()
            timings["classify"] = timings.get("classify", 0.0) + (now - tick)
            tick = now
        if case is UpdateCase.SKIP:
            return SourceUpdateStats(case=case)

        scratch = self._scratch
        plan: FlatRepairPlan
        exclude_new_edge = False
        removed_reg_id = -1
        if case is UpdateCase.ADD_NO_STRUCTURE:
            plan = repair_same_level_flat(
                state, distance, sigma, high, low, 1, scratch
            )
            exclude_new_edge = True
        elif case is UpdateCase.ADD_STRUCTURAL:
            plan = repair_addition_structural_flat(
                state, distance, sigma, high, low, scratch
            )
            exclude_new_edge = True
        elif case is UpdateCase.REMOVE_NO_STRUCTURE:
            plan = repair_removal_same_level_flat(
                state, distance, sigma, delta, high, low, scratch
            )
            removed_reg_id = self._escore.ensure_id(self.slot_edge_key(high, low))
        else:  # UpdateCase.REMOVE_STRUCTURAL
            plan = repair_removal_structural_flat(
                state, distance, sigma, delta, high, low, scratch
            )
            removed_reg_id = self._escore.ensure_id(self.slot_edge_key(high, low))
        if timings is not None:
            now = perf_counter()
            timings["repair"] = timings.get("repair", 0.0) + (now - tick)
            tick = now

        new_delta, touched = accumulate_flat(
            state,
            data.source,
            distance,
            sigma,
            delta,
            plan,
            self._vscore,
            self._escore,
            scratch,
            exclude_new_edge,
            removed_reg_id,
        )
        if timings is not None:
            now = perf_counter()
            timings["accumulate"] = timings.get("accumulate", 0.0) + (now - tick)

        work_sigma = plan.work_sigma
        disconnected = plan.disconnected
        if disconnected.size:
            work_sigma[disconnected] = 0
            new_delta[disconnected] = 0.0
        if int(work_sigma.min()) < 0:
            raise StoreCorruptedError(
                f"shortest-path count from slot {data.source} overflowed the "
                "int64 sigma column during an incremental repair"
            )
        distance[:] = plan.work_distance
        sigma[:] = work_sigma
        delta[:] = new_delta
        return SourceUpdateStats(
            case=case,
            affected_vertices=plan.affected_count,
            touched_vertices=touched,
            disconnected_vertices=int(disconnected.size),
        )

    # ------------------------------------------------------------------ #
    # Cohort repair: one update, every affected source at once
    # ------------------------------------------------------------------ #
    #: Upper bound on (cohort size × n) pairs swept at once; larger
    #: cohorts run in source-ordered slabs, which keeps the deferred score
    #: streams' source-major application order.
    COHORT_PAIR_BUDGET = 8_000_000

    @property
    def cohort_capable(self) -> bool:
        """True when repairs can run cohort-wide over the store's matrices."""
        return (
            self._batch_states is not None
            and bool(self._store.columns_in_place)
            and hasattr(self._store, "column_matrices")
            and os.environ.get(COHORT_ENV, "1") != "0"
        )

    def repair_update_cohort(
        self,
        records: Sequence[FlatSourceData],
        ordinals: Sequence[int],
        update_index: int,
    ) -> List[SourceUpdateStats]:
        """Repair one update for a whole cohort of loaded records at once.

        Classification runs per source exactly as in :meth:`_repair_flat`;
        the repair and accumulation phases — the batched sweep's hot path —
        run over the entire cohort in (source, vertex) pair space (the
        ``*_cohort`` routines and :func:`accumulate_cohort`).  ``ordinals``
        are the records' positions in the batch sweep's source order:
        shared-score writes are deferred into a batch-wide stream keyed on
        them, and :meth:`flush_cohort_scores` replays the solo source-outer
        float order once the whole batch has swept.
        """
        state = self._batch_states[update_index]
        timings = self.phase_timings
        if timings is not None:
            tick = perf_counter()
        n = state.n
        if self._cohort_streams is None:
            self._cohort_streams = CohortScoreStreams()
        stats: List[Optional[SourceUpdateStats]] = [None] * len(records)

        job_meta: List[Tuple[int, FlatSourceData, UpdateCase, int, int]] = []
        for pos, data in enumerate(records):
            case, high, low = classify_flat(state, data.distance_array[:n])
            if case is UpdateCase.SKIP:
                stats[pos] = SourceUpdateStats(case=case)
            else:
                job_meta.append((pos, data, case, high, low))
        if timings is not None:
            now = perf_counter()
            timings["classify"] = timings.get("classify", 0.0) + (now - tick)

        slab = max(1, self.COHORT_PAIR_BUDGET // max(n, 1))
        for start in range(0, len(job_meta), slab):
            self._repair_cohort_slab(
                state, job_meta[start : start + slab], ordinals, stats
            )
        return stats

    def _repair_cohort_slab(
        self,
        state: FlatBatchState,
        metas: List[Tuple[int, FlatSourceData, UpdateCase, int, int]],
        ordinals: Sequence[int],
        stats: List[Optional[SourceUpdateStats]],
    ) -> None:
        """Repair and accumulate one source-ordered slab of cohort jobs.

        Every repair class runs as one cohort walk over (job, slot) pairs —
        same-level jobs via :func:`repair_same_level_cohort`, structural
        ones via :func:`repair_addition_structural_cohort` /
        :func:`repair_removal_structural_cohort` — mutating the slab's
        stacked work columns while pristine ``old_*`` gathers keep the
        pre-update rows.  All classes feed merged ``(k, slot, level)`` plan
        chunks into one :func:`accumulate_cohort` sweep, after which the
        whole slab's records are written back with three fancy-indexed
        assignments.
        """
        timings = self.phase_timings
        if timings is not None:
            tick = perf_counter()
        n = state.n
        m = len(metas)
        dist2d, sig2d, delta2d = self._store.column_matrices()
        rows = np.array(
            [self._store.row_of_source_slot(meta[1].source) for meta in metas],
            dtype=np.int64,
        )
        sources = np.array([meta[1].source for meta in metas], dtype=np.int64)
        highs = np.array([meta[3] for meta in metas], dtype=np.int64)
        lows = np.array([meta[4] for meta in metas], dtype=np.int64)
        ordinals_arr = np.array(
            [int(ordinals[meta[0]]) for meta in metas], dtype=np.int64
        )
        pair_first = np.empty(m * n, dtype=np.int64)
        pair_pos = np.empty(m * n, dtype=np.int64)

        # Fancy row gathers = fresh work copies of every job's columns; the
        # ``old_*`` stacks stay pristine for the accumulate sweep to read.
        work_distance = dist2d[rows, :n]
        work_sigma = sig2d[rows, :n]
        new_delta = delta2d[rows, :n]
        old_distance = work_distance.copy()
        old_sigma = work_sigma.copy()
        old_delta = new_delta.copy()
        affected_rows = np.zeros((m, n), dtype=np.bool_)

        tri_k: List[np.ndarray] = []
        tri_s: List[np.ndarray] = []
        tri_l: List[np.ndarray] = []
        rem_k: List[int] = []
        rem_red: List[float] = []
        rem_rid: List[int] = []
        same_add: List[int] = []
        add_struct: List[int] = []
        same_rem: List[int] = []
        rem_struct: List[int] = []
        for k, (_pos, _data, case, _high, _low) in enumerate(metas):
            if case is UpdateCase.ADD_NO_STRUCTURE:
                same_add.append(k)
            elif case is UpdateCase.ADD_STRUCTURAL:
                add_struct.append(k)
            elif case is UpdateCase.REMOVE_NO_STRUCTURE:
                same_rem.append(k)
            else:  # UpdateCase.REMOVE_STRUCTURAL
                rem_struct.append(k)

        # Every removal seeds the sweep with the removed edge's pre-update
        # dependency — python-scalar operand order of
        # removed_edge_dependency_flat (int division is correctly rounded
        # past 2**53).
        for k in same_rem + rem_struct:
            high = int(highs[k])
            low = int(lows[k])
            rem_k.append(k)
            rem_red.append(
                int(old_sigma[k, high]) / int(old_sigma[k, low])
                * (1.0 + float(old_delta[k, low]))
            )
            rem_rid.append(
                self._escore.ensure_id(self.slot_edge_key(high, low))
            )

        disc_pid = np.empty(0, dtype=np.int64)
        if same_add:
            ks = np.array(same_add, dtype=np.int64)
            ck, cs, cl = repair_same_level_cohort(
                state, ks, highs[ks], lows[ks], 1,
                old_distance, old_sigma, work_sigma, affected_rows,
                pair_first,
            )
            tri_k.append(ck)
            tri_s.append(cs)
            tri_l.append(cl)
        if same_rem:
            ks = np.array(same_rem, dtype=np.int64)
            ck, cs, cl = repair_same_level_cohort(
                state, ks, highs[ks], lows[ks], -1,
                old_distance, old_sigma, work_sigma, affected_rows,
                pair_first,
            )
            tri_k.append(ck)
            tri_s.append(cs)
            tri_l.append(cl)
        if add_struct:
            ks = np.array(add_struct, dtype=np.int64)
            ck, cs, cl = repair_addition_structural_cohort(
                state, ks, highs[ks], lows[ks],
                old_distance, work_distance, work_sigma, affected_rows,
                pair_first,
            )
            tri_k.append(ck)
            tri_s.append(cs)
            tri_l.append(cl)
        if rem_struct:
            ks = np.array(rem_struct, dtype=np.int64)
            ck, cs, cl, disc_pid = repair_removal_structural_cohort(
                state, ks, highs[ks], lows[ks],
                old_distance, work_distance, work_sigma, affected_rows,
                pair_first, pair_pos,
            )
            tri_k.append(ck)
            tri_s.append(cs)
            tri_l.append(cl)
        affected_counts = affected_rows.sum(axis=1)
        disc_k = disc_pid // n
        disc_s = disc_pid - disc_k * n
        disc_sizes = np.bincount(disc_k, minlength=m)
        if timings is not None:
            now = perf_counter()
            timings["repair"] = timings.get("repair", 0.0) + (now - tick)
            tick = now

        empty = np.empty(0, dtype=np.int64)
        touched = accumulate_cohort(
            state,
            work_distance,
            work_sigma,
            old_distance,
            old_sigma,
            new_delta,
            old_delta,
            None if state.directed else affected_rows,
            sources,
            highs,
            lows,
            ordinals_arr,
            np.concatenate(tri_k) if tri_k else empty,
            np.concatenate(tri_s) if tri_s else empty,
            np.concatenate(tri_l) if tri_l else empty,
            np.array(rem_k, dtype=np.int64),
            np.array(rem_red, dtype=np.float64),
            np.array(rem_rid, dtype=np.int64),
            disc_k,
            disc_s,
            self._cohort_streams,
            state.is_addition,
            pair_first,
        )
        if disc_pid.size:
            work_sigma.reshape(-1)[disc_pid] = 0
            new_delta.reshape(-1)[disc_pid] = 0.0
        if int(work_sigma.min()) < 0:
            bad = int(np.argmin(work_sigma.min(axis=1)))
            raise StoreCorruptedError(
                f"shortest-path count from slot {int(sources[bad])} overflowed "
                "the int64 sigma column during an incremental repair"
            )
        dist2d[rows, :n] = work_distance
        sig2d[rows, :n] = work_sigma
        delta2d[rows, :n] = new_delta
        for k, (pos, _data, case, _high, _low) in enumerate(metas):
            stats[pos] = SourceUpdateStats(
                case=case,
                affected_vertices=int(affected_counts[k]),
                touched_vertices=int(touched[k]),
                disconnected_vertices=int(disc_sizes[k]),
            )
        if timings is not None:
            now = perf_counter()
            timings["accumulate"] = timings.get("accumulate", 0.0) + (now - tick)

    def flush_cohort_scores(self) -> None:
        """Apply the batch's deferred shared-score streams (sweep is over)."""
        timings = self.phase_timings
        if timings is not None:
            tick = perf_counter()
        if self._cohort_streams is not None:
            self._cohort_streams.flush(self._vscore, self._escore)
        if timings is not None:
            now = perf_counter()
            timings["accumulate"] = timings.get("accumulate", 0.0) + (now - tick)

    # ------------------------------------------------------------------ #
    # Batched Proposition 3.1 peek
    # ------------------------------------------------------------------ #
    def sources_to_load(
        self, sources: Sequence[Vertex], batch: Sequence[EdgeUpdate]
    ) -> Optional[Dict[Vertex, int]]:
        """First update of the batch that may affect each source, batched.

        Semantics are exactly those of the scalar per-(source, update) peek
        — undirected: skip iff both endpoint distances are equal (with
        "unreachable" compared as ``-1 == -1``); directed (edge ``u -> v``):
        skip iff the tail is unreachable or the head is no farther than the
        tail — only the evaluation is batched.  Returns a map from every
        possibly-affected source to the index of the first update whose
        peek fails; sources absent from the map are provably skipped for
        the whole batch, and a present source is provably SKIP for every
        update before its first index (a passing peek leaves the record
        untouched, so the induction the scalar peek relies on holds per
        prefix).  Returns ``None`` when the store cannot serve a distance
        block (buffered disk mode), signalling the caller to fall back to
        scalar peeks.
        """
        if not sources or not batch:
            return {}
        endpoint_slots: List[int] = []
        for update in batch:
            endpoint_slots.append(self.index.slot(update.u))
            endpoint_slots.append(self.index.slot(update.v))
        source_slots = [self.index.slot(source) for source in sources]
        block = self._store.peek_distance_block(source_slots, endpoint_slots)
        if block is None:
            return None
        us = block[:, 0::2]
        vs = block[:, 1::2]
        if self.directed:
            affected = (us != UNREACHABLE) & ((vs == UNREACHABLE) | (vs > us))
        else:
            affected = us != vs
        any_hit = affected.any(axis=1)
        firsts = np.argmax(affected, axis=1)
        return {
            source: int(first)
            for source, hit, first in zip(
                sources, any_hit.tolist(), firsts.tolist()
            )
            if hit
        }

    # ------------------------------------------------------------------ #
    # Step 1: vectorized Brandes bootstrap
    # ------------------------------------------------------------------ #
    def bootstrap(self, sources: Iterable[Vertex]) -> None:
        """Run the modified Brandes over ``sources``, filling store and scores."""
        indptr, indices, _edge_ids, edge_pairs = self.csr.compiled()
        # The forward BFS follows out-links, the dependency accumulation
        # scans in-links; for undirected graphs the in-CSR *is* the out-CSR
        # (same arrays), so this stays bit-identical to the historical path.
        in_indptr, in_indices, in_edge_ids = self.csr.compiled_in()
        n = self.csr.num_vertices
        self._sync_capacity()
        edge_scores = np.zeros(len(edge_pairs), dtype=np.float64)
        vscore = self._vscore
        scratch = np.empty(n, dtype=np.int64)
        for label in sources:
            source_slot = self.index.slot(label)
            distance, sigma, levels = _bfs_levels(
                indptr, indices, n, source_slot, scratch
            )
            delta = _accumulate_levels(
                in_indptr, in_indices, in_edge_ids, distance, sigma, levels,
                edge_scores,
            )
            if len(levels) > 1:
                reached = np.concatenate(levels[1:])
                vscore[reached] += delta[reached]
            self._store.put_columns(label, distance, sigma, delta)
        self._escore.reset(edge_pairs, edge_scores)


# --------------------------------------------------------------------------- #
# Standalone vectorized Brandes (no framework, no persistent store)
# --------------------------------------------------------------------------- #
def brandes_betweenness_arrays(
    graph: Graph,
    sources: Optional[Iterable[Vertex]] = None,
    collect_source_data: bool = False,
) -> BrandesResult:
    """Vectorized equivalent of :func:`repro.algorithms.brandes.\
brandes_betweenness` (predecessor-free variant, directed or undirected).

    Returns bit-identical scores to the dict implementation; see the module
    docstring for why.  Directed graphs run the forward sweep over the
    out-CSR and the dependency accumulation over the predecessor mirror,
    with edge scores keyed by the oriented ``(u, v)`` pair.
    ``collect_source_data`` decodes each flat record into a label-keyed
    :class:`SourceData`, which costs the dictionary materialisation the
    kernel otherwise avoids — only ask for it when the records are
    actually needed.
    """
    index = VertexIndex(graph.vertex_list())
    csr = CSRGraph.from_graph(graph, index)
    indptr, indices, _edge_ids, edge_pairs = csr.compiled()
    in_indptr, in_indices, in_edge_ids = csr.compiled_in()
    n = csr.num_vertices
    vscore = np.zeros(n, dtype=np.float64)
    edge_scores = np.zeros(len(edge_pairs), dtype=np.float64)
    source_list = list(sources) if sources is not None else graph.vertex_list()
    all_source_data: Optional[Dict[Vertex, SourceData]] = (
        {} if collect_source_data else None
    )
    scratch = np.empty(n, dtype=np.int64)
    for label in source_list:
        source_slot = index.slot(label)
        distance, sigma, levels = _bfs_levels(
            indptr, indices, n, source_slot, scratch
        )
        delta = _accumulate_levels(
            in_indptr, in_indices, in_edge_ids, distance, sigma, levels,
            edge_scores,
        )
        if len(levels) > 1:
            reached = np.concatenate(levels[1:])
            vscore[reached] += delta[reached]
        if all_source_data is not None:
            all_source_data[label] = decode_record_arrays(
                distance, sigma, delta, label, index
            )
    vertex_scores = {
        label: score
        for label, score in zip(index.vertices(), vscore.tolist())
    }
    if graph.directed:
        edge_score_dict = {
            (index.vertex(i), index.vertex(j)): score
            for (i, j), score in zip(edge_pairs, edge_scores.tolist())
        }
    else:
        edge_score_dict = {
            canonical_edge(index.vertex(i), index.vertex(j)): score
            for (i, j), score in zip(edge_pairs, edge_scores.tolist())
        }
    return BrandesResult(
        vertex_scores=vertex_scores,
        edge_scores=edge_score_dict,
        source_data=all_source_data,
    )
