"""Search-phase repair for edge removals (Algorithms 2, 6-10 of the paper).

Removal is the harder direction: when ``uL`` loses its last shortest-path
predecessor, part of the sub-DAG below it drops one or more levels, and the
new distances cannot be discovered from ``uL`` alone — they must be seeded
from *pivots*, vertices that keep their distance but have neighbors that do
not (Definition 3.2).  When no pivot exists the sub-DAG becomes disconnected
from the source (Algorithm 10).

All routines operate per source on the stored ``BD[s]`` and return a
:class:`~repro.core.repair.RepairPlan`.  The graph passed in must already
have the edge removed.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.algorithms.brandes import SourceData
from repro.core.addition import repair_same_level_flat
from repro.core.flat import (
    FlatBatchState,
    FlatScratch,
    first_occurrence,
    group_by_level,
    slice_positions,
)
from repro.core.repair import FlatRepairPlan, RepairPlan
from repro.graph.graph import Graph
from repro.types import Vertex


def _removed_edge_dependency(data: SourceData, high: Vertex, low: Vertex) -> float:
    """Old dependency carried by the removed shortest-path edge ``(high, low)``.

    This is the term ``sigma[uH]/sigma[uL] * (1 + delta[uL])`` that
    Algorithms 2, 7, 9 and 10 subtract from ``delta[uH]`` before backtracking,
    because the edge no longer exists and would otherwise never be visited.
    """
    return data.sigma[high] / data.sigma[low] * (1.0 + data.delta.get(low, 0.0))


def repair_removal_same_level(
    graph: Graph, data: SourceData, high: Vertex, low: Vertex
) -> RepairPlan:
    """Repair after removing ``(high, low)`` when ``low`` keeps its level.

    ``low`` still has at least one other predecessor, so no distance changes
    (Algorithm 2, deletion flavour): the shortest paths that used the removed
    edge are subtracted from the sub-DAG rooted at ``low``.
    """
    plan = RepairPlan(high=high, low=low)
    distance = data.distance
    sigma = data.sigma

    plan.removed_edge_dependency = _removed_edge_dependency(data, high, low)
    plan.new_sigma[low] = sigma[low] - sigma[high]
    plan.affected.add(low)
    plan.enqueue(low, distance[low])

    queue: deque[Vertex] = deque([low])
    while queue:
        vertex = queue.popleft()
        vertex_level = distance[vertex]
        delta_sigma = plan.new_sigma[vertex] - sigma[vertex]
        for neighbor in graph.out_neighbors(vertex):
            if distance.get(neighbor) != vertex_level + 1:
                continue
            if neighbor not in plan.affected:
                plan.new_sigma[neighbor] = sigma[neighbor]
                plan.affected.add(neighbor)
                plan.enqueue(neighbor, vertex_level + 1)
                queue.append(neighbor)
            plan.new_sigma[neighbor] += delta_sigma
    return plan


def find_drop_set(graph: Graph, data: SourceData, low: Vertex) -> Dict[Vertex, None]:
    """Vertices whose distance from the source increases after the removal.

    A vertex drops if and only if *all* of its shortest-path predecessors
    drop (``low`` itself drops by assumption: it just lost its last
    predecessor).  Candidates are explored in increasing old distance so that
    every predecessor's fate is decided before the vertex is examined; this
    mirrors the pivot-finding BFS of Algorithm 6, with the complement of the
    drop set adjacent to it forming the pivots.

    The result is an insertion-ordered dict used as an ordered set:
    downstream stages iterate over it, and a deterministic (discovery)
    order keeps the whole repair reproducible and lets the array-native
    kernel mirror it exactly in slot space.
    """
    distance = data.distance
    drop: Dict[Vertex, None] = {low: None}
    decided: Set[Vertex] = {low}

    buckets: Dict[int, List[Vertex]] = {}

    def schedule_children(vertex: Vertex) -> None:
        vertex_level = distance[vertex]
        for child in graph.out_neighbors(vertex):
            if distance.get(child) == vertex_level + 1 and child not in decided:
                buckets.setdefault(vertex_level + 1, []).append(child)

    schedule_children(low)
    if not buckets:
        return drop
    level = min(buckets)
    max_level = max(buckets)
    while level <= max_level:
        queue = buckets.get(level, [])
        index = 0
        while index < len(queue):
            vertex = queue[index]
            index += 1
            if vertex in decided:
                continue
            decided.add(vertex)
            parent_level = distance[vertex] - 1
            all_parents_drop = True
            for parent in graph.in_neighbors(vertex):
                if distance.get(parent) == parent_level and parent not in drop:
                    all_parents_drop = False
                    break
            if all_parents_drop:
                drop[vertex] = None
                schedule_children(vertex)
                max_level = max(max_level, level + 1)
        level += 1
    return drop


def repair_removal_structural(
    graph: Graph, data: SourceData, high: Vertex, low: Vertex
) -> RepairPlan:
    """Repair after removing ``(high, low)`` when ``low`` loses its last predecessor.

    Three stages (Algorithms 6-7, with Algorithm 10 folded in for the
    disconnected part):

    1. find the drop set (vertices whose distance increases) and, implicitly,
       the pivots at its boundary;
    2. recompute the new distances of dropped vertices with a multi-source
       level-ordered traversal seeded from the pivots; dropped vertices that
       are never reached became disconnected from the source;
    3. recompute the shortest-path counts of every affected vertex (dropped
       vertices plus vertices that lost a dropped predecessor and their
       descendants) in increasing order of new distance.
    """
    plan = RepairPlan(high=high, low=low)
    old_distance = data.distance
    old_sigma = data.sigma
    plan.removed_edge_dependency = _removed_edge_dependency(data, high, low)

    drop = find_drop_set(graph, data, low)

    # ------------------------------------------------------------------ #
    # Stage 2: new distances for dropped vertices, seeded from pivots.
    # ------------------------------------------------------------------ #
    new_distance = plan.new_distance
    tentative: Dict[Vertex, int] = {}
    buckets: Dict[int, List[Vertex]] = {}
    for vertex in drop:
        best: Optional[int] = None
        for neighbor in graph.in_neighbors(vertex):
            if neighbor in drop:
                continue
            neighbor_distance = old_distance.get(neighbor)
            if neighbor_distance is None:
                continue
            if best is None or neighbor_distance + 1 < best:
                best = neighbor_distance + 1
        if best is not None:
            tentative[vertex] = best
            buckets.setdefault(best, []).append(vertex)

    settled: Set[Vertex] = set()
    if buckets:
        level = min(buckets)
        max_level = max(buckets)
        while level <= max_level:
            queue = buckets.get(level, [])
            index = 0
            while index < len(queue):
                vertex = queue[index]
                index += 1
                if vertex in settled or tentative.get(vertex) != level:
                    continue
                settled.add(vertex)
                new_distance[vertex] = level
                for neighbor in graph.out_neighbors(vertex):
                    if neighbor not in drop or neighbor in settled:
                        continue
                    proposal = level + 1
                    current = tentative.get(neighbor)
                    if current is None or proposal < current:
                        tentative[neighbor] = proposal
                        buckets.setdefault(proposal, []).append(neighbor)
                        max_level = max(max_level, proposal)
            level += 1

    plan.disconnected = [vertex for vertex in drop if vertex not in settled]
    disconnected_set = set(plan.disconnected)

    # ------------------------------------------------------------------ #
    # Stage 3: sigma repair over the affected region, by new distance.
    # ------------------------------------------------------------------ #
    def current_distance(vertex: Vertex) -> Optional[int]:
        if vertex in disconnected_set:
            return None
        found = new_distance.get(vertex)
        if found is not None:
            return found
        return old_distance.get(vertex)

    new_sigma = plan.new_sigma
    sigma_buckets: Dict[int, List[Vertex]] = {}
    scheduled: Set[Vertex] = set()

    def schedule(vertex: Vertex) -> None:
        if vertex in scheduled or vertex in disconnected_set:
            return
        vertex_distance = current_distance(vertex)
        if vertex_distance is None:
            return
        scheduled.add(vertex)
        sigma_buckets.setdefault(vertex_distance, []).append(vertex)

    # Seeds: every reachable dropped vertex, plus every surviving vertex that
    # lost a dropped predecessor (its shortest-path count shrinks).
    for vertex in drop:
        schedule(vertex)
    for vertex in drop:
        vertex_level = old_distance[vertex]
        for child in graph.out_neighbors(vertex):
            if child in drop:
                continue
            if old_distance.get(child) == vertex_level + 1:
                schedule(child)

    if sigma_buckets:
        level = min(sigma_buckets)
        max_level = max(sigma_buckets)
        while level <= max_level:
            queue = sigma_buckets.get(level, [])
            index = 0
            while index < len(queue):
                vertex = queue[index]
                index += 1
                if vertex in plan.affected:
                    continue
                plan.affected.add(vertex)
                plan.enqueue(vertex, level)
                total = 0
                for neighbor in graph.in_neighbors(vertex):
                    neighbor_distance = current_distance(neighbor)
                    if neighbor_distance is not None and neighbor_distance + 1 == level:
                        total += new_sigma.get(neighbor, old_sigma.get(neighbor, 0))
                new_sigma[vertex] = total
                for child in graph.out_neighbors(vertex):
                    child_distance = current_distance(child)
                    if child_distance is not None and child_distance == level + 1:
                        if child not in scheduled:
                            scheduled.add(child)
                            sigma_buckets.setdefault(level + 1, []).append(child)
                            max_level = max(max_level, level + 1)
            level += 1

    return plan


# --------------------------------------------------------------------------- #
# Vectorized (slot-space) variants
# --------------------------------------------------------------------------- #
_INF = np.iinfo(np.int64).max


def removed_edge_dependency_flat(
    distance: np.ndarray, sigma: np.ndarray, delta: np.ndarray, high: int, low: int
) -> float:
    """Flat form of :func:`_removed_edge_dependency` (same operand order)."""
    return int(sigma[high]) / int(sigma[low]) * (1.0 + float(delta[low]))


def repair_removal_same_level_flat(
    state: FlatBatchState,
    distance: np.ndarray,
    sigma: np.ndarray,
    delta: np.ndarray,
    high: int,
    low: int,
    scratch: FlatScratch,
) -> FlatRepairPlan:
    """Vectorized Algorithm 2 (deletion flavour): the sigma-only removal."""
    plan = repair_same_level_flat(state, distance, sigma, high, low, -1, scratch)
    plan.removed_edge_dependency = removed_edge_dependency_flat(
        distance, sigma, delta, high, low
    )
    return plan


def find_drop_set_flat(
    state: FlatBatchState,
    distance: np.ndarray,
    low: int,
    scratch: FlatScratch,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`find_drop_set`; returns ``(drop, drop_mask)``.

    ``drop`` lists the dropped slots in scalar discovery order.  Per level the
    batch decision is exact: a candidate's fate depends only on the drop
    status of its parents one level up (all decided in earlier levels), and
    candidate dedup combines the decided mask with first-occurrence order —
    exactly the pop-time ``decided`` guard of the scalar loop.
    """
    n = state.n
    indptr, indices = state.indptr, state.indices
    in_indptr, in_indices = state.in_indptr, state.in_indices
    first_of = scratch.first_of

    drop_mask = np.zeros(n, dtype=np.bool_)
    decided = np.zeros(n, dtype=np.bool_)
    drop_mask[low] = True
    decided[low] = True
    drop_chunks: List[np.ndarray] = [np.array([low], dtype=np.int64)]

    # Initial schedule: children of low one level below (duplicates kept, as
    # the scalar schedule_children appends them).
    start = indptr[low]
    stop = indptr[low + 1]
    seed_children = indices[start:stop]
    seed = seed_children[
        (distance[seed_children] == distance[low] + 1) & ~decided[seed_children]
    ]
    if seed.size == 0:
        return drop_chunks[0], drop_mask

    level = int(distance[low]) + 1
    max_level = level
    buckets: Dict[int, List[np.ndarray]] = {level: [seed]}
    while level <= max_level:
        chunks = buckets.get(level)
        if chunks:
            cand = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            members = first_occurrence(cand[~decided[cand]], first_of)
            if members.size:
                decided[members] = True
                # A member drops iff no parent one level up survives.
                positions, counts = slice_positions(in_indptr, members)
                parents = in_indices[positions]
                survivors = (distance[parents] == level - 1) & ~drop_mask[parents]
                has_survivor = np.zeros(members.size, dtype=np.bool_)
                if survivors.any():
                    rep = np.repeat(
                        np.arange(members.size, dtype=np.int64), counts
                    )
                    has_survivor[rep[survivors]] = True
                dropped = members[~has_survivor]
                if dropped.size:
                    drop_mask[dropped] = True
                    drop_chunks.append(dropped)
                    positions, _counts = slice_positions(indptr, dropped)
                    children = indices[positions]
                    scheduled = children[
                        (distance[children] == level + 1) & ~decided[children]
                    ]
                    if scheduled.size:
                        buckets.setdefault(level + 1, []).append(scheduled)
                    max_level = max(max_level, level + 1)
        level += 1
    drop = (
        drop_chunks[0] if len(drop_chunks) == 1 else np.concatenate(drop_chunks)
    )
    return drop, drop_mask


def repair_removal_structural_flat(
    state: FlatBatchState,
    distance: np.ndarray,
    sigma: np.ndarray,
    delta: np.ndarray,
    high: int,
    low: int,
    scratch: FlatScratch,
) -> FlatRepairPlan:
    """Vectorized Algorithms 6-10: drop set, pivot settle, sigma recount.

    Each stage is level-synchronous and mirrors its scalar counterpart's
    bucket order; see the per-stage comments for why whole-level batching
    cannot reorder any decision the scalar loop makes element by element.
    """
    n = state.n
    indptr, indices = state.indptr, state.indices
    in_indptr, in_indices = state.in_indptr, state.in_indices
    first_of = scratch.first_of

    drop, drop_mask = find_drop_set_flat(state, distance, low, scratch)

    # ------------------------------------------------------------------ #
    # Stage 2: settle new distances of dropped vertices from the pivots.
    # ------------------------------------------------------------------ #
    # Initial tentative distances: best surviving in-neighbor + 1.  A
    # minimum is order-free, so one scatter replaces the scalar scan.
    tentative = np.full(n, _INF, dtype=np.int64)
    positions, counts = slice_positions(in_indptr, drop)
    parents = in_indices[positions]
    ok = ~drop_mask[parents] & (distance[parents] != -1)
    if ok.any():
        rep = np.repeat(np.arange(drop.size, dtype=np.int64), counts)
        np.minimum.at(
            tentative, drop[rep[ok]], distance[parents[ok]].astype(np.int64) + 1
        )

    settled = np.zeros(n, dtype=np.bool_)
    settle_levels: List[Tuple[int, np.ndarray]] = []
    seeded = drop[tentative[drop] != _INF]
    if seeded.size:
        buckets: Dict[int, List[np.ndarray]] = {}
        for lvl, members in group_by_level(seeded, tentative[seeded]):
            buckets[lvl] = [members]
        level = min(buckets)
        max_level = max(buckets)
        while level <= max_level:
            chunks = buckets.get(level)
            if chunks:
                cand = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
                # Stale entries (tentative since lowered) and relax-time
                # duplicates are rejected exactly as at scalar pop time:
                # relaxation never writes a tentative <= level, so the keep
                # mask is static across the level.
                keep = ~settled[cand] & (tentative[cand] == level)
                members = first_occurrence(cand[keep], first_of)
                if members.size:
                    settled[members] = True
                    settle_levels.append((level, members))
                    positions, _counts = slice_positions(indptr, members)
                    children = indices[positions]
                    relax = (
                        drop_mask[children]
                        & ~settled[children]
                        & (level + 1 < tentative[children])
                    )
                    kids = first_occurrence(children[relax], first_of)
                    if kids.size:
                        tentative[kids] = level + 1
                        buckets.setdefault(level + 1, []).append(kids)
                        max_level = max(max_level, level + 1)
            level += 1

    work_distance = distance.copy()
    for lvl, members in settle_levels:
        work_distance[members] = lvl
    disconnected = drop[~settled[drop]]
    work_distance[disconnected] = -1

    # ------------------------------------------------------------------ #
    # Stage 3: sigma recount over the affected region, by new distance.
    # ------------------------------------------------------------------ #
    work_sigma = sigma.copy()
    affected = np.zeros(n, dtype=np.bool_)
    scheduled = np.zeros(n, dtype=np.bool_)
    sigma_buckets: Dict[int, List[np.ndarray]] = {}

    # Seeds, phase A: every still-reachable dropped vertex, in drop order.
    seeds_a = drop[work_distance[drop] != -1]
    scheduled[seeds_a] = True
    for lvl, members in group_by_level(
        seeds_a, work_distance[seeds_a].astype(np.int64)
    ):
        sigma_buckets.setdefault(lvl, []).append(members)

    # Seeds, phase B: surviving children that lost a dropped predecessor.
    # The scalar loop runs phase A to completion first, so phase-B chunks
    # append after phase-A chunks at every level.
    positions, counts = slice_positions(indptr, drop)
    children = indices[positions]
    rep_distance = np.repeat(distance[drop].astype(np.int64), counts)
    lost = ~drop_mask[children] & (distance[children] == rep_distance + 1)
    candidates = children[lost]
    candidates = candidates[~scheduled[candidates]]
    seeds_b = first_occurrence(candidates, first_of)
    if seeds_b.size:
        scheduled[seeds_b] = True
        for lvl, members in group_by_level(
            seeds_b, work_distance[seeds_b].astype(np.int64)
        ):
            sigma_buckets.setdefault(lvl, []).append(members)

    levels: List[Tuple[int, np.ndarray]] = []
    count = 0
    if sigma_buckets:
        level = min(sigma_buckets)
        max_level = max(sigma_buckets)
        while level <= max_level:
            chunks = sigma_buckets.get(level)
            if chunks:
                cand = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
                members = first_occurrence(cand[~affected[cand]], first_of)
                if members.size:
                    affected[members] = True
                    count += members.size
                    levels.append((level, members))

                    # Sigma recount from parents one level up (all final).
                    positions, counts = slice_positions(in_indptr, members)
                    parents = in_indices[positions]
                    parent_distance = work_distance[parents]
                    parent_mask = (parent_distance != -1) & (
                        parent_distance + 1 == level
                    )
                    totals = np.zeros(members.size, dtype=np.int64)
                    if parent_mask.any():
                        rep = np.repeat(
                            np.arange(members.size, dtype=np.int64), counts
                        )
                        np.add.at(
                            totals,
                            rep[parent_mask],
                            work_sigma[parents[parent_mask]],
                        )
                    work_sigma[members] = totals

                    # Children one level down inherit the recount.
                    positions, _counts = slice_positions(indptr, members)
                    children = indices[positions]
                    child_distance = work_distance[children]
                    grow = (
                        (child_distance != -1)
                        & (child_distance == level + 1)
                        & ~scheduled[children]
                    )
                    kids = first_occurrence(children[grow], first_of)
                    if kids.size:
                        scheduled[kids] = True
                        sigma_buckets.setdefault(level + 1, []).append(kids)
                        max_level = max(max_level, level + 1)
            level += 1

    return FlatRepairPlan(
        work_distance=work_distance,
        work_sigma=work_sigma,
        affected_mask=affected,
        affected_count=count,
        levels=levels,
        disconnected=disconnected,
        removed_edge_dependency=removed_edge_dependency_flat(
            distance, sigma, delta, high, low
        ),
        high=high,
        low=low,
    )


def find_drop_set_cohort(
    state: FlatBatchState,
    ks: np.ndarray,
    lows: np.ndarray,
    old_distance: np.ndarray,
    pair_first: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """:func:`find_drop_set_flat` for a cohort, in (job, slot) pair space.

    Returns ``(drop, drop_mask)`` where ``drop`` lists pair ids (``k * n +
    slot``) in discovery order — each job's subsequence is its solo drop
    order — and ``drop_mask`` is the flat pair-space membership mask.
    Levels are absolute per pair (a job's candidates appear only at its own
    ``d[low] + 1 + hop`` levels), and every drop/survive decision reads
    only the candidate's own row, so the merged level loop is exact.
    """
    n = state.n
    indptr, indices = state.indptr, state.indices
    in_indptr, in_indices = state.in_indptr, state.in_indices
    od_flat = old_distance.reshape(-1)

    drop_mask = np.zeros(old_distance.size, dtype=np.bool_)
    decided = np.zeros(old_distance.size, dtype=np.bool_)
    low_pids = ks * n + lows
    drop_mask[low_pids] = True
    decided[low_pids] = True
    drop_chunks: List[np.ndarray] = [low_pids]

    # Initial schedule: children of each low one level below (duplicates
    # kept, as the scalar schedule_children appends them).
    positions, counts = slice_positions(indptr, lows)
    if positions.size == 0:
        return low_pids, drop_mask
    rep = np.repeat(np.arange(lows.size, dtype=np.int64), counts)
    cpid = ks[rep] * n + indices[positions]
    seed = cpid[
        (od_flat[cpid] == od_flat[low_pids][rep] + 1) & ~decided[cpid]
    ]
    if seed.size == 0:
        return low_pids, drop_mask

    buckets: Dict[int, List[np.ndarray]] = {}
    for lvl, members in group_by_level(seed, od_flat[seed].astype(np.int64)):
        buckets.setdefault(lvl, []).append(members)
    level = min(buckets)
    max_level = max(buckets)
    while level <= max_level:
        chunks = buckets.get(level)
        if chunks:
            cand = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            members = first_occurrence(cand[~decided[cand]], pair_first)
            if members.size:
                decided[members] = True
                mk = members // n
                ms = members - mk * n
                # A member drops iff no parent one level up survives.
                positions, counts = slice_positions(in_indptr, ms)
                has_survivor = np.zeros(members.size, dtype=np.bool_)
                if positions.size:
                    rep = np.repeat(
                        np.arange(members.size, dtype=np.int64), counts
                    )
                    ppid = mk[rep] * n + in_indices[positions]
                    survivors = (od_flat[ppid] == level - 1) & ~drop_mask[ppid]
                    if survivors.any():
                        has_survivor[rep[survivors]] = True
                dropped = members[~has_survivor]
                if dropped.size:
                    drop_mask[dropped] = True
                    drop_chunks.append(dropped)
                    dk = dropped // n
                    ds = dropped - dk * n
                    positions, counts = slice_positions(indptr, ds)
                    if positions.size:
                        rep = np.repeat(
                            np.arange(ds.size, dtype=np.int64), counts
                        )
                        kpid = dk[rep] * n + indices[positions]
                        scheduled = kpid[
                            (od_flat[kpid] == level + 1) & ~decided[kpid]
                        ]
                        if scheduled.size:
                            buckets.setdefault(level + 1, []).append(scheduled)
                    max_level = max(max_level, level + 1)
        level += 1
    drop = (
        drop_chunks[0] if len(drop_chunks) == 1 else np.concatenate(drop_chunks)
    )
    return drop, drop_mask


def repair_removal_structural_cohort(
    state: FlatBatchState,
    ks: np.ndarray,
    highs: np.ndarray,
    lows: np.ndarray,
    old_distance: np.ndarray,
    work_distance: np.ndarray,
    work_sigma: np.ndarray,
    affected: np.ndarray,
    pair_first: np.ndarray,
    pair_pos: np.ndarray,
) -> tuple:
    """:func:`repair_removal_structural_flat` for a cohort in pair space.

    All three stages are level-synchronous integer walks whose per-pair
    decisions read only that pair's row, so the merged absolute-level loops
    replay each job's solo stages exactly (each job's pair subsequence of
    every chunk is its solo chunk).  Stage-2 bookkeeping (``tentative`` /
    ``settled``) is kept compact over the drop list via the ``pair_pos``
    scratch — pair id → drop position — so no dense per-pair integer
    columns are allocated.

    Arguments follow :func:`repair_addition_structural_cohort` plus the
    second pair-space scratch ``pair_pos``.  Returns ``(tri_k, tri_s,
    tri_l, disc)``: merged plan-chunk triples and the disconnected pair
    ids in per-job discovery order.
    """
    n = state.n
    indptr, indices = state.indptr, state.indices
    in_indptr, in_indices = state.in_indptr, state.in_indices
    od_flat = old_distance.reshape(-1)
    wd_flat = work_distance.reshape(-1)
    ws_flat = work_sigma.reshape(-1)
    aff_flat = affected.reshape(-1)

    drop, drop_mask = find_drop_set_cohort(
        state, ks, lows, old_distance, pair_first
    )
    dk = drop // n
    ds = drop - dk * n

    # ------------------------------------------------------------------ #
    # Stage 2: settle new distances of dropped pairs from the pivots.
    # ------------------------------------------------------------------ #
    tentative = np.full(drop.size, _INF, dtype=np.int64)
    positions, counts = slice_positions(in_indptr, ds)
    if positions.size:
        rep = np.repeat(np.arange(drop.size, dtype=np.int64), counts)
        ppid = dk[rep] * n + in_indices[positions]
        ok = ~drop_mask[ppid] & (od_flat[ppid] != -1)
        if ok.any():
            np.minimum.at(
                tentative, rep[ok], od_flat[ppid[ok]].astype(np.int64) + 1
            )
    pair_pos[drop] = np.arange(drop.size, dtype=np.int64)
    settled = np.zeros(drop.size, dtype=np.bool_)

    reachable = tentative != _INF
    seeded = drop[reachable]
    if seeded.size:
        buckets: Dict[int, List[np.ndarray]] = {}
        for lvl, members in group_by_level(seeded, tentative[reachable]):
            buckets.setdefault(lvl, []).append(members)
        level = min(buckets)
        max_level = max(buckets)
        while level <= max_level:
            chunks = buckets.get(level)
            if chunks:
                cand = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
                cpos = pair_pos[cand]
                keep = ~settled[cpos] & (tentative[cpos] == level)
                members = first_occurrence(cand[keep], pair_first)
                if members.size:
                    settled[pair_pos[members]] = True
                    wd_flat[members] = level
                    mk = members // n
                    ms = members - mk * n
                    positions, counts = slice_positions(indptr, ms)
                    if positions.size:
                        rep = np.repeat(
                            np.arange(ms.size, dtype=np.int64), counts
                        )
                        kpid = mk[rep] * n + indices[positions]
                        # Restrict to drop pairs before touching the compact
                        # stage-2 state (pair_pos is defined only on drop).
                        in_drop = drop_mask[kpid]
                        sub = kpid[in_drop]
                        spos = pair_pos[sub]
                        relax = ~settled[spos] & (level + 1 < tentative[spos])
                        kids = first_occurrence(sub[relax], pair_first)
                        if kids.size:
                            tentative[pair_pos[kids]] = level + 1
                            buckets.setdefault(level + 1, []).append(kids)
                            max_level = max(max_level, level + 1)
            level += 1

    disconnected = drop[~settled]
    wd_flat[disconnected] = -1

    # ------------------------------------------------------------------ #
    # Stage 3: sigma recount over the affected region, by new distance.
    # ------------------------------------------------------------------ #
    scheduled = np.zeros(old_distance.size, dtype=np.bool_)
    sigma_buckets: Dict[int, List[np.ndarray]] = {}

    # Seeds, phase A: every still-reachable dropped pair, in drop order.
    seeds_a = drop[wd_flat[drop] != -1]
    scheduled[seeds_a] = True
    for lvl, members in group_by_level(
        seeds_a, wd_flat[seeds_a].astype(np.int64)
    ):
        sigma_buckets.setdefault(lvl, []).append(members)

    # Seeds, phase B: surviving children that lost a dropped predecessor.
    positions, counts = slice_positions(indptr, ds)
    if positions.size:
        rep = np.repeat(np.arange(drop.size, dtype=np.int64), counts)
        kpid = dk[rep] * n + indices[positions]
        lost = ~drop_mask[kpid] & (
            od_flat[kpid] == od_flat[drop][rep] + 1
        )
        candidates = kpid[lost]
        candidates = candidates[~scheduled[candidates]]
        seeds_b = first_occurrence(candidates, pair_first)
        if seeds_b.size:
            scheduled[seeds_b] = True
            for lvl, members in group_by_level(
                seeds_b, wd_flat[seeds_b].astype(np.int64)
            ):
                sigma_buckets.setdefault(lvl, []).append(members)

    tri_k: List[np.ndarray] = []
    tri_s: List[np.ndarray] = []
    tri_l: List[np.ndarray] = []
    if sigma_buckets:
        level = min(sigma_buckets)
        max_level = max(sigma_buckets)
        while level <= max_level:
            chunks = sigma_buckets.get(level)
            if chunks:
                cand = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
                members = first_occurrence(cand[~aff_flat[cand]], pair_first)
                if members.size:
                    aff_flat[members] = True
                    mk = members // n
                    ms = members - mk * n
                    tri_k.append(mk)
                    tri_s.append(ms)
                    tri_l.append(
                        np.full(members.size, level, dtype=np.int64)
                    )

                    # Sigma recount from parents one level up (all final).
                    positions, counts = slice_positions(in_indptr, ms)
                    totals = np.zeros(members.size, dtype=np.int64)
                    if positions.size:
                        rep = np.repeat(
                            np.arange(members.size, dtype=np.int64), counts
                        )
                        ppid = mk[rep] * n + in_indices[positions]
                        parent_distance = wd_flat[ppid]
                        parent_mask = (parent_distance != -1) & (
                            parent_distance + 1 == level
                        )
                        if parent_mask.any():
                            np.add.at(
                                totals,
                                rep[parent_mask],
                                ws_flat[ppid[parent_mask]],
                            )
                    ws_flat[members] = totals

                    # Children one level down inherit the recount.
                    positions, counts = slice_positions(indptr, ms)
                    if positions.size:
                        rep = np.repeat(
                            np.arange(ms.size, dtype=np.int64), counts
                        )
                        kpid = mk[rep] * n + indices[positions]
                        child_distance = wd_flat[kpid]
                        grow = (
                            (child_distance != -1)
                            & (child_distance == level + 1)
                            & ~scheduled[kpid]
                        )
                        kids = first_occurrence(kpid[grow], pair_first)
                        if kids.size:
                            scheduled[kids] = True
                            sigma_buckets.setdefault(level + 1, []).append(
                                kids
                            )
                            max_level = max(max_level, level + 1)
            level += 1

    empty = np.empty(0, dtype=np.int64)
    return (
        np.concatenate(tri_k) if tri_k else empty,
        np.concatenate(tri_s) if tri_s else empty,
        np.concatenate(tri_l) if tri_l else empty,
        disconnected,
    )
