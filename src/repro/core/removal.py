"""Search-phase repair for edge removals (Algorithms 2, 6-10 of the paper).

Removal is the harder direction: when ``uL`` loses its last shortest-path
predecessor, part of the sub-DAG below it drops one or more levels, and the
new distances cannot be discovered from ``uL`` alone — they must be seeded
from *pivots*, vertices that keep their distance but have neighbors that do
not (Definition 3.2).  When no pivot exists the sub-DAG becomes disconnected
from the source (Algorithm 10).

All routines operate per source on the stored ``BD[s]`` and return a
:class:`~repro.core.repair.RepairPlan`.  The graph passed in must already
have the edge removed.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set

from repro.algorithms.brandes import SourceData
from repro.core.repair import RepairPlan
from repro.graph.graph import Graph
from repro.types import Vertex


def _removed_edge_dependency(data: SourceData, high: Vertex, low: Vertex) -> float:
    """Old dependency carried by the removed shortest-path edge ``(high, low)``.

    This is the term ``sigma[uH]/sigma[uL] * (1 + delta[uL])`` that
    Algorithms 2, 7, 9 and 10 subtract from ``delta[uH]`` before backtracking,
    because the edge no longer exists and would otherwise never be visited.
    """
    return data.sigma[high] / data.sigma[low] * (1.0 + data.delta.get(low, 0.0))


def repair_removal_same_level(
    graph: Graph, data: SourceData, high: Vertex, low: Vertex
) -> RepairPlan:
    """Repair after removing ``(high, low)`` when ``low`` keeps its level.

    ``low`` still has at least one other predecessor, so no distance changes
    (Algorithm 2, deletion flavour): the shortest paths that used the removed
    edge are subtracted from the sub-DAG rooted at ``low``.
    """
    plan = RepairPlan(high=high, low=low)
    distance = data.distance
    sigma = data.sigma

    plan.removed_edge_dependency = _removed_edge_dependency(data, high, low)
    plan.new_sigma[low] = sigma[low] - sigma[high]
    plan.affected.add(low)
    plan.enqueue(low, distance[low])

    queue: deque[Vertex] = deque([low])
    while queue:
        vertex = queue.popleft()
        vertex_level = distance[vertex]
        delta_sigma = plan.new_sigma[vertex] - sigma[vertex]
        for neighbor in graph.out_neighbors(vertex):
            if distance.get(neighbor) != vertex_level + 1:
                continue
            if neighbor not in plan.affected:
                plan.new_sigma[neighbor] = sigma[neighbor]
                plan.affected.add(neighbor)
                plan.enqueue(neighbor, vertex_level + 1)
                queue.append(neighbor)
            plan.new_sigma[neighbor] += delta_sigma
    return plan


def find_drop_set(graph: Graph, data: SourceData, low: Vertex) -> Dict[Vertex, None]:
    """Vertices whose distance from the source increases after the removal.

    A vertex drops if and only if *all* of its shortest-path predecessors
    drop (``low`` itself drops by assumption: it just lost its last
    predecessor).  Candidates are explored in increasing old distance so that
    every predecessor's fate is decided before the vertex is examined; this
    mirrors the pivot-finding BFS of Algorithm 6, with the complement of the
    drop set adjacent to it forming the pivots.

    The result is an insertion-ordered dict used as an ordered set:
    downstream stages iterate over it, and a deterministic (discovery)
    order keeps the whole repair reproducible and lets the array-native
    kernel mirror it exactly in slot space.
    """
    distance = data.distance
    drop: Dict[Vertex, None] = {low: None}
    decided: Set[Vertex] = {low}

    buckets: Dict[int, List[Vertex]] = {}

    def schedule_children(vertex: Vertex) -> None:
        vertex_level = distance[vertex]
        for child in graph.out_neighbors(vertex):
            if distance.get(child) == vertex_level + 1 and child not in decided:
                buckets.setdefault(vertex_level + 1, []).append(child)

    schedule_children(low)
    if not buckets:
        return drop
    level = min(buckets)
    max_level = max(buckets)
    while level <= max_level:
        queue = buckets.get(level, [])
        index = 0
        while index < len(queue):
            vertex = queue[index]
            index += 1
            if vertex in decided:
                continue
            decided.add(vertex)
            parent_level = distance[vertex] - 1
            all_parents_drop = True
            for parent in graph.in_neighbors(vertex):
                if distance.get(parent) == parent_level and parent not in drop:
                    all_parents_drop = False
                    break
            if all_parents_drop:
                drop[vertex] = None
                schedule_children(vertex)
                max_level = max(max_level, level + 1)
        level += 1
    return drop


def repair_removal_structural(
    graph: Graph, data: SourceData, high: Vertex, low: Vertex
) -> RepairPlan:
    """Repair after removing ``(high, low)`` when ``low`` loses its last predecessor.

    Three stages (Algorithms 6-7, with Algorithm 10 folded in for the
    disconnected part):

    1. find the drop set (vertices whose distance increases) and, implicitly,
       the pivots at its boundary;
    2. recompute the new distances of dropped vertices with a multi-source
       level-ordered traversal seeded from the pivots; dropped vertices that
       are never reached became disconnected from the source;
    3. recompute the shortest-path counts of every affected vertex (dropped
       vertices plus vertices that lost a dropped predecessor and their
       descendants) in increasing order of new distance.
    """
    plan = RepairPlan(high=high, low=low)
    old_distance = data.distance
    old_sigma = data.sigma
    plan.removed_edge_dependency = _removed_edge_dependency(data, high, low)

    drop = find_drop_set(graph, data, low)

    # ------------------------------------------------------------------ #
    # Stage 2: new distances for dropped vertices, seeded from pivots.
    # ------------------------------------------------------------------ #
    new_distance = plan.new_distance
    tentative: Dict[Vertex, int] = {}
    buckets: Dict[int, List[Vertex]] = {}
    for vertex in drop:
        best: Optional[int] = None
        for neighbor in graph.in_neighbors(vertex):
            if neighbor in drop:
                continue
            neighbor_distance = old_distance.get(neighbor)
            if neighbor_distance is None:
                continue
            if best is None or neighbor_distance + 1 < best:
                best = neighbor_distance + 1
        if best is not None:
            tentative[vertex] = best
            buckets.setdefault(best, []).append(vertex)

    settled: Set[Vertex] = set()
    if buckets:
        level = min(buckets)
        max_level = max(buckets)
        while level <= max_level:
            queue = buckets.get(level, [])
            index = 0
            while index < len(queue):
                vertex = queue[index]
                index += 1
                if vertex in settled or tentative.get(vertex) != level:
                    continue
                settled.add(vertex)
                new_distance[vertex] = level
                for neighbor in graph.out_neighbors(vertex):
                    if neighbor not in drop or neighbor in settled:
                        continue
                    proposal = level + 1
                    current = tentative.get(neighbor)
                    if current is None or proposal < current:
                        tentative[neighbor] = proposal
                        buckets.setdefault(proposal, []).append(neighbor)
                        max_level = max(max_level, proposal)
            level += 1

    plan.disconnected = [vertex for vertex in drop if vertex not in settled]
    disconnected_set = set(plan.disconnected)

    # ------------------------------------------------------------------ #
    # Stage 3: sigma repair over the affected region, by new distance.
    # ------------------------------------------------------------------ #
    def current_distance(vertex: Vertex) -> Optional[int]:
        if vertex in disconnected_set:
            return None
        found = new_distance.get(vertex)
        if found is not None:
            return found
        return old_distance.get(vertex)

    new_sigma = plan.new_sigma
    sigma_buckets: Dict[int, List[Vertex]] = {}
    scheduled: Set[Vertex] = set()

    def schedule(vertex: Vertex) -> None:
        if vertex in scheduled or vertex in disconnected_set:
            return
        vertex_distance = current_distance(vertex)
        if vertex_distance is None:
            return
        scheduled.add(vertex)
        sigma_buckets.setdefault(vertex_distance, []).append(vertex)

    # Seeds: every reachable dropped vertex, plus every surviving vertex that
    # lost a dropped predecessor (its shortest-path count shrinks).
    for vertex in drop:
        schedule(vertex)
    for vertex in drop:
        vertex_level = old_distance[vertex]
        for child in graph.out_neighbors(vertex):
            if child in drop:
                continue
            if old_distance.get(child) == vertex_level + 1:
                schedule(child)

    if sigma_buckets:
        level = min(sigma_buckets)
        max_level = max(sigma_buckets)
        while level <= max_level:
            queue = sigma_buckets.get(level, [])
            index = 0
            while index < len(queue):
                vertex = queue[index]
                index += 1
                if vertex in plan.affected:
                    continue
                plan.affected.add(vertex)
                plan.enqueue(vertex, level)
                total = 0
                for neighbor in graph.in_neighbors(vertex):
                    neighbor_distance = current_distance(neighbor)
                    if neighbor_distance is not None and neighbor_distance + 1 == level:
                        total += new_sigma.get(neighbor, old_sigma.get(neighbor, 0))
                new_sigma[vertex] = total
                for child in graph.out_neighbors(vertex):
                    child_distance = current_distance(child)
                    if child_distance is not None and child_distance == level + 1:
                        if child not in scheduled:
                            scheduled.add(child)
                            sigma_buckets.setdefault(level + 1, []).append(child)
                            max_level = max(max_level, level + 1)
            level += 1

    return plan
