"""Shared data structures for the per-source repair phases.

The search phases (Algorithms 2, 4, 6-8 of the paper) all produce the same
kind of artefact: for the current source, the set of vertices whose distance
and/or number of shortest paths changed, together with their new values and
level queues keyed by the new distance.  :class:`RepairPlan` captures that
artefact and is consumed by the shared dependency-accumulation phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.types import Vertex


@dataclass
class RepairPlan:
    """Result of the search (BFS) phase of a per-source update.

    Attributes
    ----------
    new_distance:
        New distance for every vertex whose distance changed (vertices whose
        distance is unchanged are *absent*; unreachable vertices never appear
        here — they are listed in :attr:`disconnected`).
    new_sigma:
        New shortest-path counts for every vertex whose sigma (or distance)
        changed.  This is the sigma-affected set ``A_sigma``; it is closed
        downward in the new shortest-path DAG, which the accumulation phase
        relies on.
    affected:
        The sigma-affected set (same keys as :attr:`new_sigma`), kept as a
        set for O(1) membership tests.
    level_queues:
        Reachable affected vertices grouped by their *new* distance; the
        accumulation phase walks these from the deepest level upwards.
    disconnected:
        Vertices that became unreachable from the source (removal only).
    removed_edge_dependency:
        For removals where the removed edge ``(uH, uL)`` lay on a shortest
        path, the old dependency ``sigma[uH]/sigma[uL] * (1 + delta[uL])``
        that must be subtracted from ``uH`` and propagated upwards
        (Algorithm 2 lines 11-13 / Algorithm 7 line 16).
    high:
        The endpoint ``uH`` of the updated edge (closer to the source).
    low:
        The endpoint ``uL`` of the updated edge (farther from the source).
    """

    new_distance: Dict[Vertex, int] = field(default_factory=dict)
    new_sigma: Dict[Vertex, int] = field(default_factory=dict)
    affected: Set[Vertex] = field(default_factory=set)
    level_queues: Dict[int, List[Vertex]] = field(default_factory=dict)
    disconnected: List[Vertex] = field(default_factory=list)
    removed_edge_dependency: Optional[float] = None
    high: Optional[Vertex] = None
    low: Optional[Vertex] = None

    def enqueue(self, vertex: Vertex, level: int) -> None:
        """Register ``vertex`` as affected at ``level`` (new distance)."""
        self.level_queues.setdefault(level, []).append(vertex)

    @property
    def num_affected(self) -> int:
        """Number of sigma-affected vertices (excluding disconnections)."""
        return len(self.affected)


@dataclass
class FlatRepairPlan:
    """Slot-space, whole-array form of :class:`RepairPlan`.

    Where :class:`RepairPlan` records *changes* in dictionaries, the flat
    plan carries full length-``n`` working columns — copies of the record's
    distance and sigma columns with the repair applied — plus the affected
    set as a mask and the level queues as dense arrays.  The working columns
    make the accumulation phase's "new value or old value" overlays a plain
    array read, and the write-back a whole-slice assignment.

    Attributes
    ----------
    work_distance:
        int16 post-update distances for every slot (``-1`` unreachable);
        disconnected slots are already ``-1``.
    work_sigma:
        int64 post-update path counts for every slot.
    affected_mask:
        Boolean mask over slots of the sigma-affected set.
    affected_count:
        Population count of :attr:`affected_mask`.
    levels:
        ``(level, members)`` pairs, levels strictly ascending, members in
        the exact order the scalar search phase enqueues them (the order the
        accumulation sweep consumes).
    disconnected:
        Slots that became unreachable (removal only), in discovery order.
    removed_edge_dependency / high / low:
        As in :class:`RepairPlan`, with slot endpoints.
    """

    work_distance: np.ndarray
    work_sigma: np.ndarray
    affected_mask: np.ndarray
    affected_count: int
    levels: List[Tuple[int, np.ndarray]]
    disconnected: np.ndarray
    removed_edge_dependency: Optional[float] = None
    high: int = -1
    low: int = -1
