"""Result and statistics objects returned by the incremental framework."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.classification import UpdateCase
from repro.core.updates import EdgeUpdate


@dataclass
class SourceUpdateStats:
    """Work accounting for one (source, update) pair.

    The experiment harness aggregates these to explain speedups: sources
    classified as ``SKIP`` cost almost nothing (with the out-of-core store
    only two distances are read), while structural changes touch larger
    portions of the shortest-path DAG.
    """

    case: UpdateCase
    affected_vertices: int = 0
    touched_vertices: int = 0
    disconnected_vertices: int = 0


@dataclass
class UpdateResult:
    """Outcome of applying one edge update to the whole framework.

    Attributes
    ----------
    update:
        The edge update that was applied.
    case_counts:
        How many sources fell into each :class:`UpdateCase`.
    sources_processed:
        Total number of sources examined (equals the number of vertices).
    sources_skipped:
        Sources for which the update required no work (``dd == 0`` or both
        endpoints unreachable).
    affected_vertices:
        Total number of sigma-affected vertices summed over sources.
    touched_vertices:
        Total number of vertices whose dependency was adjusted, summed over
        sources.
    elapsed_seconds:
        Wall-clock time spent applying the update (None when not timed).
    """

    update: EdgeUpdate
    case_counts: Dict[UpdateCase, int] = field(default_factory=dict)
    sources_processed: int = 0
    sources_skipped: int = 0
    affected_vertices: int = 0
    touched_vertices: int = 0
    disconnected_vertices: int = 0
    elapsed_seconds: Optional[float] = None

    def record(self, stats: SourceUpdateStats) -> None:
        """Fold the statistics of one source into this result."""
        self.sources_processed += 1
        self.case_counts[stats.case] = self.case_counts.get(stats.case, 0) + 1
        if stats.case is UpdateCase.SKIP:
            self.sources_skipped += 1
        self.affected_vertices += stats.affected_vertices
        self.touched_vertices += stats.touched_vertices
        self.disconnected_vertices += stats.disconnected_vertices

    @property
    def skip_fraction(self) -> float:
        """Fraction of sources skipped (0.0 when nothing was processed)."""
        if self.sources_processed == 0:
            return 0.0
        return self.sources_skipped / self.sources_processed


@dataclass
class BatchResult:
    """Outcome of applying a whole batch of edge updates in one source sweep.

    The batched pipeline visits every source once, replaying the batch in
    order against its betweenness data, instead of sweeping the whole store
    once per update.  The scores it produces are identical to applying the
    updates one at a time; what changes is the I/O profile, captured here:

    Attributes
    ----------
    updates:
        The batch, in application order.
    results:
        One :class:`UpdateResult` per update, aggregating the per-source
        statistics exactly as the one-at-a-time path would (their
        ``elapsed_seconds`` is ``None``; only the batch as a whole is timed).
    elapsed_seconds:
        Wall-clock time for the whole batch (None when not timed).
    sources_loaded:
        Sources whose full ``BD[s]`` record was loaded and saved back —
        exactly once each, however long the batch.
    sources_peek_skipped:
        Sources dismissed by the distance peek alone, without ever
        materialising their record.
    """

    updates: List[EdgeUpdate] = field(default_factory=list)
    results: List[UpdateResult] = field(default_factory=list)
    elapsed_seconds: Optional[float] = None
    sources_loaded: int = 0
    sources_peek_skipped: int = 0

    @property
    def num_updates(self) -> int:
        """Number of updates in the batch."""
        return len(self.updates)

    @property
    def sources_processed(self) -> int:
        """Total (source, update) pairs examined, summed over the batch."""
        return sum(result.sources_processed for result in self.results)

    @property
    def sources_skipped(self) -> int:
        """Total (source, update) pairs skipped, summed over the batch."""
        return sum(result.sources_skipped for result in self.results)

    @property
    def skip_fraction(self) -> float:
        """Fraction of (source, update) pairs skipped across the batch."""
        processed = self.sources_processed
        if processed == 0:
            return 0.0
        return self.sources_skipped / processed

    @property
    def seconds_per_update(self) -> float:
        """Average wall-clock seconds per update in the batch."""
        if not self.updates or self.elapsed_seconds is None:
            return 0.0
        return self.elapsed_seconds / len(self.updates)
