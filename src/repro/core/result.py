"""Result and statistics objects returned by the incremental framework."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.classification import UpdateCase
from repro.core.updates import EdgeUpdate


@dataclass
class SourceUpdateStats:
    """Work accounting for one (source, update) pair.

    The experiment harness aggregates these to explain speedups: sources
    classified as ``SKIP`` cost almost nothing (with the out-of-core store
    only two distances are read), while structural changes touch larger
    portions of the shortest-path DAG.
    """

    case: UpdateCase
    affected_vertices: int = 0
    touched_vertices: int = 0
    disconnected_vertices: int = 0


@dataclass
class UpdateResult:
    """Outcome of applying one edge update to the whole framework.

    Attributes
    ----------
    update:
        The edge update that was applied.
    case_counts:
        How many sources fell into each :class:`UpdateCase`.
    sources_processed:
        Total number of sources examined (equals the number of vertices).
    sources_skipped:
        Sources for which the update required no work (``dd == 0`` or both
        endpoints unreachable).
    affected_vertices:
        Total number of sigma-affected vertices summed over sources.
    touched_vertices:
        Total number of vertices whose dependency was adjusted, summed over
        sources.
    elapsed_seconds:
        Wall-clock time spent applying the update (None when not timed).
    """

    update: EdgeUpdate
    case_counts: Dict[UpdateCase, int] = field(default_factory=dict)
    sources_processed: int = 0
    sources_skipped: int = 0
    affected_vertices: int = 0
    touched_vertices: int = 0
    disconnected_vertices: int = 0
    elapsed_seconds: Optional[float] = None

    def record(self, stats: SourceUpdateStats) -> None:
        """Fold the statistics of one source into this result."""
        self.sources_processed += 1
        self.case_counts[stats.case] = self.case_counts.get(stats.case, 0) + 1
        if stats.case is UpdateCase.SKIP:
            self.sources_skipped += 1
        self.affected_vertices += stats.affected_vertices
        self.touched_vertices += stats.touched_vertices
        self.disconnected_vertices += stats.disconnected_vertices

    @property
    def skip_fraction(self) -> float:
        """Fraction of sources skipped (0.0 when nothing was processed)."""
        if self.sources_processed == 0:
            return 0.0
        return self.sources_skipped / self.sources_processed
