"""Per-source orchestration of an incremental update (Algorithm 1).

For a single source ``s``, :func:`update_source` classifies the edge update,
runs the appropriate search-phase repair, runs the shared dependency
accumulation, folds the corrections into the global scores and finally
writes the repaired ``BD[s]`` back into the provided
:class:`~repro.algorithms.brandes.SourceData` (Step 2.2 of Figure 1).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

from repro.algorithms.brandes import SourceData
from repro.core.accumulation import accumulate_dependencies
from repro.core.addition import (
    repair_addition_same_level,
    repair_addition_structural,
)
from repro.core.classification import UpdateCase, classify
from repro.core.removal import (
    repair_removal_same_level,
    repair_removal_structural,
)
from repro.core.repair import RepairPlan
from repro.core.result import SourceUpdateStats
from repro.core.updates import EdgeUpdate
from repro.graph.graph import Graph
from repro.types import Edge, EdgeScores, Vertex, VertexScores


def update_source(
    graph: Graph,
    data: SourceData,
    update: EdgeUpdate,
    vertex_scores: VertexScores,
    edge_scores: EdgeScores,
    edge_key: Callable[[Vertex, Vertex], Edge],
    predecessors: Optional[Dict[Vertex, Set[Vertex]]] = None,
) -> SourceUpdateStats:
    """Apply ``update`` to the betweenness data of a single source.

    ``graph`` must already reflect the update.  ``data`` is mutated in place
    into the post-update ``BD[s]``; the global ``vertex_scores`` and
    ``edge_scores`` receive this source's corrections.

    ``predecessors``, when given, is this source's predecessor-list structure
    (vertex -> set of shortest-path predecessors) and is refreshed for the
    vertices whose lists may have changed.  The paper's "MP" configuration
    pays exactly this maintenance cost; the default "MO" configuration does
    not keep the structure at all (Section 3, memory optimisation).
    """
    classification = classify(graph, data, update)
    case = classification.case
    if case is UpdateCase.SKIP:
        return SourceUpdateStats(case=case)

    high = classification.high
    low = classification.low

    plan: RepairPlan
    excluded_old_edge: Optional[Tuple[Vertex, Vertex]] = None
    if case is UpdateCase.ADD_NO_STRUCTURE:
        plan = repair_addition_same_level(graph, data, high, low)
        excluded_old_edge = (high, low)
    elif case is UpdateCase.ADD_STRUCTURAL:
        plan = repair_addition_structural(graph, data, high, low)
        excluded_old_edge = (high, low)
    elif case is UpdateCase.REMOVE_NO_STRUCTURE:
        plan = repair_removal_same_level(graph, data, high, low)
    else:  # UpdateCase.REMOVE_STRUCTURAL
        plan = repair_removal_structural(graph, data, high, low)

    accumulation = accumulate_dependencies(
        graph=graph,
        source=data.source,
        data=data,
        plan=plan,
        vertex_scores=vertex_scores,
        edge_scores=edge_scores,
        edge_key=edge_key,
        excluded_old_edge=excluded_old_edge,
    )

    _write_back(data, plan, accumulation.new_delta)
    if predecessors is not None:
        _refresh_predecessors(graph, data, plan, predecessors)

    return SourceUpdateStats(
        case=case,
        affected_vertices=plan.num_affected,
        touched_vertices=accumulation.vertices_touched,
        disconnected_vertices=len(plan.disconnected),
    )


def _refresh_predecessors(
    graph: Graph,
    data: SourceData,
    plan: RepairPlan,
    predecessors: Dict[Vertex, Set[Vertex]],
) -> None:
    """Rebuild the predecessor lists invalidated by this update.

    A vertex's predecessor set changes when its own distance changed, when a
    neighbor's distance changed, or when the updated edge is incident to it
    (the ``dd == 1`` cases alter a predecessor set without any distance
    change).  ``data`` already holds the post-update distances.
    """
    stale: Set[Vertex] = set()
    for vertex in plan.new_distance:
        stale.add(vertex)
        stale.update(graph.out_neighbors(vertex))
    for vertex in plan.disconnected:
        stale.add(vertex)
        stale.update(graph.out_neighbors(vertex))
    for endpoint in (plan.high, plan.low):
        if endpoint is not None and graph.has_vertex(endpoint):
            stale.add(endpoint)

    for vertex in stale:
        level = data.distance.get(vertex)
        if level is None:
            predecessors.pop(vertex, None)
            continue
        predecessors[vertex] = {
            neighbor
            for neighbor in graph.in_neighbors(vertex)
            if data.distance.get(neighbor) == level - 1
        }


def _write_back(data: SourceData, plan: RepairPlan, new_delta) -> None:
    """Persist the repaired distances, path counts and dependencies in BD[s]."""
    for vertex, distance in plan.new_distance.items():
        data.distance[vertex] = distance
    for vertex, sigma in plan.new_sigma.items():
        data.sigma[vertex] = sigma
    for vertex, delta in new_delta.items():
        data.delta[vertex] = delta
    for vertex in plan.disconnected:
        data.distance.pop(vertex, None)
        data.sigma.pop(vertex, None)
        data.delta.pop(vertex, None)
