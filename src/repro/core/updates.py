"""Edge-update stream primitives.

The framework consumes a stream of edge updates (Figure 1, ``ES``): each
element either adds a new edge or removes an existing one, optionally with
an arrival timestamp (used by the online experiments of Section 6.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import UpdateError
from repro.types import Vertex, canonical_edge

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.graph.graph import Graph


class UpdateKind(enum.Enum):
    """Whether a stream element adds or removes an edge."""

    ADDITION = "add"
    REMOVAL = "remove"


@dataclass(frozen=True)
class EdgeUpdate:
    """A single element of the update stream.

    Attributes
    ----------
    kind:
        :class:`UpdateKind.ADDITION` or :class:`UpdateKind.REMOVAL`.
    u, v:
        Endpoints of the edge.
    timestamp:
        Optional arrival time (seconds, arbitrary epoch).  Only used by the
        online-update simulator; the algorithms ignore it.
    """

    kind: UpdateKind
    u: Vertex
    v: Vertex
    timestamp: Optional[float] = None

    @property
    def is_addition(self) -> bool:
        """True when this update adds an edge."""
        return self.kind is UpdateKind.ADDITION

    @property
    def is_removal(self) -> bool:
        """True when this update removes an edge."""
        return self.kind is UpdateKind.REMOVAL

    @property
    def endpoints(self) -> Tuple[Vertex, Vertex]:
        """The ``(u, v)`` pair."""
        return (self.u, self.v)

    @staticmethod
    def addition(u: Vertex, v: Vertex, timestamp: Optional[float] = None) -> "EdgeUpdate":
        """Convenience constructor for an edge addition."""
        return EdgeUpdate(UpdateKind.ADDITION, u, v, timestamp)

    @staticmethod
    def removal(u: Vertex, v: Vertex, timestamp: Optional[float] = None) -> "EdgeUpdate":
        """Convenience constructor for an edge removal."""
        return EdgeUpdate(UpdateKind.REMOVAL, u, v, timestamp)


def additions(edges: Iterable[Tuple[Vertex, Vertex]]) -> List[EdgeUpdate]:
    """Wrap plain ``(u, v)`` pairs as addition updates."""
    return [EdgeUpdate.addition(u, v) for u, v in edges]


def removals(edges: Iterable[Tuple[Vertex, Vertex]]) -> List[EdgeUpdate]:
    """Wrap plain ``(u, v)`` pairs as removal updates."""
    return [EdgeUpdate.removal(u, v) for u, v in edges]


def batches(
    updates: Iterable[EdgeUpdate], size: int
) -> Iterator[List[EdgeUpdate]]:
    """Chunk an update stream into consecutive batches of at most ``size``.

    Order is preserved both across and within batches, so feeding the chunks
    to :meth:`~repro.core.framework.IncrementalBetweenness.apply_updates`
    yields the same scores as applying the stream one update at a time.
    """
    if size < 1:
        raise ValueError(f"batch size must be >= 1, got {size}")
    chunk: List[EdgeUpdate] = []
    for update in updates:
        chunk.append(update)
        if len(chunk) == size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def validate_batch(
    graph: "Graph", batch: Sequence[EdgeUpdate]
) -> Dict[Vertex, int]:
    """Check a batch is applicable to ``graph``, without mutating anything.

    Raises :class:`~repro.exceptions.UpdateError` on the first invalid
    update (self loop, duplicate addition, removal of a missing edge), and
    returns the vertices the batch creates mapped to the index of the
    update that creates them.  Used by both the batched framework pipeline
    and the parallel driver, so the two always accept the same batches.

    Later updates may depend on earlier ones (re-add a removed edge, touch
    a just-born vertex), so the walk tracks the batch's net effect in an
    O(batch)-sized overlay on top of the untouched graph — no graph copy.
    """
    births: Dict[Vertex, int] = {}
    added = set()
    removed = set()

    def edge_key(u: Vertex, v: Vertex) -> Tuple[Vertex, Vertex]:
        return (u, v) if graph.directed else canonical_edge(u, v)

    def edge_exists(u: Vertex, v: Vertex) -> bool:
        key = edge_key(u, v)
        if key in added:
            return True
        if key in removed:
            return False
        return graph.has_edge(u, v)

    for index, update in enumerate(batch):
        u, v = update.endpoints
        key = edge_key(u, v)
        if update.kind is UpdateKind.ADDITION:
            if u == v:
                raise UpdateError("self loops are not supported")
            if edge_exists(u, v):
                raise UpdateError(
                    f"edge ({u!r}, {v!r}) is already in the graph "
                    f"at batch position {index}"
                )
            for vertex in (u, v):
                if vertex not in births and not graph.has_vertex(vertex):
                    births[vertex] = index
            added.add(key)
            removed.discard(key)
        elif update.kind is UpdateKind.REMOVAL:
            if not edge_exists(u, v):
                raise UpdateError(
                    f"edge ({u!r}, {v!r}) is not in the graph "
                    f"at batch position {index}"
                )
            removed.add(key)
            added.discard(key)
        else:  # pragma: no cover - defensive, enum is closed
            raise UpdateError(f"unknown update kind {update.kind!r}")
    return births


def interleave_by_timestamp(*streams: Iterable[EdgeUpdate]) -> Iterator[EdgeUpdate]:
    """Merge several update streams into one, ordered by timestamp.

    Updates without a timestamp keep their relative position at the end of
    the merged stream.
    """
    timestamped: List[EdgeUpdate] = []
    untimestamped: List[EdgeUpdate] = []
    for stream in streams:
        for update in stream:
            if update.timestamp is None:
                untimestamped.append(update)
            else:
                timestamped.append(update)
    timestamped.sort(key=lambda item: item.timestamp)
    yield from timestamped
    yield from untimestamped
