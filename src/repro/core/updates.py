"""Edge-update stream primitives.

The framework consumes a stream of edge updates (Figure 1, ``ES``): each
element either adds a new edge or removes an existing one, optionally with
an arrival timestamp (used by the online experiments of Section 6.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.types import Vertex


class UpdateKind(enum.Enum):
    """Whether a stream element adds or removes an edge."""

    ADDITION = "add"
    REMOVAL = "remove"


@dataclass(frozen=True)
class EdgeUpdate:
    """A single element of the update stream.

    Attributes
    ----------
    kind:
        :class:`UpdateKind.ADDITION` or :class:`UpdateKind.REMOVAL`.
    u, v:
        Endpoints of the edge.
    timestamp:
        Optional arrival time (seconds, arbitrary epoch).  Only used by the
        online-update simulator; the algorithms ignore it.
    """

    kind: UpdateKind
    u: Vertex
    v: Vertex
    timestamp: Optional[float] = None

    @property
    def is_addition(self) -> bool:
        """True when this update adds an edge."""
        return self.kind is UpdateKind.ADDITION

    @property
    def is_removal(self) -> bool:
        """True when this update removes an edge."""
        return self.kind is UpdateKind.REMOVAL

    @property
    def endpoints(self) -> Tuple[Vertex, Vertex]:
        """The ``(u, v)`` pair."""
        return (self.u, self.v)

    @staticmethod
    def addition(u: Vertex, v: Vertex, timestamp: Optional[float] = None) -> "EdgeUpdate":
        """Convenience constructor for an edge addition."""
        return EdgeUpdate(UpdateKind.ADDITION, u, v, timestamp)

    @staticmethod
    def removal(u: Vertex, v: Vertex, timestamp: Optional[float] = None) -> "EdgeUpdate":
        """Convenience constructor for an edge removal."""
        return EdgeUpdate(UpdateKind.REMOVAL, u, v, timestamp)


def additions(edges: Iterable[Tuple[Vertex, Vertex]]) -> List[EdgeUpdate]:
    """Wrap plain ``(u, v)`` pairs as addition updates."""
    return [EdgeUpdate.addition(u, v) for u, v in edges]


def removals(edges: Iterable[Tuple[Vertex, Vertex]]) -> List[EdgeUpdate]:
    """Wrap plain ``(u, v)`` pairs as removal updates."""
    return [EdgeUpdate.removal(u, v) for u, v in edges]


def interleave_by_timestamp(*streams: Iterable[EdgeUpdate]) -> Iterator[EdgeUpdate]:
    """Merge several update streams into one, ordered by timestamp.

    Updates without a timestamp keep their relative position at the end of
    the merged stream.
    """
    timestamped: List[EdgeUpdate] = []
    untimestamped: List[EdgeUpdate] = []
    for stream in streams:
        for update in stream:
            if update.timestamp is None:
                untimestamped.append(update)
            else:
                timestamped.append(update)
    timestamped.sort(key=lambda item: item.timestamp)
    yield from timestamped
    yield from untimestamped
