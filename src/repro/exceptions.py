"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class when they do not care about the specific
failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class GraphError(ReproError):
    """Base class for errors related to the graph substrate."""


class VertexNotFoundError(GraphError, KeyError):
    """A vertex referenced by an operation does not exist in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError, KeyError):
    """An edge referenced by an operation does not exist in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v


class EdgeExistsError(GraphError, ValueError):
    """An edge being added is already present in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is already in the graph")
        self.u = u
        self.v = v


class SelfLoopError(GraphError, ValueError):
    """Self loops are not supported by the betweenness framework."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"self loop on vertex {vertex!r} is not supported")
        self.vertex = vertex


class DirectedGraphUnsupportedError(ReproError, ValueError):
    """Raised by components that only operate on undirected graphs."""


class StorageError(ReproError):
    """Base class for errors in the out-of-core storage layer."""


class StoreClosedError(StorageError, RuntimeError):
    """An operation was attempted on a closed betweenness-data store."""


class StoreCorruptedError(StorageError, ValueError):
    """On-disk betweenness data does not match the expected layout."""


class StoreExistsError(StorageError, FileExistsError):
    """Creating a store would clobber an existing non-empty file.

    Raised instead of silently truncating; reopen the file with
    :meth:`repro.storage.disk.DiskBDStore.open` to keep its data.
    """


class StoreVersionError(StoreCorruptedError):
    """The on-disk store was written by an unsupported format version."""


class PartitionError(ReproError, ValueError):
    """Invalid partitioning of the source set across workers."""


class UpdateError(ReproError, ValueError):
    """An edge update in the stream cannot be applied to the current graph."""


class WorkerFailedError(ReproError, RuntimeError):
    """A parallel worker process died or stopped responding.

    Raised by the process executor and the shard coordinator instead of
    blocking forever on a pipe whose peer is gone.  The coordinator catches
    it internally to re-seed a replacement worker from the shard's
    checkpoint; the legacy executor propagates it to the caller.
    """


class ConfigurationError(ReproError, ValueError):
    """Invalid configuration of an experiment or framework component."""


class SubscriberError(ReproError, RuntimeError):
    """One or more event subscribers raised while handling a session event.

    The session notifies *every* subscriber before raising, and the engine
    state the event describes was already committed when dispatch started —
    so a failing subscriber can neither starve its peers of the event nor
    leave scores half-applied.  ``failures`` holds the ``(subscriber,
    exception)`` pairs in notification order; the first underlying
    exception is chained as ``__cause__``.
    """

    def __init__(self, event: object, failures: list) -> None:
        kinds = ", ".join(type(sub).__name__ for sub, _ in failures)
        super().__init__(
            f"{len(failures)} subscriber(s) raised while handling "
            f"{type(event).__name__}: {kinds}"
        )
        self.event = event
        self.failures = list(failures)
