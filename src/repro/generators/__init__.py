"""Graph and workload generators.

The paper evaluates on (a) synthetic graphs produced by a measurement-
calibrated social-graph generator and (b) real evolving graphs from the
KONECT collection.  This package provides:

* classic random-graph models (Erdős–Rényi, Barabási–Albert,
  Watts–Strogatz, power-law cluster) used for unit tests and ablations;
* :func:`synthetic_social_graph`, a power-law + triadic-closure generator
  standing in for the Sala et al. generator of the paper (heavy-tailed
  degrees, average degree ≈ 11.8, clustering ≈ 0.2);
* update-stream generators mirroring Section 6 ("Graph updates"): random
  unconnected pairs for additions, random existing edges for removals, and
  timestamped replay of the most recent edges;
* scaled-down stand-ins for the six real datasets of Table 2.
"""

from repro.generators.random_graphs import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_digraph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    powerlaw_cluster_graph,
    star_graph,
    watts_strogatz_graph,
)
from repro.generators.social import synthetic_social_graph
from repro.generators.streams import (
    EvolvingGraph,
    addition_stream,
    removal_stream,
    replay_last_edges,
    timestamped_addition_stream,
)
from repro.generators.datasets import (
    DATASET_SPECS,
    DatasetSpec,
    available_datasets,
    load_dataset,
    synthetic_suite,
)

__all__ = [
    "erdos_renyi_digraph",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "powerlaw_cluster_graph",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "grid_graph",
    "synthetic_social_graph",
    "EvolvingGraph",
    "addition_stream",
    "removal_stream",
    "replay_last_edges",
    "timestamped_addition_stream",
    "DatasetSpec",
    "DATASET_SPECS",
    "available_datasets",
    "load_dataset",
    "synthetic_suite",
]
