"""Scaled-down synthetic stand-ins for the datasets of Table 2.

The paper's experiments use four synthetic social graphs (1k to 1000k
vertices) and six real KONECT graphs (wiki-elections, slashdot, facebook,
epinions, dblp, amazon).  The real graphs cannot be downloaded in this
offline environment and the paper's sizes are far beyond what pure-Python
Brandes baselines can process in a benchmark run, so each dataset is
replaced by a *structural stand-in*: a synthetic graph whose average degree
and clustering-coefficient regime match the original (Table 2 columns AD and
CC), scaled down by a constant factor, with synthetic arrival timestamps.

This substitution preserves the property the evaluation reasons about —
Section 6.1 explains speedup differences through clustering coefficient and
diameter, not through the identity of the vertices — and is documented in
DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.exceptions import ConfigurationError
from repro.generators.random_graphs import powerlaw_cluster_graph
from repro.generators.social import synthetic_social_graph
from repro.generators.streams import EvolvingGraph
from repro.graph.components import largest_connected_component
from repro.graph.graph import Graph
from repro.utils.rng import RandomLike, ensure_rng


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one dataset stand-in.

    ``paper_vertices`` / ``paper_edges`` / ``paper_clustering`` record the
    original statistics from Table 2 (for reporting); ``default_vertices``
    and ``average_degree`` / ``clustering`` drive the generator.
    """

    name: str
    kind: str  # "synthetic" or "real"
    paper_vertices: int
    paper_edges: int
    paper_clustering: float
    default_vertices: int
    average_degree: float
    clustering: float

    def scaled(self, num_vertices: Optional[int]) -> int:
        """Vertex count to generate (the default unless overridden)."""
        return self.default_vertices if num_vertices is None else num_vertices


#: The ten datasets of Table 2 with their stand-in parameters.
DATASET_SPECS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        # Synthetic social graphs (the paper's 1k .. 1000k series).
        DatasetSpec("synthetic-1k", "synthetic", 1_000, 5_895, 0.263, 300, 11.8, 0.25),
        DatasetSpec("synthetic-10k", "synthetic", 10_000, 58_539, 0.219, 450, 11.8, 0.22),
        DatasetSpec("synthetic-100k", "synthetic", 100_000, 587_970, 0.207, 600, 11.8, 0.21),
        DatasetSpec("synthetic-1000k", "synthetic", 1_000_000, 5_896_878, 0.204, 800, 11.8, 0.20),
        # Real-graph stand-ins.
        DatasetSpec("wikielections", "real", 7_066, 100_780, 0.126, 280, 8.3, 0.13),
        DatasetSpec("slashdot", "real", 51_082, 117_377, 0.006, 380, 4.6, 0.01),
        DatasetSpec("facebook", "real", 63_392, 816_885, 0.148, 400, 12.9, 0.15),
        DatasetSpec("epinions", "real", 119_130, 704_571, 0.081, 420, 11.8, 0.08),
        DatasetSpec("dblp", "real", 1_105_171, 4_835_099, 0.648, 500, 8.7, 0.6),
        DatasetSpec("amazon", "real", 2_146_057, 5_743_145, 0.0004, 550, 3.5, 0.001),
    ]
}


def available_datasets(kind: Optional[str] = None) -> List[str]:
    """Names of the available dataset stand-ins (optionally filtered by kind)."""
    return [
        name
        for name, spec in DATASET_SPECS.items()
        if kind is None or spec.kind == kind
    ]


def load_dataset(
    name: str,
    num_vertices: Optional[int] = None,
    rng: RandomLike = None,
    as_evolving: bool = False,
):
    """Generate the stand-in graph for dataset ``name``.

    Parameters
    ----------
    name:
        One of :func:`available_datasets`.
    num_vertices:
        Override the default (scaled-down) size.
    rng:
        Seed or random generator.
    as_evolving:
        When ``True`` return an :class:`~repro.generators.streams.EvolvingGraph`
        with synthetic exponential arrival times instead of a plain graph,
        which is what the online experiments need.

    Returns
    -------
    Graph or EvolvingGraph
        The largest connected component of the generated graph (matching the
        paper's use of the LCC of every real dataset).
    """
    spec = DATASET_SPECS.get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_SPECS)}"
        )
    generator = ensure_rng(rng)
    n = spec.scaled(num_vertices)

    if spec.clustering >= 0.05:
        graph = synthetic_social_graph(
            n,
            average_degree=spec.average_degree,
            clustering=spec.clustering,
            rng=generator,
        )
    else:
        # Low-clustering graphs (slashdot, amazon): plain preferential
        # attachment without triangle closure reproduces the near-zero
        # clustering and larger diameter the paper highlights for amazon.
        edges_per_vertex = max(1, round(spec.average_degree / 2.0))
        graph = powerlaw_cluster_graph(n, edges_per_vertex, 0.0, rng=generator)

    graph = largest_connected_component(graph)
    if not as_evolving:
        return graph
    return EvolvingGraph.from_graph(graph, rng=generator)


def synthetic_suite(
    sizes: Optional[Dict[str, int]] = None, rng: RandomLike = None
) -> Dict[str, Graph]:
    """Generate the synthetic series used across the benchmarks.

    ``sizes`` maps dataset name to an overriding vertex count; by default the
    four synthetic specs are generated at their scaled-down defaults.
    """
    generator = ensure_rng(rng)
    result: Dict[str, Graph] = {}
    for name in available_datasets(kind="synthetic"):
        override = None if sizes is None else sizes.get(name)
        result[name] = load_dataset(name, num_vertices=override, rng=generator)
    return result
