"""Classic random and deterministic graph models.

These generators are implemented from scratch on top of
:class:`repro.graph.Graph` (no external graph library) and are used
throughout the test suite and in the ablation benchmarks.
"""

from __future__ import annotations

from typing import List

from repro.exceptions import ConfigurationError
from repro.graph.graph import Graph
from repro.utils.rng import RandomLike, ensure_rng


def complete_graph(n: int) -> Graph:
    """Complete graph K_n on vertices ``0 .. n-1``."""
    graph = Graph()
    for vertex in range(n):
        graph.add_vertex(vertex)
    for u in range(n):
        for v in range(u + 1, n):
            graph.add_edge(u, v)
    return graph


def path_graph(n: int) -> Graph:
    """Path graph P_n on vertices ``0 .. n-1``."""
    graph = Graph()
    for vertex in range(n):
        graph.add_vertex(vertex)
    for u in range(n - 1):
        graph.add_edge(u, u + 1)
    return graph


def cycle_graph(n: int) -> Graph:
    """Cycle graph C_n on vertices ``0 .. n-1`` (requires n >= 3)."""
    if n < 3:
        raise ConfigurationError(f"a cycle needs at least 3 vertices, got {n}")
    graph = path_graph(n)
    graph.add_edge(n - 1, 0)
    return graph


def star_graph(n: int) -> Graph:
    """Star graph with center ``0`` and ``n`` leaves ``1 .. n``."""
    graph = Graph()
    graph.add_vertex(0)
    for leaf in range(1, n + 1):
        graph.add_edge(0, leaf)
    return graph


def grid_graph(rows: int, cols: int) -> Graph:
    """2D grid graph with ``rows x cols`` vertices labelled ``(r, c)``."""
    graph = Graph()
    for r in range(rows):
        for c in range(cols):
            graph.add_vertex((r, c))
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                graph.add_edge((r, c), (r + 1, c))
            if c + 1 < cols:
                graph.add_edge((r, c), (r, c + 1))
    return graph


def erdos_renyi_graph(n: int, p: float, rng: RandomLike = None) -> Graph:
    """G(n, p) random graph."""
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"edge probability must be in [0, 1], got {p}")
    generator = ensure_rng(rng)
    graph = Graph()
    for vertex in range(n):
        graph.add_vertex(vertex)
    for u in range(n):
        for v in range(u + 1, n):
            if generator.random() < p:
                graph.add_edge(u, v)
    return graph


def erdos_renyi_digraph(n: int, p: float, rng: RandomLike = None) -> Graph:
    """Directed G(n, p): every ordered pair ``(u, v)``, ``u != v``, is an
    arc with probability ``p`` (antiparallel arcs are independent draws).

    This is the directed workload generator used by the directed
    equivalence suites and benchmarks — an extension beyond the paper's
    (undirected) experiments.
    """
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"edge probability must be in [0, 1], got {p}")
    generator = ensure_rng(rng)
    graph = Graph(directed=True)
    for vertex in range(n):
        graph.add_vertex(vertex)
    for u in range(n):
        for v in range(n):
            if u != v and generator.random() < p:
                graph.add_edge(u, v)
    return graph


def barabasi_albert_graph(n: int, m: int, rng: RandomLike = None) -> Graph:
    """Barabási–Albert preferential-attachment graph.

    Starts from a star on ``m + 1`` vertices and attaches each new vertex to
    ``m`` distinct existing vertices chosen proportionally to their degree.
    """
    if m < 1 or n < m + 1:
        raise ConfigurationError(
            f"need n >= m + 1 and m >= 1, got n={n}, m={m}"
        )
    generator = ensure_rng(rng)
    graph = star_graph(m)

    # Repeated-vertex list implements preferential attachment: each endpoint
    # appears once per incident edge, so sampling uniformly from it samples
    # vertices proportionally to degree.
    repeated: List[int] = []
    for u, v in graph.edges():
        repeated.extend((u, v))

    for new_vertex in range(m + 1, n):
        targets: set = set()
        while len(targets) < m:
            targets.add(generator.choice(repeated))
        graph.add_vertex(new_vertex)
        for target in targets:
            graph.add_edge(new_vertex, target)
            repeated.extend((new_vertex, target))
    return graph


def watts_strogatz_graph(n: int, k: int, beta: float, rng: RandomLike = None) -> Graph:
    """Watts–Strogatz small-world graph (ring of ``n`` vertices, ``k`` nearest
    neighbors, rewiring probability ``beta``)."""
    if k % 2 != 0 or k >= n:
        raise ConfigurationError(f"k must be even and < n, got k={k}, n={n}")
    if not 0.0 <= beta <= 1.0:
        raise ConfigurationError(f"beta must be in [0, 1], got {beta}")
    generator = ensure_rng(rng)
    graph = Graph()
    for vertex in range(n):
        graph.add_vertex(vertex)
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % n
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
    # Rewire each edge (u, u+offset) with probability beta.
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % n
            if generator.random() >= beta or not graph.has_edge(u, v):
                continue
            candidates = [
                w for w in range(n) if w != u and not graph.has_edge(u, w)
            ]
            if not candidates:
                continue
            graph.remove_edge(u, v)
            graph.add_edge(u, generator.choice(candidates))
    return graph


def powerlaw_cluster_graph(
    n: int, m: int, triangle_probability: float, rng: RandomLike = None
) -> Graph:
    """Holme–Kim power-law graph with tunable clustering.

    Like Barabási–Albert, but after each preferential attachment step a
    triangle is closed with probability ``triangle_probability``, which
    raises the clustering coefficient towards the values observed in social
    networks (the property the paper's synthetic generator is calibrated
    for).
    """
    if m < 1 or n < m + 1:
        raise ConfigurationError(f"need n >= m + 1 and m >= 1, got n={n}, m={m}")
    if not 0.0 <= triangle_probability <= 1.0:
        raise ConfigurationError(
            f"triangle_probability must be in [0, 1], got {triangle_probability}"
        )
    generator = ensure_rng(rng)
    graph = star_graph(m)
    repeated: List[int] = []
    for u, v in graph.edges():
        repeated.extend((u, v))

    for new_vertex in range(m + 1, n):
        graph.add_vertex(new_vertex)
        added = 0
        last_target = None
        while added < m:
            if (
                last_target is not None
                and generator.random() < triangle_probability
            ):
                # Triangle-closure step: link to a neighbor of the last target.
                candidates = [
                    w
                    for w in graph.neighbors(last_target)
                    if w != new_vertex and not graph.has_edge(new_vertex, w)
                ]
                if candidates:
                    target = generator.choice(candidates)
                    graph.add_edge(new_vertex, target)
                    repeated.extend((new_vertex, target))
                    added += 1
                    continue
            target = generator.choice(repeated)
            if target != new_vertex and not graph.has_edge(new_vertex, target):
                graph.add_edge(new_vertex, target)
                repeated.extend((new_vertex, target))
                last_target = target
                added += 1
    return graph
