"""Synthetic social-graph generator (stand-in for Sala et al. [32]).

The paper builds its synthetic datasets (1k, 10k, 100k, 1000k) with a
measurement-calibrated generator whose outputs match real social networks in
degree distribution and clustering coefficient; Table 2 shows average degree
≈ 11.8 and clustering ≈ 0.2-0.26 across all sizes.  That generator (and the
measurement data it is calibrated on) is not available offline, so this
module substitutes a Holme–Kim power-law-cluster construction tuned to hit
the same two statistics, which are the properties the evaluation actually
depends on (Section 6.1 attributes speedup differences to clustering
coefficient and diameter).
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.generators.random_graphs import powerlaw_cluster_graph
from repro.graph.graph import Graph
from repro.utils.rng import RandomLike

#: Average degree targeted by the paper's synthetic graphs (Table 2).
TARGET_AVERAGE_DEGREE = 11.8

#: Clustering coefficient regime of the paper's synthetic graphs (Table 2).
TARGET_CLUSTERING = 0.2


def synthetic_social_graph(
    n: int,
    average_degree: float = TARGET_AVERAGE_DEGREE,
    clustering: float = TARGET_CLUSTERING,
    rng: RandomLike = None,
) -> Graph:
    """Generate a synthetic social graph with ``n`` vertices.

    Parameters
    ----------
    n:
        Number of vertices.
    average_degree:
        Target average degree (the generator attaches
        ``round(average_degree / 2)`` edges per arriving vertex, so the
        realised value is close to, but not exactly, the target).
    clustering:
        Target clustering-coefficient regime, controlled through the
        triangle-closure probability of the underlying Holme–Kim process.
    rng:
        Seed or random generator.
    """
    if n < 4:
        raise ConfigurationError(f"a social graph needs at least 4 vertices, got {n}")
    edges_per_vertex = max(1, round(average_degree / 2.0))
    if n <= edges_per_vertex:
        edges_per_vertex = max(1, n - 2)
    # Empirically, the Holme–Kim process realises roughly half of its
    # triangle-closure probability as average clustering on graphs of this
    # density, so over-drive the knob (capped at 1.0).
    triangle_probability = min(1.0, 2.5 * clustering)
    return powerlaw_cluster_graph(
        n, edges_per_vertex, triangle_probability, rng=rng
    )
