"""Update-stream generators (the "Graph updates" paragraph of Section 6).

The paper constructs its update streams in three ways:

* **additions on synthetic graphs** — connect random pairs of vertices that
  are not currently connected by an edge (:func:`addition_stream`);
* **removals** — remove random existing edges on synthetic graphs, or the
  last-arrived edges on real graphs (:func:`removal_stream`,
  :func:`replay_last_edges`);
* **real arrival times** — replay edges in timestamp order, which is what
  allows the online experiments (Figure 8, Table 5) to compare update time
  against inter-arrival time (:func:`timestamped_addition_stream`).

:class:`EvolvingGraph` packages a base graph together with a timestamped
edge history so that real-graph experiments can split "the graph so far"
from "the edges still to arrive".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.updates import EdgeUpdate
from repro.exceptions import ConfigurationError
from repro.graph.graph import Graph
from repro.types import Vertex
from repro.utils.rng import RandomLike, ensure_rng


def addition_stream(
    graph: Graph, count: int, rng: RandomLike = None, max_attempts_factor: int = 100
) -> List[EdgeUpdate]:
    """Pick ``count`` random unconnected vertex pairs to add (no duplicates).

    Mirrors the paper's synthetic addition workload: "we generate the stream
    of added edges by connecting random unconnected pairs of vertices".
    """
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    generator = ensure_rng(rng)
    vertices = graph.vertex_list()
    if len(vertices) < 2:
        raise ConfigurationError("need at least two vertices to add edges")
    chosen: set = set()
    updates: List[EdgeUpdate] = []
    attempts = 0
    max_attempts = max_attempts_factor * max(count, 1)
    while len(updates) < count and attempts < max_attempts:
        attempts += 1
        u, v = generator.sample(vertices, 2)
        key = (u, v) if repr(u) <= repr(v) else (v, u)
        if graph.has_edge(u, v) or key in chosen:
            continue
        chosen.add(key)
        updates.append(EdgeUpdate.addition(u, v))
    if len(updates) < count:
        raise ConfigurationError(
            f"could not find {count} unconnected pairs (graph too dense?)"
        )
    return updates


def removal_stream(graph: Graph, count: int, rng: RandomLike = None) -> List[EdgeUpdate]:
    """Pick ``count`` random existing edges to remove (without replacement)."""
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    edges = graph.edge_list()
    if count > len(edges):
        raise ConfigurationError(
            f"cannot remove {count} edges from a graph with {len(edges)} edges"
        )
    generator = ensure_rng(rng)
    selected = generator.sample(edges, count)
    return [EdgeUpdate.removal(u, v) for u, v in selected]


def timestamped_addition_stream(
    edges: Sequence[Tuple[Vertex, Vertex, float]]
) -> List[EdgeUpdate]:
    """Wrap timestamped ``(u, v, t)`` records as an addition stream in time order."""
    ordered = sorted(edges, key=lambda record: record[2])
    return [EdgeUpdate.addition(u, v, timestamp=t) for u, v, t in ordered]


def replay_last_edges(
    history: Sequence[Tuple[Vertex, Vertex, float]], count: int, as_removals: bool = False
) -> List[EdgeUpdate]:
    """Return the last ``count`` arrived edges, as additions or removals.

    For real graphs the paper removes "the last 100 edges that are added in
    each graph"; with ``as_removals=True`` this helper produces exactly that
    stream (most recent first).
    """
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    ordered = sorted(history, key=lambda record: record[2])
    tail = ordered[-count:] if count else []
    if as_removals:
        return [EdgeUpdate.removal(u, v, timestamp=t) for u, v, t in reversed(tail)]
    return [EdgeUpdate.addition(u, v, timestamp=t) for u, v, t in tail]


@dataclass
class EvolvingGraph:
    """A graph plus the timestamped history of its edge arrivals.

    ``base_graph()`` reconstructs the graph as of a given prefix of the
    history, and ``future_updates()`` returns the remaining arrivals as an
    addition stream — the two ingredients of an online-replay experiment.
    """

    vertices: List[Vertex] = field(default_factory=list)
    history: List[Tuple[Vertex, Vertex, float]] = field(default_factory=list)

    @classmethod
    def from_graph(
        cls, graph: Graph, rng: RandomLike = None, start_time: float = 0.0,
        mean_interarrival: float = 1.0,
    ) -> "EvolvingGraph":
        """Build an evolving graph by assigning synthetic arrival times.

        Edges receive exponentially distributed inter-arrival times in a
        random order — the standard synthetic substitute when a dataset has
        no native timestamps.
        """
        generator = ensure_rng(rng)
        edges = graph.edge_list()
        generator.shuffle(edges)
        history: List[Tuple[Vertex, Vertex, float]] = []
        clock = start_time
        for u, v in edges:
            clock += generator.expovariate(1.0 / mean_interarrival)
            history.append((u, v, clock))
        return cls(vertices=graph.vertex_list(), history=history)

    @property
    def num_edges(self) -> int:
        """Total number of edges in the history."""
        return len(self.history)

    def base_graph(self, prefix: Optional[int] = None) -> Graph:
        """Graph induced by the first ``prefix`` arrivals (all when ``None``)."""
        if prefix is None:
            prefix = len(self.history)
        if not 0 <= prefix <= len(self.history):
            raise ConfigurationError(
                f"prefix must be in [0, {len(self.history)}], got {prefix}"
            )
        graph = Graph()
        for vertex in self.vertices:
            graph.add_vertex(vertex)
        for u, v, _ in self.history[:prefix]:
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
        return graph

    def future_updates(self, prefix: int) -> List[EdgeUpdate]:
        """The arrivals after the first ``prefix`` edges, as timestamped additions."""
        if not 0 <= prefix <= len(self.history):
            raise ConfigurationError(
                f"prefix must be in [0, {len(self.history)}], got {prefix}"
            )
        return [
            EdgeUpdate.addition(u, v, timestamp=t) for u, v, t in self.history[prefix:]
        ]

    def interarrival_times(self, prefix: int = 0) -> List[float]:
        """Inter-arrival times (seconds) of the arrivals after ``prefix``."""
        tail = self.history[prefix:]
        return [
            tail[i][2] - tail[i - 1][2] for i in range(1, len(tail))
        ]
