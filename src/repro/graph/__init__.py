"""Dynamic graph substrate used by every other subsystem.

The paper keeps the evolving graph itself in memory (adjacency structure)
while the per-source betweenness data lives in memory or on disk.  This
package provides that substrate: a mutable adjacency-set graph supporting
edge additions and removals, breadth-first traversals and shortest-path DAG
construction, connected components, structural metrics (average degree,
clustering coefficient, effective diameter) and simple edge-list I/O.
"""

from repro.graph.graph import Graph
from repro.graph.csr import CSRGraph
from repro.graph.components import (
    connected_components,
    is_connected,
    largest_connected_component,
)
from repro.graph.metrics import (
    GraphProfile,
    average_degree,
    clustering_coefficient,
    degree_histogram,
    effective_diameter,
    profile,
)
from repro.graph.traversal import (
    ShortestPathDAG,
    bfs_distances,
    bfs_tree,
    shortest_path_dag,
    single_source_shortest_paths,
)
from repro.graph.io import read_edge_list, write_edge_list

__all__ = [
    "Graph",
    "CSRGraph",
    "connected_components",
    "is_connected",
    "largest_connected_component",
    "GraphProfile",
    "average_degree",
    "clustering_coefficient",
    "degree_histogram",
    "effective_diameter",
    "profile",
    "ShortestPathDAG",
    "bfs_distances",
    "bfs_tree",
    "shortest_path_dag",
    "single_source_shortest_paths",
    "read_edge_list",
    "write_edge_list",
]
