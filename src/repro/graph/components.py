"""Connected components and largest-connected-component extraction.

The paper's experiments run on the largest connected component (LCC) of each
real graph to make results comparable across datasets; the same convention
is used by the dataset stand-ins in :mod:`repro.generators.datasets`.
"""

from __future__ import annotations

from collections import deque
from typing import List, Set

from repro.graph.graph import Graph
from repro.types import Vertex


def connected_components(graph: Graph) -> List[Set[Vertex]]:
    """Return the (weakly) connected components of ``graph``.

    For directed graphs edge direction is ignored — both out- and
    in-neighbors are traversed, i.e. *weak* connectivity is computed.
    (Treating a directed graph's adjacency as symmetric-by-assumption and
    following only out-links would split a weakly connected digraph into
    spurious components.)  The BFS visits out-links then in-links of every
    vertex, each in insertion order, so discovery order is deterministic.
    """
    seen: Set[Vertex] = set()
    components: List[Set[Vertex]] = []
    directed = graph.directed
    for start in graph.vertices():
        if start in seen:
            continue
        component: Set[Vertex] = {start}
        queue: deque[Vertex] = deque([start])
        seen.add(start)
        while queue:
            vertex = queue.popleft()
            neighborhoods = (
                (graph.out_neighbors(vertex), graph.in_neighbors(vertex))
                if directed
                else (graph.out_neighbors(vertex),)
            )
            for neighbors in neighborhoods:
                for neighbor in neighbors:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        component.add(neighbor)
                        queue.append(neighbor)
        components.append(component)
    return components


def is_connected(graph: Graph) -> bool:
    """Return ``True`` if the graph has exactly one connected component."""
    if graph.num_vertices == 0:
        return True
    return len(connected_components(graph)) == 1


def largest_connected_component(graph: Graph) -> Graph:
    """Return the induced subgraph on the largest connected component."""
    if graph.num_vertices == 0:
        return graph.copy()
    components = connected_components(graph)
    largest = max(components, key=len)
    return graph.subgraph(largest)
