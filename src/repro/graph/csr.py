"""Compact CSR (compressed sparse row) representation of the evolving graph.

The array-native compute kernel (:mod:`repro.core.kernel`) works on integer
vertex *slots* (assigned by :class:`repro.storage.index.VertexIndex`, the
same slots the on-disk columnar records use) instead of arbitrary hashable
labels.  :class:`CSRGraph` is the graph structure behind it:

* mutable adjacency lists of ``int`` slots for the incremental repair
  loops (append on add, remove-first-occurrence on delete — exactly the
  insertion-order semantics of :class:`repro.graph.graph.Graph`'s
  ordered-dict adjacency, so the two structures stay in lockstep when fed
  the same mutation stream and every traversal visits neighbors in the
  same order — the property that makes the ``arrays`` and ``dicts``
  framework backends bit-identical);
* compiled ``indptr`` / ``indices`` numpy arrays for the vectorized
  Brandes bootstrap, rebuilt lazily and therefore *amortized*: any number
  of edge mutations between two vectorized accesses costs a single
  O(n + m) rebuild.

The compiled form also carries per-entry edge ids (``edge_ids``), which
lets the vectorized dependency accumulation fold a whole level's
edge-betweenness contributions into a flat per-edge score array with one
``np.add.at`` instead of one dictionary update per DAG edge.

Directed graphs keep a **predecessor mirror**: a second set of adjacency
lists (and compiled ``in_indptr`` / ``in_indices`` / ``in_edge_ids``
arrays) recording in-neighbors in the same insertion order as the label
graph's ``_pred`` dictionaries.  The forward BFS walks the out-CSR and the
dependency accumulation walks the in-CSR; for undirected graphs both
mirrors are one and the same structure, so nothing changes for the
existing undirected paths (same objects, same orders, same bits).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.graph import Graph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.storage.index import VertexIndex

#: dtype of the compiled indptr/indices/edge_ids arrays.
INDEX_DTYPE = np.dtype(np.int64)


class CSRGraph:
    """Int-slot adjacency with lazily compiled CSR arrays.

    Slots are dense integers ``0 .. num_vertices - 1``; the caller (the
    kernel) owns the mapping between labels and slots.  Mutations are O(1)
    amortized on the adjacency lists and invalidate the compiled arrays;
    the next access to :meth:`compiled` rebuilds them once.

    When ``directed`` is true the successor and predecessor lists are
    distinct (``adj`` holds out-neighbors, ``in_adj`` in-neighbors); when
    false they are the *same* list objects, exactly like
    :class:`~repro.graph.graph.Graph` aliasing ``_pred`` to ``_succ``.
    """

    __slots__ = (
        "_directed",
        "_adj",
        "_in_adj",
        "_num_edges",
        "_indptr",
        "_indices",
        "_edge_ids",
        "_in_indptr",
        "_in_indices",
        "_in_edge_ids",
        "_edge_pairs",
        "_compiled",
        "rebuild_count",
    )

    def __init__(self, num_vertices: int = 0, directed: bool = False) -> None:
        self._directed = directed
        self._adj: List[List[int]] = [[] for _ in range(num_vertices)]
        # Aliasing keeps the undirected mirrors in lockstep with a single
        # update, mirroring Graph's _pred-is-_succ trick.
        self._in_adj: List[List[int]] = (
            [[] for _ in range(num_vertices)] if directed else self._adj
        )
        self._num_edges = 0
        self.rebuild_count = 0
        self._invalidate()

    @classmethod
    def from_graph(cls, graph: Graph, index: "VertexIndex") -> "CSRGraph":
        """Mirror ``graph`` into slot space using ``index``'s slot assignment.

        Every vertex of ``graph`` must already be indexed; slots the index
        knows but the graph lacks (e.g. vertices registered for another
        worker's partition) become isolated slots.  Neighbor order is the
        graph's (insertion) order, so traversals of the mirror replay the
        label graph's traversals exactly — out-lists mirror the successor
        dictionaries and, for directed graphs, in-lists the predecessor
        dictionaries.
        """
        csr = cls(len(index), directed=graph.directed)
        slot_of = {label: slot for slot, label in enumerate(index.vertices())}
        adj = csr._adj
        for label in graph.vertices():
            adj[slot_of[label]] = [slot_of[nbr] for nbr in graph.out_neighbors(label)]
        if graph.directed:
            in_adj = csr._in_adj
            for label in graph.vertices():
                in_adj[slot_of[label]] = [
                    slot_of[nbr] for nbr in graph.in_neighbors(label)
                ]
            csr._num_edges = sum(len(neighbors) for neighbors in adj)
        else:
            csr._num_edges = sum(len(neighbors) for neighbors in adj) // 2
        return csr

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def directed(self) -> bool:
        """Whether the mirror is directed."""
        return self._directed

    @property
    def num_vertices(self) -> int:
        """Number of slots (including isolated ones)."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of edges (directed edges counted individually)."""
        return self._num_edges

    # ------------------------------------------------------------------ #
    # Mutation (O(degree) worst case, order-preserving)
    # ------------------------------------------------------------------ #
    def add_vertex(self) -> int:
        """Append a new isolated slot and return it."""
        self._adj.append([])
        if self._directed:
            self._in_adj.append([])
        self._invalidate()
        return len(self._adj) - 1

    def ensure_vertices(self, count: int) -> None:
        """Grow to at least ``count`` slots (no-op when already that big)."""
        while len(self._adj) < count:
            self.add_vertex()

    def add_edge(self, i: int, j: int) -> None:
        """Add the edge ``(i, j)`` (``i -> j`` if directed; caller guarantees absence)."""
        self._adj[i].append(j)
        self._in_adj[j].append(i)
        self._num_edges += 1
        self._invalidate()

    def remove_edge(self, i: int, j: int) -> None:
        """Remove the edge ``(i, j)`` (``i -> j`` if directed; caller guarantees presence)."""
        self._adj[i].remove(j)
        self._in_adj[j].remove(i)
        self._num_edges -= 1
        self._invalidate()

    def adjacency_snapshot(self, slots: Iterable[int]) -> tuple:
        """Capture exact neighbor order of ``slots`` plus the edge count.

        Slots beyond the current capacity (labels not yet registered) are
        recorded as absent; on restore their rows are cleared, matching a
        freshly registered slot.  See :meth:`restore_adjacency`.
        """
        rows: Dict[int, Optional[tuple]] = {}
        for i in slots:
            if i < len(self._adj):
                rows[i] = (
                    list(self._adj[i]),
                    list(self._in_adj[i]) if self._directed else None,
                )
            else:
                rows[i] = None
        return rows, self._num_edges

    def restore_adjacency(self, snapshot: tuple) -> None:
        """Reinstate rows captured by :meth:`adjacency_snapshot`.

        Inverse-op rewinds are not order-exact (a re-added edge lands at
        the end of the row); batch replay restores snapshots instead so the
        mirror keeps the identical pre-batch iteration order.
        """
        rows, num_edges = snapshot
        for i, entry in rows.items():
            if i >= len(self._adj):
                continue
            if entry is None:
                self._adj[i] = []
                if self._directed:
                    self._in_adj[i] = []
                continue
            out_row, in_row = entry
            self._adj[i] = list(out_row)
            if self._directed:
                self._in_adj[i] = list(in_row)
        self._num_edges = num_edges
        self._invalidate()

    def clone(self) -> "CSRGraph":
        """Deep copy of the adjacency (compiled arrays are not carried over).

        The batch kernel rolls a clone forward through a batch to compile
        per-update snapshots without disturbing the live mirror.
        """
        other = CSRGraph(0, directed=self._directed)
        other._adj = [list(neighbors) for neighbors in self._adj]
        other._in_adj = (
            [list(parents) for parents in self._in_adj]
            if self._directed
            else other._adj
        )
        other._num_edges = self._num_edges
        return other

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def neighbors(self, i: int) -> List[int]:
        """Out-neighbors of slot ``i`` in insertion order.  Do not mutate."""
        return self._adj[i]

    def in_neighbors(self, i: int) -> List[int]:
        """In-neighbors of slot ``i`` (same list as :meth:`neighbors` when undirected)."""
        return self._in_adj[i]

    def degree(self, i: int) -> int:
        """Out-degree of slot ``i``."""
        return len(self._adj[i])

    def has_edge(self, i: int, j: int) -> bool:
        """Whether the edge ``(i, j)`` (``i -> j`` if directed) is present."""
        return j in self._adj[i]

    # ------------------------------------------------------------------ #
    # Compiled CSR arrays (lazy, amortized rebuild)
    # ------------------------------------------------------------------ #
    def compiled(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[Tuple[int, int]]]:
        """Return ``(indptr, indices, edge_ids, edge_pairs)``, rebuilding if stale.

        ``indices[indptr[i]:indptr[i + 1]]`` are the out-neighbors of slot
        ``i`` in insertion order; ``edge_ids`` maps every entry to its edge
        id, and ``edge_pairs[e]`` is the slot pair of edge ``e`` — the
        canonical ``(min, max)`` pair for undirected graphs, the oriented
        ``(tail, head)`` pair for directed ones.  Edge ids are assigned in
        first-encounter order scanning slots ascending, which matches the
        first-encounter order of :meth:`repro.graph.graph.Graph.edges` on
        the mirrored label graph.
        """
        if not self._compiled:
            self._rebuild()
        return self._indptr, self._indices, self._edge_ids, self._edge_pairs

    def compiled_in(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(in_indptr, in_indices, in_edge_ids)``, rebuilding if stale.

        ``in_indices[in_indptr[i]:in_indptr[i + 1]]`` are the in-neighbors
        of slot ``i`` in insertion order and ``in_edge_ids`` maps every
        entry ``p -> i`` to the id of that edge in :meth:`compiled`'s
        numbering.  For undirected graphs these are the *same arrays* as
        the out-CSR (shared adjacency), so existing undirected callers see
        identical objects.
        """
        if not self._compiled:
            self._rebuild()
        return self._in_indptr, self._in_indices, self._in_edge_ids

    # ------------------------------------------------------------------ #
    # Shared-memory export / attach
    # ------------------------------------------------------------------ #
    def export_compiled(self, allocator) -> Tuple[list, dict]:
        """Materialize the compiled CSR into allocator buffers.

        Returns ``(buffers, payload)``: the buffers are owned by the caller
        (release them when every attacher is done) and the payload is a
        compact picklable bundle of :class:`~repro.storage.buffers.ShmDescriptor`
        entries plus the counts needed to re-materialize the mirror —
        what crosses a pipe instead of an edge list.  Undirected graphs
        export only the out-family (the in-mirror aliases it by
        construction); directed graphs export both.
        """
        indptr, indices, edge_ids, edge_pairs = self.compiled()
        pairs = np.asarray(edge_pairs, dtype=INDEX_DTYPE).reshape(
            len(edge_pairs), 2
        )
        named = {
            "indptr": indptr,
            "indices": indices,
            "edge_ids": edge_ids,
            "edge_pairs": pairs,
        }
        if self._directed:
            in_indptr, in_indices, in_edge_ids = self.compiled_in()
            named["in_indptr"] = in_indptr
            named["in_indices"] = in_indices
            named["in_edge_ids"] = in_edge_ids
        buffers = []
        descriptors = {}
        for key, array in named.items():
            buffer = allocator.empty(array.shape, array.dtype)
            if array.size:
                buffer.array[:] = array
            buffers.append(buffer)
            descriptors[key] = buffer.descriptor().to_payload()
        payload = {
            "directed": self._directed,
            "num_vertices": self.num_vertices,
            "num_edges": self._num_edges,
            "arrays": descriptors,
        }
        return buffers, payload

    @classmethod
    def attach_compiled(cls, payload: dict) -> Tuple["CSRGraph", list]:
        """Re-materialize an exported mirror from its segment descriptors.

        The compiled arrays are attached **read-only** and preset (no
        rebuild), while the mutable adjacency lists are decoded from them —
        in CSR order, which is insertion order, so traversals replay the
        exporter's exactly.  Returns ``(csr, buffers)``; the caller closes
        the attachment buffers when done (the first mutation recompiles
        into private arrays anyway).
        """
        from repro.storage.buffers import ShmDescriptor, attach as attach_buffer

        buffers = []
        arrays = {}
        try:
            for key, entry in payload["arrays"].items():
                buffer = attach_buffer(ShmDescriptor.from_payload(entry))
                buffers.append(buffer)
                arrays[key] = buffer.array
        except Exception:
            for buffer in buffers:
                buffer.release()
            raise
        directed = bool(payload["directed"])
        n = int(payload["num_vertices"])
        csr = cls(0, directed=directed)
        indptr, indices = arrays["indptr"], arrays["indices"]
        csr._adj = [
            [int(j) for j in indices[indptr[i] : indptr[i + 1]]]
            for i in range(n)
        ]
        if directed:
            in_indptr, in_indices = arrays["in_indptr"], arrays["in_indices"]
            csr._in_adj = [
                [int(j) for j in in_indices[in_indptr[i] : in_indptr[i + 1]]]
                for i in range(n)
            ]
        else:
            csr._in_adj = csr._adj
        csr._num_edges = int(payload["num_edges"])
        csr._indptr = indptr
        csr._indices = indices
        csr._edge_ids = arrays["edge_ids"]
        csr._edge_pairs = [(int(a), int(b)) for a, b in arrays["edge_pairs"]]
        if directed:
            csr._in_indptr = arrays["in_indptr"]
            csr._in_indices = arrays["in_indices"]
            csr._in_edge_ids = arrays["in_edge_ids"]
        else:
            csr._in_indptr = indptr
            csr._in_indices = indices
            csr._in_edge_ids = arrays["edge_ids"]
        csr._compiled = True
        return csr, buffers

    def to_label_graph(self, labels: Sequence) -> Graph:
        """Order-exact label :class:`Graph` over ``labels[slot]`` naming.

        The inverse of :meth:`from_graph` for fully populated mirrors:
        adjacency (and, when directed, predecessor) iteration order is the
        slot lists' order, which :meth:`from_graph` took from the label
        graph — so a round trip reproduces the original graph's traversal
        order bit-for-bit.
        """
        succ = {
            labels[i]: [labels[j] for j in row]
            for i, row in enumerate(self._adj)
        }
        pred = (
            {
                labels[i]: [labels[j] for j in row]
                for i, row in enumerate(self._in_adj)
            }
            if self._directed
            else None
        )
        return Graph.from_adjacency_payload(
            {"succ": succ, "pred": pred}, directed=self._directed
        )

    def _invalidate(self) -> None:
        self._compiled = False
        self._indptr: Optional[np.ndarray] = None
        self._indices: Optional[np.ndarray] = None
        self._edge_ids: Optional[np.ndarray] = None
        self._in_indptr: Optional[np.ndarray] = None
        self._in_indices: Optional[np.ndarray] = None
        self._in_edge_ids: Optional[np.ndarray] = None
        self._edge_pairs: List[Tuple[int, int]] = []

    def _compile_lists(
        self, lists: List[List[int]]
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """CSR-compile one family of adjacency lists (no edge ids yet)."""
        n = len(lists)
        degrees = np.fromiter(
            (len(neighbors) for neighbors in lists), dtype=INDEX_DTYPE, count=n
        )
        indptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
        np.cumsum(degrees, out=indptr[1:])
        total = int(indptr[-1])
        indices = np.empty(total, dtype=INDEX_DTYPE)
        cursor = 0
        for neighbors in lists:
            for j in neighbors:
                indices[cursor] = j
                cursor += 1
        return indptr, indices, total

    def _rebuild(self) -> None:
        indptr, indices, total = self._compile_lists(self._adj)
        edge_ids = np.empty(total, dtype=INDEX_DTYPE)
        id_of: Dict[Tuple[int, int], int] = {}
        cursor = 0
        for i, neighbors in enumerate(self._adj):
            for j in neighbors:
                if self._directed:
                    pair = (i, j)
                else:
                    pair = (i, j) if i <= j else (j, i)
                edge_id = id_of.get(pair)
                if edge_id is None:
                    edge_id = len(id_of)
                    id_of[pair] = edge_id
                edge_ids[cursor] = edge_id
                cursor += 1
        self._indptr = indptr
        self._indices = indices
        self._edge_ids = edge_ids
        self._edge_pairs = list(id_of)
        if self._directed:
            in_indptr, in_indices, in_total = self._compile_lists(self._in_adj)
            in_edge_ids = np.empty(in_total, dtype=INDEX_DTYPE)
            cursor = 0
            for j, parents in enumerate(self._in_adj):
                for i in parents:
                    in_edge_ids[cursor] = id_of[(i, j)]
                    cursor += 1
            self._in_indptr = in_indptr
            self._in_indices = in_indices
            self._in_edge_ids = in_edge_ids
        else:
            self._in_indptr = indptr
            self._in_indices = indices
            self._in_edge_ids = edge_ids
        self._compiled = True
        self.rebuild_count += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "directed" if self._directed else "undirected"
        return f"<CSRGraph {kind} |V|={self.num_vertices} |E|={self.num_edges}>"
