"""Compact CSR (compressed sparse row) representation of the evolving graph.

The array-native compute kernel (:mod:`repro.core.kernel`) works on integer
vertex *slots* (assigned by :class:`repro.storage.index.VertexIndex`, the
same slots the on-disk columnar records use) instead of arbitrary hashable
labels.  :class:`CSRGraph` is the graph structure behind it:

* mutable adjacency lists of ``int`` slots for the incremental repair
  loops (append on add, remove-first-occurrence on delete — exactly the
  insertion-order semantics of :class:`repro.graph.graph.Graph`'s
  ordered-dict adjacency, so the two structures stay in lockstep when fed
  the same mutation stream and every traversal visits neighbors in the
  same order — the property that makes the ``arrays`` and ``dicts``
  framework backends bit-identical);
* compiled ``indptr`` / ``indices`` numpy arrays for the vectorized
  Brandes bootstrap, rebuilt lazily and therefore *amortized*: any number
  of edge mutations between two vectorized accesses costs a single
  O(n + m) rebuild.

The compiled form also carries per-directed-entry canonical edge ids
(``edge_ids``), which lets the vectorized dependency accumulation fold a
whole level's edge-betweenness contributions into a flat per-edge score
array with one ``np.add.at`` instead of one dictionary update per DAG edge.

Only undirected graphs are supported — the incremental framework itself is
undirected-only (Section 3 of the paper).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graph.graph import Graph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.storage.index import VertexIndex

#: dtype of the compiled indptr/indices/edge_ids arrays.
INDEX_DTYPE = np.dtype(np.int64)


class CSRGraph:
    """Int-slot adjacency with lazily compiled CSR arrays.

    Slots are dense integers ``0 .. num_vertices - 1``; the caller (the
    kernel) owns the mapping between labels and slots.  Mutations are O(1)
    amortized on the adjacency lists and invalidate the compiled arrays;
    the next access to :meth:`compiled` rebuilds them once.
    """

    __slots__ = (
        "_adj",
        "_num_edges",
        "_indptr",
        "_indices",
        "_edge_ids",
        "_edge_pairs",
        "_compiled",
        "rebuild_count",
    )

    def __init__(self, num_vertices: int = 0) -> None:
        self._adj: List[List[int]] = [[] for _ in range(num_vertices)]
        self._num_edges = 0
        self.rebuild_count = 0
        self._invalidate()

    @classmethod
    def from_graph(cls, graph: Graph, index: "VertexIndex") -> "CSRGraph":
        """Mirror ``graph`` into slot space using ``index``'s slot assignment.

        Every vertex of ``graph`` must already be indexed; slots the index
        knows but the graph lacks (e.g. vertices registered for another
        worker's partition) become isolated slots.  Neighbor order is the
        graph's (insertion) order, so traversals of the mirror replay the
        label graph's traversals exactly.
        """
        if graph.directed:
            raise ConfigurationError(
                "CSRGraph mirrors undirected graphs only (the incremental "
                "framework does not support directed graphs)"
            )
        csr = cls(len(index))
        slot_of = {label: slot for slot, label in enumerate(index.vertices())}
        adj = csr._adj
        for label in graph.vertices():
            adj[slot_of[label]] = [slot_of[nbr] for nbr in graph.out_neighbors(label)]
        csr._num_edges = sum(len(neighbors) for neighbors in adj) // 2
        return csr

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of slots (including isolated ones)."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._num_edges

    # ------------------------------------------------------------------ #
    # Mutation (O(degree) worst case, order-preserving)
    # ------------------------------------------------------------------ #
    def add_vertex(self) -> int:
        """Append a new isolated slot and return it."""
        self._adj.append([])
        self._invalidate()
        return len(self._adj) - 1

    def ensure_vertices(self, count: int) -> None:
        """Grow to at least ``count`` slots (no-op when already that big)."""
        while len(self._adj) < count:
            self._adj.append([])
            self._invalidate()

    def add_edge(self, i: int, j: int) -> None:
        """Add the undirected edge ``(i, j)`` (caller guarantees absence)."""
        self._adj[i].append(j)
        self._adj[j].append(i)
        self._num_edges += 1
        self._invalidate()

    def remove_edge(self, i: int, j: int) -> None:
        """Remove the undirected edge ``(i, j)`` (caller guarantees presence)."""
        self._adj[i].remove(j)
        self._adj[j].remove(i)
        self._num_edges -= 1
        self._invalidate()

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def neighbors(self, i: int) -> List[int]:
        """Neighbors of slot ``i`` in insertion order.  Do not mutate."""
        return self._adj[i]

    def degree(self, i: int) -> int:
        """Degree of slot ``i``."""
        return len(self._adj[i])

    def has_edge(self, i: int, j: int) -> bool:
        """Whether the undirected edge ``(i, j)`` is present."""
        return j in self._adj[i]

    # ------------------------------------------------------------------ #
    # Compiled CSR arrays (lazy, amortized rebuild)
    # ------------------------------------------------------------------ #
    def compiled(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[Tuple[int, int]]]:
        """Return ``(indptr, indices, edge_ids, edge_pairs)``, rebuilding if stale.

        ``indices[indptr[i]:indptr[i + 1]]`` are the neighbors of slot
        ``i`` in insertion order; ``edge_ids`` maps every directed entry to
        its canonical undirected edge id, and ``edge_pairs[e]`` is the
        canonical ``(min, max)`` slot pair of edge ``e``.  Edge ids are
        assigned in first-encounter order scanning slots ascending, which
        matches the first-encounter order of
        :meth:`repro.graph.graph.Graph.edges` on the mirrored label graph.
        """
        if not self._compiled:
            self._rebuild()
        return self._indptr, self._indices, self._edge_ids, self._edge_pairs

    def _invalidate(self) -> None:
        self._compiled = False
        self._indptr: Optional[np.ndarray] = None
        self._indices: Optional[np.ndarray] = None
        self._edge_ids: Optional[np.ndarray] = None
        self._edge_pairs: List[Tuple[int, int]] = []

    def _rebuild(self) -> None:
        n = len(self._adj)
        degrees = np.fromiter(
            (len(neighbors) for neighbors in self._adj), dtype=INDEX_DTYPE, count=n
        )
        indptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
        np.cumsum(degrees, out=indptr[1:])
        total = int(indptr[-1])
        indices = np.empty(total, dtype=INDEX_DTYPE)
        edge_ids = np.empty(total, dtype=INDEX_DTYPE)
        id_of: Dict[Tuple[int, int], int] = {}
        cursor = 0
        for i, neighbors in enumerate(self._adj):
            for j in neighbors:
                indices[cursor] = j
                pair = (i, j) if i <= j else (j, i)
                edge_id = id_of.get(pair)
                if edge_id is None:
                    edge_id = len(id_of)
                    id_of[pair] = edge_id
                edge_ids[cursor] = edge_id
                cursor += 1
        self._indptr = indptr
        self._indices = indices
        self._edge_ids = edge_ids
        self._edge_pairs = list(id_of)
        self._compiled = True
        self.rebuild_count += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CSRGraph |V|={self.num_vertices} |E|={self.num_edges}>"
