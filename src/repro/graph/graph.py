"""A mutable, unweighted graph with insertion-ordered adjacency storage.

The class supports both undirected and directed graphs.  The paper's
experiments are all undirected, but the full stack — static algorithms,
the incremental framework with either compute backend, the stores and the
parallel drivers — also operates on directed graphs, following out-links
during search and in-links during dependency accumulation as described in
Section 3 of the paper.

Design notes
------------
* Vertices are arbitrary hashable objects.
* Parallel edges and self loops are rejected: betweenness centrality over
  shortest paths is not well defined for self loops, and parallel edges do
  not change shortest-path structure.
* All mutation methods run in expected O(1) time (hash-dict operations), so
  replaying an edge stream is cheap compared to the centrality updates.
* Adjacency is stored in insertion-ordered dictionaries, so neighbor
  iteration order is *deterministic*: neighbors appear in the order their
  edges were added, and removing then re-adding an edge moves the neighbor
  to the end.  The array-native kernel
  (:class:`repro.graph.csr.CSRGraph`) replicates exactly these semantics,
  which is what makes the ``dicts`` and ``arrays`` backends of the
  framework bit-identical: both traverse neighbors in the same order, so
  every floating-point accumulation happens in the same sequence.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, KeysView, List, Optional, Set, Tuple

from repro.exceptions import (
    EdgeExistsError,
    EdgeNotFoundError,
    SelfLoopError,
    VertexNotFoundError,
)
from repro.types import Edge, Vertex, canonical_edge


class Graph:
    """Unweighted graph with O(1) edge insertion/removal.

    Parameters
    ----------
    directed:
        When ``True`` the graph is directed; edges are stored separately as
        out- and in-adjacency.  When ``False`` (default) the graph is
        undirected and the two adjacency views coincide.

    Examples
    --------
    >>> g = Graph()
    >>> g.add_edge(1, 2)
    >>> g.add_edge(2, 3)
    >>> sorted(g.neighbors(2))
    [1, 3]
    >>> g.num_vertices, g.num_edges
    (3, 2)
    """

    __slots__ = ("_directed", "_succ", "_pred")

    def __init__(self, directed: bool = False) -> None:
        self._directed = directed
        # Adjacency maps vertex -> insertion-ordered dict of neighbors
        # (values unused).  Dicts rather than sets so that iteration order
        # is deterministic and mirrorable by the CSR representation.
        self._succ: Dict[Vertex, Dict[Vertex, None]] = {}
        # For undirected graphs _pred is the same dict object as _succ, so a
        # single update keeps both views consistent.
        self._pred: Dict[Vertex, Dict[Vertex, None]] = {} if directed else self._succ

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def directed(self) -> bool:
        """Whether the graph is directed."""
        return self._directed

    @property
    def num_vertices(self) -> int:
        """Number of vertices currently in the graph."""
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        """Number of edges currently in the graph."""
        total = sum(len(nbrs) for nbrs in self._succ.values())
        return total if self._directed else total // 2

    def __len__(self) -> int:
        return self.num_vertices

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._succ

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "directed" if self._directed else "undirected"
        return f"<Graph {kind} |V|={self.num_vertices} |E|={self.num_edges}>"

    # ------------------------------------------------------------------ #
    # Vertex operations
    # ------------------------------------------------------------------ #
    def add_vertex(self, vertex: Vertex) -> bool:
        """Add ``vertex``; return ``True`` if it was not already present."""
        if vertex in self._succ:
            return False
        self._succ[vertex] = {}
        if self._directed:
            self._pred[vertex] = {}
        return True

    def remove_vertex(self, vertex: Vertex) -> None:
        """Remove ``vertex`` and all its incident edges."""
        if vertex not in self._succ:
            raise VertexNotFoundError(vertex)
        for neighbor in list(self._succ[vertex]):
            self._pred[neighbor].pop(vertex, None)
        if self._directed:
            for neighbor in list(self._pred[vertex]):
                self._succ[neighbor].pop(vertex, None)
            del self._pred[vertex]
        else:
            for neighbor in list(self._succ[vertex]):
                self._succ[neighbor].pop(vertex, None)
        del self._succ[vertex]

    def has_vertex(self, vertex: Vertex) -> bool:
        """Return ``True`` if ``vertex`` is in the graph."""
        return vertex in self._succ

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._succ)

    # ------------------------------------------------------------------ #
    # Edge operations
    # ------------------------------------------------------------------ #
    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the edge ``(u, v)``; missing endpoints are created.

        Raises
        ------
        SelfLoopError
            If ``u == v``.
        EdgeExistsError
            If the edge is already present.
        """
        if u == v:
            raise SelfLoopError(u)
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._succ[u]:
            raise EdgeExistsError(u, v)
        self._succ[u][v] = None
        self._pred[v][u] = None
        if not self._directed:
            self._succ[v][u] = None

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``(u, v)``; endpoints are kept even if isolated."""
        if u not in self._succ:
            raise VertexNotFoundError(u)
        if v not in self._succ:
            raise VertexNotFoundError(v)
        if v not in self._succ[u]:
            raise EdgeNotFoundError(u, v)
        del self._succ[u][v]
        self._pred[v].pop(u, None)
        if not self._directed:
            self._succ[v].pop(u, None)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return ``True`` if the edge ``(u, v)`` is in the graph."""
        return u in self._succ and v in self._succ[u]

    # ------------------------------------------------------------------ #
    # Adjacency snapshots (order-exact roll/rewind support)
    # ------------------------------------------------------------------ #
    def adjacency_snapshot(self, vertices: Iterable[Vertex]) -> dict:
        """Capture presence and exact adjacency *order* of ``vertices``.

        Applying an inverse update is not an order-exact rewind: re-adding
        a removed edge appends it at the end of both endpoints' neighbor
        dicts instead of its original position.  Batch replay restores
        this snapshot instead, so every source's roll starts from the
        identical pre-batch iteration order.
        """
        snap: Dict[Vertex, Optional[tuple]] = {}
        for vertex in vertices:
            if vertex in self._succ:
                snap[vertex] = (
                    dict(self._succ[vertex]),
                    dict(self._pred[vertex]) if self._directed else None,
                )
            else:
                snap[vertex] = None
        return snap

    def restore_adjacency(self, snapshot: dict) -> None:
        """Reinstate adjacency captured by :meth:`adjacency_snapshot`.

        Vertices recorded as absent are removed again (stream births that
        were rolled in); edges between a snapshotted vertex and one outside
        the snapshot must not have changed in between — batch replay always
        snapshots both endpoints of every rolled edge.
        """
        for vertex, entry in snapshot.items():
            if entry is None:
                self._succ.pop(vertex, None)
                if self._directed:
                    self._pred.pop(vertex, None)
                continue
            succ, pred = entry
            self._succ[vertex] = dict(succ)
            if self._directed:
                self._pred[vertex] = dict(pred)

    def edges(self) -> Iterator[Tuple[Vertex, Vertex]]:
        """Iterate over edges.

        For undirected graphs each edge is yielded exactly once, in
        canonical orientation.
        """
        if self._directed:
            for u, nbrs in self._succ.items():
                for v in nbrs:
                    yield (u, v)
        else:
            seen: Set[Edge] = set()
            for u, nbrs in self._succ.items():
                for v in nbrs:
                    edge = canonical_edge(u, v)
                    if edge not in seen:
                        seen.add(edge)
                        yield edge

    # ------------------------------------------------------------------ #
    # Adjacency views
    # ------------------------------------------------------------------ #
    def neighbors(self, vertex: Vertex) -> KeysView[Vertex]:
        """Neighbors of ``vertex`` (out-neighbors if directed).

        The returned view behaves like a read-only set but iterates in
        deterministic insertion order (edge-addition order, with removed
        and re-added neighbors moved to the end).
        """
        try:
            return self._succ[vertex].keys()
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def out_neighbors(self, vertex: Vertex) -> KeysView[Vertex]:
        """Successors of ``vertex`` (same as :meth:`neighbors` when undirected)."""
        return self.neighbors(vertex)

    def in_neighbors(self, vertex: Vertex) -> KeysView[Vertex]:
        """Predecessors of ``vertex`` (same as :meth:`neighbors` when undirected)."""
        try:
            return self._pred[vertex].keys()
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def degree(self, vertex: Vertex) -> int:
        """Degree of ``vertex`` (out-degree for directed graphs)."""
        return len(self.neighbors(vertex))

    def in_degree(self, vertex: Vertex) -> int:
        """In-degree of ``vertex`` (equal to degree for undirected graphs)."""
        return len(self.in_neighbors(vertex))

    # ------------------------------------------------------------------ #
    # Convenience constructors and copies
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Vertex, Vertex]],
        directed: bool = False,
        vertices: Optional[Iterable[Vertex]] = None,
    ) -> "Graph":
        """Build a graph from an iterable of edges (duplicates are ignored)."""
        graph = cls(directed=directed)
        if vertices is not None:
            for vertex in vertices:
                graph.add_vertex(vertex)
        for u, v in edges:
            if u == v or graph.has_edge(u, v):
                continue
            graph.add_edge(u, v)
        return graph

    def copy(self) -> "Graph":
        """Return an independent copy of the graph."""
        clone = Graph(directed=self._directed)
        for vertex in self._succ:
            clone.add_vertex(vertex)
        for u, v in self.edges():
            clone.add_edge(u, v)
        return clone

    def exact_copy(self) -> "Graph":
        """An independent copy preserving the exact neighbor iteration order.

        :meth:`copy` rebuilds through :meth:`edges`, which re-enumerates
        edges in canonical first-seen order — fine for a fresh instance, but
        it erases the incremental mutation history (a removed-and-re-added
        neighbor moves back from the end of the dict).  Recovery paths that
        must replay float accumulations bit-identically use this instead.
        """
        clone = Graph(directed=self._directed)
        clone._succ = {v: dict(nbrs) for v, nbrs in self._succ.items()}
        if self._directed:
            clone._pred = {v: dict(nbrs) for v, nbrs in self._pred.items()}
        else:
            clone._pred = clone._succ
        return clone

    def adjacency_payload(self) -> dict:
        """Picklable capture of the full adjacency in exact iteration order.

        The inverse of :meth:`from_adjacency_payload`.  Unlike
        ``(vertex_list(), edge_list())`` — whose rebuild canonicalizes
        neighbor order — the payload round-trips the graph *order-exactly*,
        which is what checkpoint/resume needs for bit-identical repair
        sweeps after recovery.
        """
        payload = {
            "succ": {v: list(nbrs) for v, nbrs in self._succ.items()},
            "pred": (
                {v: list(nbrs) for v, nbrs in self._pred.items()}
                if self._directed
                else None
            ),
        }
        return payload

    @classmethod
    def from_adjacency_payload(cls, payload: dict, directed: bool = False) -> "Graph":
        """Rebuild a graph captured by :meth:`adjacency_payload`, order-exact."""
        graph = cls(directed=directed)
        graph._succ = {
            v: {u: None for u in nbrs} for v, nbrs in payload["succ"].items()
        }
        if directed:
            pred = payload.get("pred") or {}
            graph._pred = {v: {u: None for u in nbrs} for v, nbrs in pred.items()}
        else:
            graph._pred = graph._succ
        return graph

    def subgraph(self, keep: Iterable[Vertex]) -> "Graph":
        """Return the induced subgraph on the vertex set ``keep``."""
        keep_set = set(keep)
        missing = keep_set - set(self._succ)
        if missing:
            raise VertexNotFoundError(next(iter(missing)))
        sub = Graph(directed=self._directed)
        for vertex in keep_set:
            sub.add_vertex(vertex)
        for u, v in self.edges():
            if u in keep_set and v in keep_set:
                sub.add_edge(u, v)
        return sub

    def vertex_list(self) -> List[Vertex]:
        """Return the vertices as a list (insertion order)."""
        return list(self._succ)

    def edge_list(self) -> List[Tuple[Vertex, Vertex]]:
        """Return the edges as a list."""
        return list(self.edges())
