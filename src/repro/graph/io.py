"""Edge-list I/O.

Real-world evolving graphs (the KONECT datasets used in the paper) are
distributed as whitespace-separated edge lists with optional timestamps.
These helpers read and write that format, preserving arrival order so that
timestamped streams can be replayed for the online experiments (Figure 8,
Table 5).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Tuple, Union

from repro.graph.graph import Graph

PathLike = Union[str, Path]

#: An edge-list record: (u, v, optional timestamp).
TimestampedEdge = Tuple[int, int, Optional[float]]


def read_edge_list(
    path: PathLike,
    directed: bool = False,
    comments: str = "#",
) -> Graph:
    """Read an edge list file into a :class:`Graph`.

    Lines starting with ``comments`` and blank lines are skipped; the first
    two whitespace-separated fields of each line are the endpoints (parsed as
    integers when possible, kept as strings otherwise); any further fields
    (weights, timestamps) are ignored for graph construction.
    """
    graph = Graph(directed=directed)
    for u, v, _ in iter_edge_records(path, comments=comments):
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v)
    return graph


def iter_edge_records(
    path: PathLike, comments: str = "#"
) -> Iterable[TimestampedEdge]:
    """Yield ``(u, v, timestamp)`` records from an edge-list file."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith(comments):
                continue
            parts = line.split()
            if len(parts) < 2:
                continue
            u = _parse_vertex(parts[0])
            v = _parse_vertex(parts[1])
            timestamp = float(parts[2]) if len(parts) >= 3 else None
            yield (u, v, timestamp)


def read_timestamped_edges(path: PathLike, comments: str = "#") -> List[TimestampedEdge]:
    """Read all ``(u, v, timestamp)`` records, sorted by timestamp when present."""
    records = list(iter_edge_records(path, comments=comments))
    if records and all(record[2] is not None for record in records):
        records.sort(key=lambda record: record[2])
    return records


def write_edge_list(
    graph: Graph,
    path: PathLike,
    header: Optional[str] = None,
) -> None:
    """Write ``graph`` as a whitespace-separated edge list."""
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def write_timestamped_edges(
    edges: Iterable[TimestampedEdge], path: PathLike, header: Optional[str] = None
) -> None:
    """Write ``(u, v, timestamp)`` records to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for u, v, timestamp in edges:
            if timestamp is None:
                handle.write(f"{u} {v}\n")
            else:
                handle.write(f"{u} {v} {timestamp}\n")


def _parse_vertex(token: str) -> object:
    """Parse a vertex token as an int when possible, else keep the string."""
    try:
        return int(token)
    except ValueError:
        return token
