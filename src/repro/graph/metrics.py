"""Structural graph metrics reported in Table 2 of the paper.

Table 2 characterises each dataset by its average degree (AD), clustering
coefficient (CC) and effective diameter (ED).  These quantities also drive
the discussion of Section 6.1 (graphs with a higher clustering coefficient
see fewer structural changes per update and hence larger speedups), so they
are first-class citizens of the analysis harness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.exceptions import DirectedGraphUnsupportedError
from repro.graph.graph import Graph
from repro.graph.traversal import bfs_distances
from repro.utils.rng import RandomLike, ensure_rng


def average_degree(graph: Graph) -> float:
    """Average vertex degree (2m/n for undirected graphs)."""
    if graph.num_vertices == 0:
        return 0.0
    factor = 1 if graph.directed else 2
    return factor * graph.num_edges / graph.num_vertices


def local_clustering(graph: Graph, vertex: object) -> float:
    """Local clustering coefficient of ``vertex`` in an undirected graph."""
    if graph.directed:
        raise DirectedGraphUnsupportedError(
            "clustering coefficient is implemented for undirected graphs only"
        )
    neighbors = list(graph.neighbors(vertex))
    k = len(neighbors)
    if k < 2:
        return 0.0
    links = 0
    neighbor_set = set(neighbors)
    for i, u in enumerate(neighbors):
        links += len(graph.neighbors(u) & neighbor_set) - (u in graph.neighbors(u))
    # Each triangle edge was counted twice (once from each endpoint).
    links //= 2
    return 2.0 * links / (k * (k - 1))


def clustering_coefficient(graph: Graph, sample_size: Optional[int] = None,
                           rng: RandomLike = None) -> float:
    """Average local clustering coefficient.

    Parameters
    ----------
    sample_size:
        When given, the coefficient is estimated from a uniform random sample
        of that many vertices; useful on larger graphs where the exact value
        is not needed.
    rng:
        Seed or generator controlling the sampling.
    """
    vertices = graph.vertex_list()
    if not vertices:
        return 0.0
    if sample_size is not None and sample_size < len(vertices):
        generator = ensure_rng(rng)
        vertices = generator.sample(vertices, sample_size)
    total = sum(local_clustering(graph, v) for v in vertices)
    return total / len(vertices)


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Return a mapping ``degree -> number of vertices with that degree``."""
    histogram: Dict[int, int] = {}
    for vertex in graph.vertices():
        degree = graph.degree(vertex)
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def effective_diameter(
    graph: Graph,
    quantile: float = 0.9,
    sample_size: Optional[int] = None,
    rng: RandomLike = None,
) -> float:
    """Effective diameter: the ``quantile`` of the pairwise distance distribution.

    The effective diameter (90th percentile of the hop distribution, with
    linear interpolation between hop counts) is the "ED" column of Table 2.
    For graphs larger than ``sample_size`` sources, distances are computed
    from a uniform sample of sources.
    """
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {quantile}")
    vertices = graph.vertex_list()
    if len(vertices) < 2:
        return 0.0
    if sample_size is not None and sample_size < len(vertices):
        generator = ensure_rng(rng)
        sources = generator.sample(vertices, sample_size)
    else:
        sources = vertices

    # Count pairs by hop distance (distance 0 / unreachable pairs excluded).
    hop_counts: Dict[int, int] = {}
    total_pairs = 0
    for source in sources:
        for target, distance in bfs_distances(graph, source).items():
            if target == source:
                continue
            hop_counts[distance] = hop_counts.get(distance, 0) + 1
            total_pairs += 1
    if total_pairs == 0:
        return 0.0

    threshold = quantile * total_pairs
    cumulative = 0
    previous_cumulative = 0
    for hops in sorted(hop_counts):
        previous_cumulative = cumulative
        cumulative += hop_counts[hops]
        if cumulative >= threshold:
            if cumulative == previous_cumulative:
                return float(hops)
            # Linear interpolation inside the hop bucket, as is customary for
            # the effective diameter (this yields fractional values like the
            # 5.47 / 7.76 reported in Table 2).
            fraction = (threshold - previous_cumulative) / (cumulative - previous_cumulative)
            return (hops - 1) + fraction
    return float(max(hop_counts))


@dataclass(frozen=True)
class GraphProfile:
    """The row format of Table 2: size and structural statistics of a graph."""

    name: str
    num_vertices: int
    num_edges: int
    average_degree: float
    clustering_coefficient: float
    effective_diameter: float

    def as_row(self) -> List[object]:
        """Return the profile as a list of Table 2 column values."""
        return [
            self.name,
            self.num_vertices,
            self.num_edges,
            round(self.average_degree, 1),
            round(self.clustering_coefficient, 3),
            round(self.effective_diameter, 2),
        ]


def profile(
    graph: Graph,
    name: str = "graph",
    sample_size: Optional[int] = None,
    rng: RandomLike = None,
) -> GraphProfile:
    """Compute the Table 2 row for ``graph``."""
    generator = ensure_rng(rng if rng is not None else 0)
    return GraphProfile(
        name=name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        average_degree=average_degree(graph),
        clustering_coefficient=clustering_coefficient(graph, sample_size, generator),
        effective_diameter=effective_diameter(graph, 0.9, sample_size, generator),
    )
