"""Breadth-first traversals and shortest-path DAG construction.

These routines underpin both the static Brandes implementations and the
brute-force oracles used in the test suite.  The :class:`ShortestPathDAG`
mirrors the per-source betweenness data the paper stores: distance from the
source, number of shortest paths, and (optionally) predecessor sets.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.exceptions import VertexNotFoundError
from repro.graph.graph import Graph
from repro.types import Vertex


def bfs_distances(graph: Graph, source: Vertex) -> Dict[Vertex, int]:
    """Return hop distances from ``source`` to every reachable vertex."""
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    distances: Dict[Vertex, int] = {source: 0}
    queue: deque[Vertex] = deque([source])
    while queue:
        vertex = queue.popleft()
        next_distance = distances[vertex] + 1
        for neighbor in graph.out_neighbors(vertex):
            if neighbor not in distances:
                distances[neighbor] = next_distance
                queue.append(neighbor)
    return distances


def bfs_tree(graph: Graph, source: Vertex) -> Dict[Vertex, Optional[Vertex]]:
    """Return a BFS tree as a child -> parent mapping (source maps to None)."""
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    parents: Dict[Vertex, Optional[Vertex]] = {source: None}
    queue: deque[Vertex] = deque([source])
    while queue:
        vertex = queue.popleft()
        for neighbor in graph.out_neighbors(vertex):
            if neighbor not in parents:
                parents[neighbor] = vertex
                queue.append(neighbor)
    return parents


@dataclass
class ShortestPathDAG:
    """Shortest-path DAG rooted at a source vertex.

    Attributes
    ----------
    source:
        The root of the DAG.
    distance:
        Hop distance from the source for every reachable vertex.
    sigma:
        Number of distinct shortest paths from the source to each vertex.
    order:
        Vertices in non-decreasing order of distance (BFS finish order),
        which is the order required for dependency accumulation.
    predecessors:
        For each vertex, the set of neighbors that lie on a shortest path
        immediately before it.  Only populated when requested: the paper's
        memory optimisation is precisely to *not* keep this structure.
    """

    source: Vertex
    distance: Dict[Vertex, int] = field(default_factory=dict)
    sigma: Dict[Vertex, int] = field(default_factory=dict)
    order: List[Vertex] = field(default_factory=list)
    predecessors: Optional[Dict[Vertex, Set[Vertex]]] = None

    def is_reachable(self, vertex: Vertex) -> bool:
        """Return ``True`` if ``vertex`` is reachable from the source."""
        return vertex in self.distance


def shortest_path_dag(
    graph: Graph, source: Vertex, keep_predecessors: bool = False
) -> ShortestPathDAG:
    """Run a BFS from ``source`` computing distances and path counts.

    Parameters
    ----------
    graph:
        The graph to traverse (out-links are followed when directed).
    source:
        Root of the traversal.
    keep_predecessors:
        When ``True`` the predecessor sets are materialised, reproducing the
        original Brandes data structures; when ``False`` (default) they are
        omitted, reproducing the paper's reduced-memory variant.
    """
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    dag = ShortestPathDAG(source=source)
    dag.distance[source] = 0
    dag.sigma[source] = 1
    if keep_predecessors:
        dag.predecessors = {source: set()}
    queue: deque[Vertex] = deque([source])
    while queue:
        vertex = queue.popleft()
        dag.order.append(vertex)
        vertex_distance = dag.distance[vertex]
        vertex_sigma = dag.sigma[vertex]
        for neighbor in graph.out_neighbors(vertex):
            if neighbor not in dag.distance:
                dag.distance[neighbor] = vertex_distance + 1
                dag.sigma[neighbor] = 0
                if keep_predecessors:
                    dag.predecessors[neighbor] = set()
                queue.append(neighbor)
            if dag.distance[neighbor] == vertex_distance + 1:
                dag.sigma[neighbor] += vertex_sigma
                if keep_predecessors:
                    dag.predecessors[neighbor].add(vertex)
    return dag


def single_source_shortest_paths(
    graph: Graph, source: Vertex, target: Vertex
) -> List[List[Vertex]]:
    """Enumerate *all* shortest paths from ``source`` to ``target``.

    This is exponential in the worst case and exists purely as a brute-force
    oracle for the test suite (validating sigma counts and betweenness on
    tiny graphs).
    """
    dag = shortest_path_dag(graph, source, keep_predecessors=True)
    if target not in dag.distance:
        return []
    if source == target:
        return [[source]]
    paths: List[List[Vertex]] = []

    def backtrack(vertex: Vertex, suffix: List[Vertex]) -> None:
        if vertex == source:
            paths.append([source] + suffix)
            return
        for pred in dag.predecessors[vertex]:
            backtrack(pred, [vertex] + suffix)

    backtrack(target, [])
    return paths


def eccentricity(graph: Graph, source: Vertex) -> int:
    """Return the eccentricity of ``source`` within its reachable set."""
    distances = bfs_distances(graph, source)
    return max(distances.values())
