"""Parallel execution, scaling models and online-update simulation.

Section 5 of the paper makes the incremental algorithm practical at scale by
exploiting its embarrassing parallelism over sources: the per-source data is
partitioned across ``p`` shared-nothing workers, each worker repairs its own
partition for every update, and partial betweenness scores are summed by a
reducer (the MapReduce embodiment of Figure 4).  Section 5.3 derives the
online-capacity model ``tU = tS * n / p + tM`` that predicts how many
workers are needed to keep up with a given edge-arrival rate.

Two embodiments are provided.  :class:`MapReduceBetweenness` is a faithful
in-process simulation: the map phase really runs the per-source incremental
updates partition by partition, per-partition times are measured, and
cluster wall-clock is derived exactly as the paper's model prescribes.
:class:`ProcessParallelBetweenness` replaces the simulation with real OS
worker processes — each owns one partition's restricted framework, the
initial Brandes phase and every update batch run concurrently, and the
reduce step merges the measured partial scores.

:class:`ShardCoordinator` promotes those anonymous partitions to first-class
**shards** with durable per-shard state under a ``shard://`` root: workers
checkpoint at a configurable cadence, the coordinator detects worker death
and re-seeds a replacement from the shard's checkpoint (replaying only the
batches it missed), and the whole ensemble can be resumed from disk alone.
"""

from repro.parallel.executor import (
    ParallelBatchReport,
    ProcessParallelBetweenness,
)
from repro.parallel.mapreduce import (
    MapReduceBetweenness,
    MapReduceUpdateReport,
    merge_partial_scores,
)
from repro.parallel.shards import ShardCoordinator
from repro.parallel.scaling import (
    OnlineCapacityModel,
    ScalingMeasurement,
    required_workers,
    strong_scaling,
    weak_scaling,
)
from repro.parallel.online import (
    OnlineDeadlineLedger,
    OnlineReplayResult,
    OnlineUpdateRecord,
    replay_online_updates_parallel,
    simulate_online_updates,
)

__all__ = [
    "MapReduceBetweenness",
    "MapReduceUpdateReport",
    "merge_partial_scores",
    "ProcessParallelBetweenness",
    "ParallelBatchReport",
    "ShardCoordinator",
    "OnlineCapacityModel",
    "ScalingMeasurement",
    "required_workers",
    "strong_scaling",
    "weak_scaling",
    "OnlineDeadlineLedger",
    "OnlineReplayResult",
    "OnlineUpdateRecord",
    "simulate_online_updates",
    "replay_online_updates_parallel",
]
