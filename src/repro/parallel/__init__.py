"""Parallel execution, scaling models and online-update simulation.

Section 5 of the paper makes the incremental algorithm practical at scale by
exploiting its embarrassing parallelism over sources: the per-source data is
partitioned across ``p`` shared-nothing workers, each worker repairs its own
partition for every update, and partial betweenness scores are summed by a
reducer (the MapReduce embodiment of Figure 4).  Section 5.3 derives the
online-capacity model ``tU = tS * n / p + tM`` that predicts how many
workers are needed to keep up with a given edge-arrival rate.

No Hadoop cluster is available in this environment, so the package provides
a faithful in-process simulation: the map phase really runs the per-source
incremental updates partition by partition (optionally in separate
processes), per-partition wall-clock times are measured, and cluster
wall-clock is derived exactly as the paper's model prescribes.
"""

from repro.parallel.mapreduce import (
    MapReduceBetweenness,
    MapReduceUpdateReport,
    merge_partial_scores,
)
from repro.parallel.scaling import (
    OnlineCapacityModel,
    ScalingMeasurement,
    required_workers,
    strong_scaling,
    weak_scaling,
)
from repro.parallel.online import (
    OnlineReplayResult,
    OnlineUpdateRecord,
    simulate_online_updates,
)

__all__ = [
    "MapReduceBetweenness",
    "MapReduceUpdateReport",
    "merge_partial_scores",
    "OnlineCapacityModel",
    "ScalingMeasurement",
    "required_workers",
    "strong_scaling",
    "weak_scaling",
    "OnlineReplayResult",
    "OnlineUpdateRecord",
    "simulate_online_updates",
]
