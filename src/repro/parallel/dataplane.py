"""Descriptor-passing dispatch plane shared by the parallel executors.

With shared memory on, the executors stop pickling update lists across
pipes.  The driver owns an **append-only update ring** — a shared
``(capacity, 3)`` int64 segment of ``(kind, u_id, v_id)`` rows — and a
**label table** interning vertex labels to dense ids.  Per batch the driver
appends the encoded rows once and broadcasts only ``(start, length)`` plus
whatever labels the batch minted; each worker re-reads its slice straight
out of the segment and rebuilds the exact same
:class:`~repro.core.updates.EdgeUpdate` objects, so scores stay
bit-identical to the pickled path by construction.

The table is replicated incrementally: driver and workers start from the
same label list and append new labels in the same order (the driver's
first-encounter order within each batch), so ids agree forever without any
synchronisation beyond the batch messages themselves.

When the ring fills it *rotates*: the driver allocates a doubled
next-generation segment and ships its descriptor inside the next batch
message; workers re-attach on receipt.  Old generations are retired but
only unlinked at close — a worker may still hold a mapping — which is
bounded: rotations are O(log total_updates).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.updates import EdgeUpdate, UpdateKind
from repro.storage.buffers import (
    Buffer,
    ShmDescriptor,
    attach,
    get_allocator,
)

#: Row encoding of one update in the ring.
KIND_ADDITION = 0
KIND_REMOVAL = 1

#: Initial ring capacity (rows); doubles on rotation.
DEFAULT_RING_CAPACITY = 4096

RING_DTYPE = np.dtype(np.int64)


class LabelTable:
    """Bidirectional label <-> dense-id interning, replicated by append order."""

    __slots__ = ("_labels", "_ids")

    def __init__(self, labels: Iterable = ()) -> None:
        self._labels: List = list(labels)
        self._ids: Dict = {label: i for i, label in enumerate(self._labels)}

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label) -> bool:
        return label in self._ids

    def labels(self) -> List:
        """The labels in id order (a copy)."""
        return list(self._labels)

    def label(self, label_id: int):
        """The label with dense id ``label_id``."""
        return self._labels[label_id]

    def id_of(self, label) -> int:
        """The dense id of ``label`` (raises ``KeyError`` when unknown)."""
        return self._ids[label]

    def intern(self, label) -> Tuple[int, bool]:
        """Id of ``label``, appending it first when new; ``(id, was_new)``."""
        existing = self._ids.get(label)
        if existing is not None:
            return existing, False
        label_id = len(self._labels)
        self._labels.append(label)
        self._ids[label] = label_id
        return label_id, True

    def extend(self, new_labels: Iterable) -> None:
        """Append labels minted by the driver, in the driver's order.

        Idempotent per label: a replacement worker spawned mid-stream is
        seeded with the driver's *current* table, which already contains
        the in-flight batch's labels — the announcement then matches the
        existing ids by construction and is skipped.
        """
        for label in new_labels:
            if label in self._ids:
                continue
            self._ids[label] = len(self._labels)
            self._labels.append(label)


def encode_batch(
    table: LabelTable, batch: Sequence[EdgeUpdate]
) -> Tuple[np.ndarray, List]:
    """Encode a batch into ring rows, interning labels as needed.

    Returns ``(rows, new_labels)`` where ``new_labels`` lists the labels
    this batch minted in first-encounter order — exactly what the workers
    must append to their replicas before decoding the rows.
    """
    rows = np.empty((len(batch), 3), dtype=RING_DTYPE)
    new_labels: List = []
    for i, update in enumerate(batch):
        u, v = update.endpoints
        u_id, u_new = table.intern(u)
        if u_new:
            new_labels.append(u)
        v_id, v_new = table.intern(v)
        if v_new:
            new_labels.append(v)
        rows[i, 0] = (
            KIND_ADDITION if update.kind is UpdateKind.ADDITION else KIND_REMOVAL
        )
        rows[i, 1] = u_id
        rows[i, 2] = v_id
    return rows, new_labels


def decode_rows(rows: np.ndarray, table: LabelTable) -> List[EdgeUpdate]:
    """Rebuild the driver's exact update objects from ring rows."""
    updates: List[EdgeUpdate] = []
    for kind, u_id, v_id in rows:
        u, v = table.label(int(u_id)), table.label(int(v_id))
        if int(kind) == KIND_ADDITION:
            updates.append(EdgeUpdate.addition(u, v))
        else:
            updates.append(EdgeUpdate.removal(u, v))
    return updates


class UpdateRing:
    """Driver-owned append-only update log in a shared segment."""

    def __init__(
        self,
        allocator=None,
        capacity: int = DEFAULT_RING_CAPACITY,
        hint: str = "ring",
    ) -> None:
        self._allocator = get_allocator(allocator or "shm", hint=hint)
        self._hint = hint
        self._generation = 0
        self._length = 0
        self._buffer = self._allocator.zeros((max(capacity, 16), 3), RING_DTYPE)
        self._retired: List[Buffer] = []

    @property
    def generation(self) -> int:
        """Current segment generation (bumps on rotation)."""
        return self._generation

    @property
    def capacity(self) -> int:
        """Row capacity of the current segment."""
        return int(self._buffer.array.shape[0])

    def payload(self) -> dict:
        """Picklable descriptor of the current segment (for worker attach)."""
        return self._buffer.descriptor(self._generation).to_payload()

    def append(self, rows: np.ndarray) -> Tuple[int, int, Optional[dict]]:
        """Append encoded rows; returns ``(start, length, rotated_payload)``.

        ``rotated_payload`` is ``None`` while the current segment had room;
        after a rotation it is the new segment's descriptor payload, which
        the driver must include in the same batch message so workers
        re-attach before reading the slice.
        """
        needed = int(rows.shape[0])
        if self._length + needed > self.capacity:
            new_capacity = max(self.capacity * 2, needed * 2)
            fresh = self._allocator.zeros((new_capacity, 3), RING_DTYPE)
            self._retired.append(self._buffer)
            self._buffer = fresh
            self._generation += 1
            self._length = 0
            rotated = self.payload()
        else:
            rotated = None
        start = self._length
        if needed:
            self._buffer.array[start : start + needed] = rows
        self._length += needed
        return start, needed, rotated

    def release(self) -> None:
        """Owner teardown: unlink the live segment and every retired one."""
        for buffer in self._retired:
            buffer.release()
        self._retired = []
        self._buffer.release()


class RingReader:
    """Worker-side view of the driver's update ring."""

    def __init__(self, payload: dict) -> None:
        self._buffer: Optional[Buffer] = None
        self._generation = -1
        self.reattach(payload)

    def reattach(self, payload: dict) -> None:
        """Attach (or switch to) the segment described by ``payload``."""
        descriptor = ShmDescriptor.from_payload(payload)
        if descriptor.generation == self._generation:
            return
        if self._buffer is not None:
            self._buffer.release()
        self._buffer = attach(descriptor)
        self._generation = descriptor.generation

    def read(self, start: int, length: int) -> np.ndarray:
        """Copy ``length`` rows at ``start`` out of the shared segment.

        The copy is deliberate: decode happens batch-by-batch and the
        driver may rotate the segment later; a worker must never hold live
        views into a log it does not own.
        """
        return np.array(self._buffer.array[start : start + length])

    def release(self) -> None:
        """Drop the mapping (never unlinks — the driver owns the log)."""
        if self._buffer is not None:
            self._buffer.release()
            self._buffer = None
