"""Real process-parallel executor for the framework (Section 5.4, measured).

:mod:`repro.parallel.mapreduce` runs every "mapper" sequentially in one
process and *simulates* a cluster through the capacity model of Section 5.3.
This module replaces the simulation with measurement: the source set is
partitioned across genuine OS processes, each owning a restricted
:class:`~repro.core.framework.IncrementalBetweenness` instance (one mapper
of Figure 4), and both the initial Brandes phase and every incremental
repair run concurrently.  The reduce step sums the partial vertex/edge
scores returned by the workers, so the merged result is identical to the
serial framework — what changes is real wall-clock time.

Workers speak a tiny message protocol over pipes:

* ``("apply", batch, adopt)`` — replay a batch of updates (batched pipeline)
  against the worker's partition; ``adopt`` lists the new vertices this
  worker takes ownership of.  Replies with the worker's
  :class:`~repro.core.result.BatchResult`.
* ``("collect",)`` — reply with the partial vertex/edge score dictionaries.
* ``("stop",)`` — shut down.

Everything crossing the pipe (graph edge lists, update batches,
``BD[.]`` snapshots, results) is plain picklable data, so both the ``fork``
and ``spawn`` start methods work.

With ``shared_memory=True`` the data plane changes shape: the driver
exports the compiled CSR graph and each worker's seed columns as named
shared-memory segments (:mod:`repro.storage.buffers`), workers *attach*
instead of unpickling a snapshot, and per-batch dispatch appends the
encoded updates once to a shared ring (:mod:`repro.parallel.dataplane`)
and sends only ``(start, length)`` descriptors.  Scores are bit-identical
either way — the workers decode the exact same update objects and replay
them through the exact same framework.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from multiprocessing.reduction import ForkingPickler
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.algorithms.brandes import SourceData
from repro.core.framework import IncrementalBetweenness
from repro.core.result import BatchResult
from repro.core.updates import EdgeUpdate, UpdateKind, batches, validate_batch
from repro.exceptions import ConfigurationError, UpdateError, WorkerFailedError
from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.parallel.dataplane import (
    LabelTable,
    RingReader,
    UpdateRing,
    decode_rows,
    encode_batch,
)
from repro.parallel.mapreduce import merge_partial_scores
from repro.storage.arrays import ArrayBDStore
from repro.storage.buffers import (
    get_allocator,
    reclaim_process_segments,
    shm_available,
)
from repro.storage.disk import DiskBDStore
from repro.storage.index import VertexIndex
from repro.storage.memory import InMemoryBDStore
from repro.storage.partition import partition_sources
from repro.types import EdgeScores, Vertex, VertexScores, validate_backend
from repro.utils.timing import Timer

PathLike = Union[str, Path]

#: Store kinds a worker can build for its partition.
WORKER_STORES = ("memory", "disk")


# --------------------------------------------------------------------------- #
# Worker process
# --------------------------------------------------------------------------- #
def _attach_worker_graph(shm: dict) -> Graph:
    """Rebuild the label graph from the driver's exported CSR segments.

    Nothing but segment descriptors crossed the pipe; the adjacency is
    decoded straight out of the shared compiled arrays (read-only attach)
    in CSR order — which is insertion order, so the rebuilt graph replays
    the driver graph's traversals exactly.
    """
    csr, buffers = CSRGraph.attach_compiled(shm["graph"])
    try:
        return csr.to_label_graph(shm["labels"])
    finally:
        for buffer in buffers:
            buffer.release()


def _build_worker_framework(payload: dict) -> IncrementalBetweenness:
    """Reconstruct this worker's graph, store and restricted framework."""
    shm = payload.get("shm")
    if shm is not None and shm.get("graph") is not None:
        graph = _attach_worker_graph(shm)
    else:
        graph = Graph(directed=payload.get("directed", False))
        for vertex in payload["vertices"]:
            graph.add_vertex(vertex)
        for u, v in payload["edges"]:
            graph.add_edge(u, v)

    sources = payload["sources"]
    store_kind = payload["store"]
    backend = payload.get("backend", "dicts")
    seed = shm.get("seed") if shm is not None else None
    if seed is not None and store_kind == "memory" and backend == "arrays":
        # The zero-copy fast path: the driver packed this partition's
        # records into shared column segments, and the columnar RAM store
        # the arrays kernel wants is exactly that layout — so the attached
        # matrices simply *are* the worker's live store.  Scores are
        # rebuilt by scanning the records in source order, the same
        # accumulation a snapshot-seeded bootstrap performs.
        store = ArrayBDStore.attach(seed, writable=True)
        return IncrementalBetweenness.from_store(
            graph, store, restricted=True, backend=backend
        )

    if store_kind == "memory":
        # The arrays backend defaults to its own columnar RAM store; the
        # dicts backend keeps the classic dict-of-records store.
        store = None if backend == "arrays" else InMemoryBDStore()
    elif store_kind == "disk":
        store = DiskBDStore(
            graph.vertex_list(), sources=sources, directed=graph.directed
        )
    else:  # pragma: no cover - validated by the driver
        raise ConfigurationError(f"unknown worker store {store_kind!r}")

    snapshot = payload["snapshot"]
    if seed is not None:
        # Other store/backend combinations decode their records out of the
        # shared seed segments in-process — same decode the pickled path
        # performs, minus the pipe transfer and the driver-side pickling.
        seed_store = ArrayBDStore.attach(seed, writable=False)
        try:
            snapshot = {s: seed_store.get(s) for s in sources}
        finally:
            seed_store.close()
    store_path = payload.get("store_path")
    if store_path is not None:
        # File-seeded bootstrap: every worker reopens the shared durable
        # store read-only-in-practice (records are only loaded, never
        # written) and pulls just its own partition's records, so nothing
        # crosses the driver→worker pipe but the path string.
        with DiskBDStore.open(store_path) as seed:
            missing = [s for s in sources if s not in seed]
            if missing:
                raise ConfigurationError(
                    f"store file {store_path} lacks records for sources "
                    f"{sorted(map(repr, missing))}"
                )
            snapshot = {s: seed.get(s) for s in sources}
    if snapshot is not None:
        return IncrementalBetweenness.from_source_data(
            graph, snapshot, store=store, restricted=True, backend=backend
        )
    return IncrementalBetweenness(
        graph, store=store, sources=sources, backend=backend
    )


def _worker_main(connection, payload: dict) -> None:
    """Entry point of one worker process (one mapper)."""
    framework = None
    ring_reader = None
    label_table = None
    try:
        shm = payload.get("shm")
        timer = Timer()
        with timer.measure():
            framework = _build_worker_framework(payload)
            if shm is not None and shm.get("ring") is not None:
                ring_reader = RingReader(shm["ring"])
                label_table = LabelTable(shm["labels"])
        connection.send(("ready", timer.total))
        while True:
            message = connection.recv()
            command = message[0]
            if command == "apply":
                _, batch, adopt = message
                cpu_start = time.process_time()
                result = framework.apply_updates(batch, adopt=adopt or None)
                cpu_seconds = time.process_time() - cpu_start
                connection.send(("applied", result, cpu_seconds))
            elif command == "apply_ring":
                _, start, length, new_labels, adopt_ids, rotated = message
                if rotated is not None:
                    ring_reader.reattach(rotated)
                if new_labels:
                    label_table.extend(new_labels)
                batch = decode_rows(ring_reader.read(start, length), label_table)
                adopt = [label_table.label(i) for i in adopt_ids or ()]
                cpu_start = time.process_time()
                result = framework.apply_updates(batch, adopt=adopt or None)
                cpu_seconds = time.process_time() - cpu_start
                connection.send(("applied", result, cpu_seconds))
            elif command == "collect":
                connection.send(
                    (
                        "scores",
                        framework.vertex_betweenness(),
                        framework.edge_betweenness(),
                    )
                )
            elif command == "stop":
                connection.send(("stopped",))
                return
            else:
                connection.send(("error", f"unknown command {command!r}"))
    except EOFError:  # driver went away; nothing left to do
        return
    except Exception as exc:  # surface worker failures to the driver
        try:
            connection.send(("error", repr(exc)))
        except (BrokenPipeError, OSError):
            pass
    finally:
        if ring_reader is not None:
            ring_reader.release()
        if framework is not None:
            framework.store.close()  # unlink the disk store's temp file
        connection.close()


# --------------------------------------------------------------------------- #
# Reports
# --------------------------------------------------------------------------- #
@dataclass
class ParallelBatchReport:
    """Outcome of one batch applied across all worker processes.

    ``worker_seconds`` are the per-worker (per-mapper) compute times as the
    workers measured them; ``elapsed_seconds`` is the driver-side wall-clock
    for the round trip, including IPC.  Cluster semantics mirror
    :class:`~repro.parallel.mapreduce.MapReduceUpdateReport`: wall-clock is
    the slowest mapper, cumulative cost is the sum.
    """

    updates: List[EdgeUpdate] = field(default_factory=list)
    worker_seconds: List[float] = field(default_factory=list)
    worker_cpu_seconds: List[float] = field(default_factory=list)
    worker_results: List[BatchResult] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def num_updates(self) -> int:
        """Number of updates in the batch."""
        return len(self.updates)

    @property
    def wall_clock_seconds(self) -> float:
        """Slowest worker's compute time (cluster wall-clock, no IPC)."""
        if not self.worker_seconds:
            return 0.0
        return max(self.worker_seconds)

    @property
    def cumulative_seconds(self) -> float:
        """Total compute across workers (the Figure 6 comparison)."""
        return sum(self.worker_seconds)

    @property
    def max_cpu_seconds(self) -> float:
        """Slowest worker's *CPU* time for the batch.

        Unlike :attr:`wall_clock_seconds` this is insensitive to how many
        physical cores the host actually has: on an oversubscribed machine
        the workers timeshare and their wall-clocks stretch, but each
        worker's CPU time still reflects only its own partition's work —
        the quantity the paper's ``tS * n/p`` term models.
        """
        if not self.worker_cpu_seconds:
            return 0.0
        return max(self.worker_cpu_seconds)

    @property
    def cumulative_cpu_seconds(self) -> float:
        """Total CPU time across workers for the batch."""
        return sum(self.worker_cpu_seconds)

    @property
    def seconds_per_update(self) -> float:
        """Driver-side wall-clock per update in the batch."""
        if not self.updates:
            return 0.0
        return self.elapsed_seconds / len(self.updates)


# --------------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------------- #
class ProcessParallelBetweenness:
    """Incremental betweenness over real worker processes.

    Parameters
    ----------
    graph:
        Initial graph, replicated into every worker (the distributed-cache
        step of Figure 4).
    num_workers:
        Number of worker processes; the source set is split into this many
        balanced contiguous partitions.
    store:
        ``"memory"`` (default) or ``"disk"`` — the per-worker ``BD`` store
        kind, i.e. the MO or DO configuration inside each mapper.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` when the
        platform offers it (cheapest) and ``spawn`` otherwise.
    source_data:
        Optional precomputed ``{source: BD[s]}`` records (for example
        ``framework.store.snapshot()`` of an existing serial instance).
        When given, workers are seeded from their slice of the snapshot
        instead of re-running the Brandes bootstrap.
    source_store_path:
        Path to a durable :class:`~repro.storage.disk.DiskBDStore` file
        covering every source.  Each worker reopens the file itself and
        loads only its partition's records, so — unlike ``source_data`` —
        no pickled snapshot crosses the process boundary.  Mutually
        exclusive with ``source_data``.
    backend:
        Compute backend each worker runs its partition on: ``"dicts"``
        (default, the classic label-keyed implementation) or ``"arrays"``
        (the CSR/flat-record kernel of :mod:`repro.core.kernel`).  Scores
        are bit-identical either way; only speed changes.
    recv_timeout:
        Optional cap in seconds on waiting for a live worker's reply.
        Worker *death* is always detected within ~50ms and raised as
        :class:`~repro.exceptions.WorkerFailedError`; the timeout
        additionally bounds how long a wedged-but-alive worker may stay
        silent.  ``None`` (default) waits as long as the worker lives — a
        big batch is not a failure.
    shared_memory:
        When true, workers attach to driver-owned shared-memory segments
        (compiled CSR graph, per-worker seed columns, the per-batch update
        ring) instead of receiving pickled copies; dispatch messages
        shrink to ``(start, length)`` descriptors.  Scores stay
        bit-identical.  The driver owns every segment and reclaims them on
        :meth:`close` — including segments of workers that died.

    Examples
    --------
    >>> from repro.graph import Graph
    >>> g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
    >>> with ProcessParallelBetweenness(g, num_workers=2) as cluster:
    ...     report = cluster.add_edge(0, 2)
    ...     scores = cluster.vertex_betweenness()
    """

    def __init__(
        self,
        graph: Graph,
        num_workers: int,
        store: str = "memory",
        start_method: Optional[str] = None,
        source_data: Optional[Dict[Vertex, SourceData]] = None,
        source_store_path: Optional[PathLike] = None,
        backend: str = "dicts",
        recv_timeout: Optional[float] = None,
        shared_memory: bool = False,
    ) -> None:
        if num_workers < 1:
            raise ConfigurationError(f"num_workers must be >= 1, got {num_workers}")
        if store not in WORKER_STORES:
            raise ConfigurationError(
                f"store must be one of {WORKER_STORES}, got {store!r}"
            )
        validate_backend(backend)
        if source_data is not None and source_store_path is not None:
            raise ConfigurationError(
                "source_data and source_store_path are mutually exclusive "
                "seeding mechanisms"
            )
        if shared_memory and not shm_available():  # pragma: no cover - linux CI
            raise ConfigurationError(
                "shared_memory=True needs multiprocessing.shared_memory, "
                "which this platform does not provide"
            )
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else "spawn"
        context = multiprocessing.get_context(start_method)

        self._graph = graph.copy()
        self._num_workers = num_workers
        self._partitions = partition_sources(self._graph.vertex_list(), num_workers)
        self._connections = []
        self._processes = []
        self._closed = False
        self._new_vertex_round_robin = 0
        self._recv_timeout = recv_timeout
        self._shared_memory = bool(shared_memory)
        self._label_table: Optional[LabelTable] = None
        self._ring: Optional[UpdateRing] = None
        self._graph_seed_buffers: List = []
        self._seed_stores: Dict[int, ArrayBDStore] = {}
        self._batch_payload_bytes: List[int] = []

        vertices = self._graph.vertex_list()
        graph_seed_payload = None
        if self._shared_memory:
            self._label_table = LabelTable(vertices)
            self._ring = UpdateRing(hint="ring")
            index = VertexIndex(vertices)
            csr = CSRGraph.from_graph(self._graph, index)
            self._graph_seed_buffers, graph_seed_payload = csr.export_compiled(
                get_allocator("shm", hint="csrg")
            )

        edges = None if self._shared_memory else self._graph.edge_list()
        try:
            for partition in self._partitions:
                sources = list(partition.sources)
                worker_id = partition.worker_id
                shm_entry = None
                if self._shared_memory:
                    seed_payload = None
                    if source_data is not None:
                        seed_store = self._pack_seed_columns(
                            worker_id, vertices, sources, source_data
                        )
                        seed_payload = seed_store.export_column_descriptors()
                    shm_entry = {
                        "labels": vertices,
                        "graph": graph_seed_payload,
                        "ring": self._ring.payload(),
                        "seed": seed_payload,
                    }
                payload = {
                    "vertices": None if self._shared_memory else vertices,
                    "edges": edges,
                    "directed": self._graph.directed,
                    "sources": sources,
                    "store": store,
                    "backend": backend,
                    "snapshot": (
                        {s: source_data[s] for s in sources}
                        if source_data is not None and not self._shared_memory
                        else None
                    ),
                    "store_path": (
                        str(source_store_path)
                        if source_store_path is not None
                        else None
                    ),
                    "shm": shm_entry,
                }
                parent_end, child_end = context.Pipe()
                process = context.Process(
                    target=_worker_main, args=(child_end, payload), daemon=True
                )
                process.start()
                child_end.close()
                self._connections.append(parent_end)
                self._processes.append(process)

            self._init_seconds = [
                self._expect(worker_id, "ready")[1]
                for worker_id in range(self._num_workers)
            ]
        except BaseException:
            self.close()
            raise

    def _pack_seed_columns(
        self,
        worker_id: int,
        vertices: List[Vertex],
        sources: List[Vertex],
        source_data: Dict[Vertex, SourceData],
    ) -> ArrayBDStore:
        """Pack one partition's seed records into owned shared segments.

        The packing reuses :class:`~repro.storage.arrays.ArrayBDStore`
        wholesale: an shm-allocated store filled in partition source order
        is, by construction, the exact bundle
        :meth:`~repro.storage.arrays.ArrayBDStore.attach` rebuilds on the
        worker side.  The driver keeps the store (it owns the segments)
        until :meth:`close` or the worker's death reclaims them.
        """
        seed_store = ArrayBDStore(
            vertices,
            capacity=len(vertices),
            sources=(),
            row_capacity=max(1, len(sources)),
            directed=self._graph.directed,
            allocator=get_allocator("shm", hint=f"seed{worker_id}"),
        )
        for source in sources:
            seed_store.put(source_data[source])
        self._seed_stores[worker_id] = seed_store
        return seed_store

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def num_workers(self) -> int:
        """Number of worker processes."""
        return self._num_workers

    @property
    def partitions(self) -> Sequence:
        """The source partitions, one per worker."""
        return tuple(self._partitions)

    @property
    def graph(self) -> Graph:
        """The driver's view of the current graph (do not mutate)."""
        return self._graph

    @property
    def init_seconds(self) -> List[float]:
        """Per-worker bootstrap times (parallel Brandes or snapshot load)."""
        return list(self._init_seconds)

    @property
    def init_wall_clock_seconds(self) -> float:
        """Bootstrap wall-clock: the slowest worker's initial phase."""
        return max(self._init_seconds) if self._init_seconds else 0.0

    @property
    def shared_memory(self) -> bool:
        """Whether the zero-copy data plane is active."""
        return self._shared_memory

    @property
    def batch_payload_bytes(self) -> List[int]:
        """Exact pickled bytes sent over the pipes per applied batch.

        Summed across workers; what the shared-memory ring shrinks by
        ~an order of magnitude versus pickling the update list per worker.
        """
        return list(self._batch_payload_bytes)

    def vertex_betweenness(self) -> VertexScores:
        """Reduced (global) vertex betweenness scores."""
        vertex_partials, _ = self._collect()
        return merge_partial_scores(vertex_partials)

    def edge_betweenness(self) -> EdgeScores:
        """Reduced (global) edge betweenness scores."""
        _, edge_partials = self._collect()
        return merge_partial_scores(edge_partials)

    def betweenness(self) -> Tuple[VertexScores, EdgeScores]:
        """Both reduced score dictionaries from a single collect round."""
        vertex_partials, edge_partials = self._collect()
        return merge_partial_scores(vertex_partials), merge_partial_scores(
            edge_partials
        )

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def add_edge(self, u: Vertex, v: Vertex) -> ParallelBatchReport:
        """Add an edge across all workers."""
        return self.apply_batch([EdgeUpdate.addition(u, v)])

    def remove_edge(self, u: Vertex, v: Vertex) -> ParallelBatchReport:
        """Remove an edge across all workers."""
        return self.apply_batch([EdgeUpdate.removal(u, v)])

    def apply(self, update: EdgeUpdate) -> ParallelBatchReport:
        """Apply a single update in parallel."""
        return self.apply_batch([update])

    def apply_batch(self, updates: Iterable[EdgeUpdate]) -> ParallelBatchReport:
        """Apply a batch of updates on every worker and reduce the timings.

        The batch is broadcast to all workers (each repairs its own source
        partition, replaying the batch in order) and vertices created by the
        batch are assigned round-robin to workers, so partitions stay
        balanced as the graph grows.
        """
        self._ensure_open()
        batch = list(updates)
        if not batch:
            return ParallelBatchReport()

        births = self._plan_batch(batch)
        adopt_per_worker: List[List[Vertex]] = [[] for _ in self._processes]
        for vertex in births:
            adopt_per_worker[
                self._new_vertex_round_robin % self._num_workers
            ].append(vertex)
            self._new_vertex_round_robin += 1

        timer = Timer()
        with timer.measure():
            sent_bytes = 0
            if self._shared_memory:
                rows, new_labels = encode_batch(self._label_table, batch)
                start, length, rotated = self._ring.append(rows)
                for worker_id, adopt in enumerate(adopt_per_worker):
                    adopt_ids = [self._label_table.id_of(v) for v in adopt]
                    sent_bytes += self._send(
                        worker_id,
                        (
                            "apply_ring",
                            start,
                            length,
                            new_labels,
                            adopt_ids,
                            rotated,
                        ),
                    )
            else:
                for worker_id, adopt in enumerate(adopt_per_worker):
                    sent_bytes += self._send(worker_id, ("apply", batch, adopt))
            self._batch_payload_bytes.append(sent_bytes)
            replies = [
                self._expect(worker_id, "applied")
                for worker_id in range(self._num_workers)
            ]

        for update in batch:  # keep the driver's graph in sync
            u, v = update.endpoints
            if update.kind is UpdateKind.ADDITION:
                self._graph.add_edge(u, v)
            else:
                self._graph.remove_edge(u, v)

        return ParallelBatchReport(
            updates=batch,
            worker_seconds=[reply[1].elapsed_seconds or 0.0 for reply in replies],
            worker_cpu_seconds=[reply[2] for reply in replies],
            worker_results=[reply[1] for reply in replies],
            elapsed_seconds=timer.total,
        )

    def process_stream(
        self, updates: Iterable[EdgeUpdate], batch_size: int = 1
    ) -> List[ParallelBatchReport]:
        """Apply a stream in consecutive batches of at most ``batch_size``."""
        return [self.apply_batch(chunk) for chunk in batches(updates, batch_size)]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for connection in self._connections:
            try:
                connection.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for connection in self._connections:
            try:
                # A worker may still be mid-batch (close() can run because
                # apply_batch raised); poll so a wedged worker cannot hang
                # shutdown — join/terminate below bounds it instead.
                if connection.poll(5.0):
                    connection.recv()
            except (EOFError, OSError):
                pass
            connection.close()
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=1.0)
        self._release_data_plane()

    def _release_data_plane(self) -> None:
        """Reclaim every shared segment the driver owns (idempotent).

        Runs after the workers are down, which covers the worker-death
        paths too: ``close()`` is called before every
        :class:`~repro.exceptions.WorkerFailedError` escapes, so segments
        seeded into a SIGKILLed worker are unlinked, not leaked.  Segments
        a *worker* created (e.g. shm sweep buffers inside a buffered disk
        store) die with an explicit reclaim sweep over the dead processes'
        names.
        """
        if not self._shared_memory:
            return
        for store in self._seed_stores.values():
            store.close()
        self._seed_stores = {}
        for buffer in self._graph_seed_buffers:
            buffer.release()
        self._graph_seed_buffers = []
        if self._ring is not None:
            self._ring.release()
            self._ring = None
        for process in self._processes:
            if process.pid is not None and not process.is_alive():
                reclaim_process_segments(process.pid)

    def __enter__(self) -> "ProcessParallelBetweenness":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _ensure_open(self) -> None:
        if self._closed:
            raise ConfigurationError("the executor has been closed")

    def _plan_batch(self, batch: List[EdgeUpdate]) -> Dict[Vertex, int]:
        """Validate the batch against the driver's graph; return new vertices.

        Workers validate again independently (through the same
        :func:`~repro.core.updates.validate_batch`), but failing here keeps
        the driver's graph and the workers consistent: nothing has been
        sent yet.
        """
        return validate_batch(self._graph, batch)

    def _collect(self) -> Tuple[List[VertexScores], List[EdgeScores]]:
        self._ensure_open()
        for worker_id in range(self._num_workers):
            self._send(worker_id, ("collect",))
        vertex_partials: List[VertexScores] = []
        edge_partials: List[EdgeScores] = []
        for worker_id in range(self._num_workers):
            message = self._expect(worker_id, "scores")
            vertex_partials.append(message[1])
            edge_partials.append(message[2])
        return vertex_partials, edge_partials

    def _send(self, worker_id: int, message) -> int:
        """Send one command; returns its exact pickled size in bytes.

        The message is pickled once here (with the same reducer
        ``Connection.send`` uses) and shipped via ``send_bytes``, so the
        dispatch-payload accounting measures precisely what crosses the
        pipe.  A dead worker surfaces as ``BrokenPipeError``; without this
        guard a death between batches would escape as a raw OS-level error
        instead of :class:`~repro.exceptions.WorkerFailedError`.
        """
        try:
            data = bytes(ForkingPickler.dumps(message))
            self._connections[worker_id].send_bytes(data)
            return len(data)
        except (BrokenPipeError, OSError) as exc:
            process = self._processes[worker_id]
            self.close()
            raise WorkerFailedError(
                f"worker {worker_id} is unreachable "
                f"(exit code {process.exitcode}): {exc}"
            ) from exc

    def _recv(self, worker_id: int):
        """Receive one message from a worker without risking a driver hang.

        A blocking ``Pipe.recv`` would wait forever on a worker that was
        SIGKILLed mid-batch (the write end of the pipe stays open in the
        driver itself, so no EOF ever arrives).  Poll in short slices and
        check process liveness between them: death is detected within
        ~50ms and surfaces as :class:`~repro.exceptions.WorkerFailedError`
        instead of a hang.
        """
        connection = self._connections[worker_id]
        process = self._processes[worker_id]
        deadline = (
            time.monotonic() + self._recv_timeout
            if self._recv_timeout is not None
            else None
        )
        while True:
            try:
                if connection.poll(0.05):
                    return connection.recv()
            except (EOFError, OSError) as exc:
                self.close()
                raise WorkerFailedError(
                    f"worker {worker_id} closed its pipe "
                    f"(exit code {process.exitcode})"
                ) from exc
            if not process.is_alive():
                # Drain a reply that raced the death before declaring it.
                try:
                    if connection.poll(0):
                        return connection.recv()
                except (EOFError, OSError):
                    pass
                self.close()
                raise WorkerFailedError(
                    f"worker {worker_id} died (exit code {process.exitcode})"
                )
            if deadline is not None and time.monotonic() > deadline:
                self.close()
                raise WorkerFailedError(
                    f"worker {worker_id} did not reply within "
                    f"{self._recv_timeout}s"
                )

    def _expect(self, worker_id: int, expected: str):
        message = self._recv(worker_id)
        if message[0] == "error":
            self.close()
            raise UpdateError(f"worker failed: {message[1]}")
        if message[0] != expected:  # pragma: no cover - protocol invariant
            self.close()
            raise UpdateError(
                f"unexpected worker reply {message[0]!r} (wanted {expected!r})"
            )
        return message
