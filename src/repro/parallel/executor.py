"""Real process-parallel executor for the framework (Section 5.4, measured).

:mod:`repro.parallel.mapreduce` runs every "mapper" sequentially in one
process and *simulates* a cluster through the capacity model of Section 5.3.
This module replaces the simulation with measurement: the source set is
partitioned across genuine OS processes, each owning a restricted
:class:`~repro.core.framework.IncrementalBetweenness` instance (one mapper
of Figure 4), and both the initial Brandes phase and every incremental
repair run concurrently.  The reduce step sums the partial vertex/edge
scores returned by the workers, so the merged result is identical to the
serial framework — what changes is real wall-clock time.

Workers speak a tiny message protocol over pipes:

* ``("apply", batch, adopt)`` — replay a batch of updates (batched pipeline)
  against the worker's partition; ``adopt`` lists the new vertices this
  worker takes ownership of.  Replies with the worker's
  :class:`~repro.core.result.BatchResult`.
* ``("collect",)`` — reply with the partial vertex/edge score dictionaries.
* ``("stop",)`` — shut down.

Everything crossing the pipe (graph edge lists, update batches,
``BD[.]`` snapshots, results) is plain picklable data, so both the ``fork``
and ``spawn`` start methods work.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.algorithms.brandes import SourceData
from repro.core.framework import IncrementalBetweenness
from repro.core.result import BatchResult
from repro.core.updates import EdgeUpdate, UpdateKind, batches, validate_batch
from repro.exceptions import ConfigurationError, UpdateError, WorkerFailedError
from repro.graph.graph import Graph
from repro.parallel.mapreduce import merge_partial_scores
from repro.storage.disk import DiskBDStore
from repro.storage.memory import InMemoryBDStore
from repro.storage.partition import partition_sources
from repro.types import EdgeScores, Vertex, VertexScores, validate_backend
from repro.utils.timing import Timer

PathLike = Union[str, Path]

#: Store kinds a worker can build for its partition.
WORKER_STORES = ("memory", "disk")


# --------------------------------------------------------------------------- #
# Worker process
# --------------------------------------------------------------------------- #
def _build_worker_framework(payload: dict) -> IncrementalBetweenness:
    """Reconstruct this worker's graph, store and restricted framework."""
    graph = Graph(directed=payload.get("directed", False))
    for vertex in payload["vertices"]:
        graph.add_vertex(vertex)
    for u, v in payload["edges"]:
        graph.add_edge(u, v)

    sources = payload["sources"]
    store_kind = payload["store"]
    backend = payload.get("backend", "dicts")
    if store_kind == "memory":
        # The arrays backend defaults to its own columnar RAM store; the
        # dicts backend keeps the classic dict-of-records store.
        store = None if backend == "arrays" else InMemoryBDStore()
    elif store_kind == "disk":
        store = DiskBDStore(
            graph.vertex_list(), sources=sources, directed=graph.directed
        )
    else:  # pragma: no cover - validated by the driver
        raise ConfigurationError(f"unknown worker store {store_kind!r}")

    snapshot = payload["snapshot"]
    store_path = payload.get("store_path")
    if store_path is not None:
        # File-seeded bootstrap: every worker reopens the shared durable
        # store read-only-in-practice (records are only loaded, never
        # written) and pulls just its own partition's records, so nothing
        # crosses the driver→worker pipe but the path string.
        with DiskBDStore.open(store_path) as seed:
            missing = [s for s in sources if s not in seed]
            if missing:
                raise ConfigurationError(
                    f"store file {store_path} lacks records for sources "
                    f"{sorted(map(repr, missing))}"
                )
            snapshot = {s: seed.get(s) for s in sources}
    if snapshot is not None:
        return IncrementalBetweenness.from_source_data(
            graph, snapshot, store=store, restricted=True, backend=backend
        )
    return IncrementalBetweenness(
        graph, store=store, sources=sources, backend=backend
    )


def _worker_main(connection, payload: dict) -> None:
    """Entry point of one worker process (one mapper)."""
    framework = None
    try:
        timer = Timer()
        with timer.measure():
            framework = _build_worker_framework(payload)
        connection.send(("ready", timer.total))
        while True:
            message = connection.recv()
            command = message[0]
            if command == "apply":
                _, batch, adopt = message
                cpu_start = time.process_time()
                result = framework.apply_updates(batch, adopt=adopt or None)
                cpu_seconds = time.process_time() - cpu_start
                connection.send(("applied", result, cpu_seconds))
            elif command == "collect":
                connection.send(
                    (
                        "scores",
                        framework.vertex_betweenness(),
                        framework.edge_betweenness(),
                    )
                )
            elif command == "stop":
                connection.send(("stopped",))
                return
            else:
                connection.send(("error", f"unknown command {command!r}"))
    except EOFError:  # driver went away; nothing left to do
        return
    except Exception as exc:  # surface worker failures to the driver
        try:
            connection.send(("error", repr(exc)))
        except (BrokenPipeError, OSError):
            pass
    finally:
        if framework is not None:
            framework.store.close()  # unlink the disk store's temp file
        connection.close()


# --------------------------------------------------------------------------- #
# Reports
# --------------------------------------------------------------------------- #
@dataclass
class ParallelBatchReport:
    """Outcome of one batch applied across all worker processes.

    ``worker_seconds`` are the per-worker (per-mapper) compute times as the
    workers measured them; ``elapsed_seconds`` is the driver-side wall-clock
    for the round trip, including IPC.  Cluster semantics mirror
    :class:`~repro.parallel.mapreduce.MapReduceUpdateReport`: wall-clock is
    the slowest mapper, cumulative cost is the sum.
    """

    updates: List[EdgeUpdate] = field(default_factory=list)
    worker_seconds: List[float] = field(default_factory=list)
    worker_cpu_seconds: List[float] = field(default_factory=list)
    worker_results: List[BatchResult] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def num_updates(self) -> int:
        """Number of updates in the batch."""
        return len(self.updates)

    @property
    def wall_clock_seconds(self) -> float:
        """Slowest worker's compute time (cluster wall-clock, no IPC)."""
        if not self.worker_seconds:
            return 0.0
        return max(self.worker_seconds)

    @property
    def cumulative_seconds(self) -> float:
        """Total compute across workers (the Figure 6 comparison)."""
        return sum(self.worker_seconds)

    @property
    def max_cpu_seconds(self) -> float:
        """Slowest worker's *CPU* time for the batch.

        Unlike :attr:`wall_clock_seconds` this is insensitive to how many
        physical cores the host actually has: on an oversubscribed machine
        the workers timeshare and their wall-clocks stretch, but each
        worker's CPU time still reflects only its own partition's work —
        the quantity the paper's ``tS * n/p`` term models.
        """
        if not self.worker_cpu_seconds:
            return 0.0
        return max(self.worker_cpu_seconds)

    @property
    def cumulative_cpu_seconds(self) -> float:
        """Total CPU time across workers for the batch."""
        return sum(self.worker_cpu_seconds)

    @property
    def seconds_per_update(self) -> float:
        """Driver-side wall-clock per update in the batch."""
        if not self.updates:
            return 0.0
        return self.elapsed_seconds / len(self.updates)


# --------------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------------- #
class ProcessParallelBetweenness:
    """Incremental betweenness over real worker processes.

    Parameters
    ----------
    graph:
        Initial graph, replicated into every worker (the distributed-cache
        step of Figure 4).
    num_workers:
        Number of worker processes; the source set is split into this many
        balanced contiguous partitions.
    store:
        ``"memory"`` (default) or ``"disk"`` — the per-worker ``BD`` store
        kind, i.e. the MO or DO configuration inside each mapper.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` when the
        platform offers it (cheapest) and ``spawn`` otherwise.
    source_data:
        Optional precomputed ``{source: BD[s]}`` records (for example
        ``framework.store.snapshot()`` of an existing serial instance).
        When given, workers are seeded from their slice of the snapshot
        instead of re-running the Brandes bootstrap.
    source_store_path:
        Path to a durable :class:`~repro.storage.disk.DiskBDStore` file
        covering every source.  Each worker reopens the file itself and
        loads only its partition's records, so — unlike ``source_data`` —
        no pickled snapshot crosses the process boundary.  Mutually
        exclusive with ``source_data``.
    backend:
        Compute backend each worker runs its partition on: ``"dicts"``
        (default, the classic label-keyed implementation) or ``"arrays"``
        (the CSR/flat-record kernel of :mod:`repro.core.kernel`).  Scores
        are bit-identical either way; only speed changes.
    recv_timeout:
        Optional cap in seconds on waiting for a live worker's reply.
        Worker *death* is always detected within ~50ms and raised as
        :class:`~repro.exceptions.WorkerFailedError`; the timeout
        additionally bounds how long a wedged-but-alive worker may stay
        silent.  ``None`` (default) waits as long as the worker lives — a
        big batch is not a failure.

    Examples
    --------
    >>> from repro.graph import Graph
    >>> g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
    >>> with ProcessParallelBetweenness(g, num_workers=2) as cluster:
    ...     report = cluster.add_edge(0, 2)
    ...     scores = cluster.vertex_betweenness()
    """

    def __init__(
        self,
        graph: Graph,
        num_workers: int,
        store: str = "memory",
        start_method: Optional[str] = None,
        source_data: Optional[Dict[Vertex, SourceData]] = None,
        source_store_path: Optional[PathLike] = None,
        backend: str = "dicts",
        recv_timeout: Optional[float] = None,
    ) -> None:
        if num_workers < 1:
            raise ConfigurationError(f"num_workers must be >= 1, got {num_workers}")
        if store not in WORKER_STORES:
            raise ConfigurationError(
                f"store must be one of {WORKER_STORES}, got {store!r}"
            )
        validate_backend(backend)
        if source_data is not None and source_store_path is not None:
            raise ConfigurationError(
                "source_data and source_store_path are mutually exclusive "
                "seeding mechanisms"
            )
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else "spawn"
        context = multiprocessing.get_context(start_method)

        self._graph = graph.copy()
        self._num_workers = num_workers
        self._partitions = partition_sources(self._graph.vertex_list(), num_workers)
        self._connections = []
        self._processes = []
        self._closed = False
        self._new_vertex_round_robin = 0
        self._recv_timeout = recv_timeout

        vertices = self._graph.vertex_list()
        edges = self._graph.edge_list()
        for partition in self._partitions:
            sources = list(partition.sources)
            payload = {
                "vertices": vertices,
                "edges": edges,
                "directed": self._graph.directed,
                "sources": sources,
                "store": store,
                "backend": backend,
                "snapshot": (
                    {s: source_data[s] for s in sources}
                    if source_data is not None
                    else None
                ),
                "store_path": (
                    str(source_store_path)
                    if source_store_path is not None
                    else None
                ),
            }
            parent_end, child_end = context.Pipe()
            process = context.Process(
                target=_worker_main, args=(child_end, payload), daemon=True
            )
            process.start()
            child_end.close()
            self._connections.append(parent_end)
            self._processes.append(process)

        self._init_seconds = [
            self._expect(worker_id, "ready")[1]
            for worker_id in range(self._num_workers)
        ]

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def num_workers(self) -> int:
        """Number of worker processes."""
        return self._num_workers

    @property
    def partitions(self) -> Sequence:
        """The source partitions, one per worker."""
        return tuple(self._partitions)

    @property
    def graph(self) -> Graph:
        """The driver's view of the current graph (do not mutate)."""
        return self._graph

    @property
    def init_seconds(self) -> List[float]:
        """Per-worker bootstrap times (parallel Brandes or snapshot load)."""
        return list(self._init_seconds)

    @property
    def init_wall_clock_seconds(self) -> float:
        """Bootstrap wall-clock: the slowest worker's initial phase."""
        return max(self._init_seconds) if self._init_seconds else 0.0

    def vertex_betweenness(self) -> VertexScores:
        """Reduced (global) vertex betweenness scores."""
        vertex_partials, _ = self._collect()
        return merge_partial_scores(vertex_partials)

    def edge_betweenness(self) -> EdgeScores:
        """Reduced (global) edge betweenness scores."""
        _, edge_partials = self._collect()
        return merge_partial_scores(edge_partials)

    def betweenness(self) -> Tuple[VertexScores, EdgeScores]:
        """Both reduced score dictionaries from a single collect round."""
        vertex_partials, edge_partials = self._collect()
        return merge_partial_scores(vertex_partials), merge_partial_scores(
            edge_partials
        )

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def add_edge(self, u: Vertex, v: Vertex) -> ParallelBatchReport:
        """Add an edge across all workers."""
        return self.apply_batch([EdgeUpdate.addition(u, v)])

    def remove_edge(self, u: Vertex, v: Vertex) -> ParallelBatchReport:
        """Remove an edge across all workers."""
        return self.apply_batch([EdgeUpdate.removal(u, v)])

    def apply(self, update: EdgeUpdate) -> ParallelBatchReport:
        """Apply a single update in parallel."""
        return self.apply_batch([update])

    def apply_batch(self, updates: Iterable[EdgeUpdate]) -> ParallelBatchReport:
        """Apply a batch of updates on every worker and reduce the timings.

        The batch is broadcast to all workers (each repairs its own source
        partition, replaying the batch in order) and vertices created by the
        batch are assigned round-robin to workers, so partitions stay
        balanced as the graph grows.
        """
        self._ensure_open()
        batch = list(updates)
        if not batch:
            return ParallelBatchReport()

        births = self._plan_batch(batch)
        adopt_per_worker: List[List[Vertex]] = [[] for _ in self._processes]
        for vertex in births:
            adopt_per_worker[
                self._new_vertex_round_robin % self._num_workers
            ].append(vertex)
            self._new_vertex_round_robin += 1

        timer = Timer()
        with timer.measure():
            for worker_id, adopt in enumerate(adopt_per_worker):
                self._send(worker_id, ("apply", batch, adopt))
            replies = [
                self._expect(worker_id, "applied")
                for worker_id in range(self._num_workers)
            ]

        for update in batch:  # keep the driver's graph in sync
            u, v = update.endpoints
            if update.kind is UpdateKind.ADDITION:
                self._graph.add_edge(u, v)
            else:
                self._graph.remove_edge(u, v)

        return ParallelBatchReport(
            updates=batch,
            worker_seconds=[reply[1].elapsed_seconds or 0.0 for reply in replies],
            worker_cpu_seconds=[reply[2] for reply in replies],
            worker_results=[reply[1] for reply in replies],
            elapsed_seconds=timer.total,
        )

    def process_stream(
        self, updates: Iterable[EdgeUpdate], batch_size: int = 1
    ) -> List[ParallelBatchReport]:
        """Apply a stream in consecutive batches of at most ``batch_size``."""
        return [self.apply_batch(chunk) for chunk in batches(updates, batch_size)]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for connection in self._connections:
            try:
                connection.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for connection in self._connections:
            try:
                # A worker may still be mid-batch (close() can run because
                # apply_batch raised); poll so a wedged worker cannot hang
                # shutdown — join/terminate below bounds it instead.
                if connection.poll(5.0):
                    connection.recv()
            except (EOFError, OSError):
                pass
            connection.close()
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=1.0)

    def __enter__(self) -> "ProcessParallelBetweenness":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _ensure_open(self) -> None:
        if self._closed:
            raise ConfigurationError("the executor has been closed")

    def _plan_batch(self, batch: List[EdgeUpdate]) -> Dict[Vertex, int]:
        """Validate the batch against the driver's graph; return new vertices.

        Workers validate again independently (through the same
        :func:`~repro.core.updates.validate_batch`), but failing here keeps
        the driver's graph and the workers consistent: nothing has been
        sent yet.
        """
        return validate_batch(self._graph, batch)

    def _collect(self) -> Tuple[List[VertexScores], List[EdgeScores]]:
        self._ensure_open()
        for worker_id in range(self._num_workers):
            self._send(worker_id, ("collect",))
        vertex_partials: List[VertexScores] = []
        edge_partials: List[EdgeScores] = []
        for worker_id in range(self._num_workers):
            message = self._expect(worker_id, "scores")
            vertex_partials.append(message[1])
            edge_partials.append(message[2])
        return vertex_partials, edge_partials

    def _send(self, worker_id: int, message) -> None:
        """Send one command, surfacing a dead worker as the typed failure.

        Writing to a pipe whose worker was killed raises ``BrokenPipeError``;
        without this guard a death between batches would escape as a raw
        OS-level error instead of :class:`~repro.exceptions.WorkerFailedError`.
        """
        try:
            self._connections[worker_id].send(message)
        except (BrokenPipeError, OSError) as exc:
            process = self._processes[worker_id]
            self.close()
            raise WorkerFailedError(
                f"worker {worker_id} is unreachable "
                f"(exit code {process.exitcode}): {exc}"
            ) from exc

    def _recv(self, worker_id: int):
        """Receive one message from a worker without risking a driver hang.

        A blocking ``Pipe.recv`` would wait forever on a worker that was
        SIGKILLed mid-batch (the write end of the pipe stays open in the
        driver itself, so no EOF ever arrives).  Poll in short slices and
        check process liveness between them: death is detected within
        ~50ms and surfaces as :class:`~repro.exceptions.WorkerFailedError`
        instead of a hang.
        """
        connection = self._connections[worker_id]
        process = self._processes[worker_id]
        deadline = (
            time.monotonic() + self._recv_timeout
            if self._recv_timeout is not None
            else None
        )
        while True:
            try:
                if connection.poll(0.05):
                    return connection.recv()
            except (EOFError, OSError) as exc:
                self.close()
                raise WorkerFailedError(
                    f"worker {worker_id} closed its pipe "
                    f"(exit code {process.exitcode})"
                ) from exc
            if not process.is_alive():
                # Drain a reply that raced the death before declaring it.
                try:
                    if connection.poll(0):
                        return connection.recv()
                except (EOFError, OSError):
                    pass
                self.close()
                raise WorkerFailedError(
                    f"worker {worker_id} died (exit code {process.exitcode})"
                )
            if deadline is not None and time.monotonic() > deadline:
                self.close()
                raise WorkerFailedError(
                    f"worker {worker_id} did not reply within "
                    f"{self._recv_timeout}s"
                )

    def _expect(self, worker_id: int, expected: str):
        message = self._recv(worker_id)
        if message[0] == "error":
            self.close()
            raise UpdateError(f"worker failed: {message[1]}")
        if message[0] != expected:  # pragma: no cover - protocol invariant
            self.close()
            raise UpdateError(
                f"unexpected worker reply {message[0]!r} (wanted {expected!r})"
            )
        return message
