"""Simulated MapReduce embodiment of the framework (Section 5.4, Figure 4).

Each *mapper* owns a contiguous partition of the source set and maintains a
partial :class:`~repro.core.framework.IncrementalBetweenness` instance
restricted to those sources (its ``BD[.]`` slice lives in that instance's
store, in memory or on disk, exactly as a real mapper would keep it on its
local disk).  For every edge update, every mapper repairs its own partition;
the *reducer* sums the partial vertex/edge scores.

Because the mappers of the paper run on separate machines, cluster
wall-clock time for an update is the *maximum* per-mapper time plus the
merge time, while cumulative cost (the quantity compared against Brandes in
Figure 6) is the *sum* — both are reported per update.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.framework import IncrementalBetweenness
from repro.core.result import UpdateResult
from repro.core.updates import EdgeUpdate
from repro.exceptions import ConfigurationError
from repro.graph.graph import Graph
from repro.storage.base import BDStore
from repro.storage.partition import SourcePartition, partition_sources
from repro.types import EdgeScores, Vertex, VertexScores
from repro.utils.timing import Timer

#: Factory building a store for one mapper, given its partition.
StoreFactory = Callable[[SourcePartition, Graph], Optional[BDStore]]


def merge_partial_scores(partials: Sequence[Dict]) -> Dict:
    """Reduce step: sum partial score dictionaries key by key.

    The summation order is part of the contract, because float addition is
    not associative: partials are folded **in the order given**, which every
    caller in this package makes the stable partition order (mapper 0 first,
    then mapper 1, ...) — never completion order.  Two runs that produce the
    same partials therefore produce bit-identical merged scores, which is
    what lets the shard coordinator promise ``==`` equality after crash
    recovery and lets tests pin the executor against the in-process
    map-reduce at zero tolerance.

    Note the *grouping* still differs from an unpartitioned serial run (one
    flat sum per key vs per-partition subtotals), so merged scores match the
    serial framework only to float re-association error (~1e-14 relative),
    not exactly.

    Passing an unordered iterable would silently forfeit the guarantee, so
    the signature asks for a sequence.
    """
    merged: Dict = {}
    for partial in partials:
        for key, value in partial.items():
            merged[key] = merged.get(key, 0.0) + value
    return merged


@dataclass
class MapReduceUpdateReport:
    """Timing and work accounting for one update across all mappers."""

    update: EdgeUpdate
    mapper_seconds: List[float] = field(default_factory=list)
    merge_seconds: float = 0.0
    mapper_results: List[UpdateResult] = field(default_factory=list)

    @property
    def cumulative_seconds(self) -> float:
        """Total compute across mappers plus the merge (Figure 6 comparison)."""
        return sum(self.mapper_seconds) + self.merge_seconds

    @property
    def wall_clock_seconds(self) -> float:
        """Cluster wall-clock: slowest mapper plus the merge (Figures 7-8)."""
        if not self.mapper_seconds:
            return self.merge_seconds
        return max(self.mapper_seconds) + self.merge_seconds


class MapReduceBetweenness:
    """Parallel incremental betweenness over partitioned sources.

    Parameters
    ----------
    graph:
        Initial graph, replicated on every mapper (distributed-cache step of
        Figure 4).  Directed graphs are supported: the copy every mapper's
        restricted framework receives preserves the orientation, and the
        reducer sums oriented edge keys.
    num_mappers:
        Number of partitions / workers.
    store_factory:
        Optional callable building the per-mapper ``BD`` store (e.g. one
        :class:`~repro.storage.disk.DiskBDStore` per mapper); by default each
        mapper uses an in-memory store.
    backend:
        Compute backend for every mapper: ``"dicts"`` (default) or
        ``"arrays"`` — the CSR/flat-record kernel, which produces
        bit-identical partial scores.  With ``"arrays"`` the default
        per-mapper store is the columnar
        :class:`~repro.storage.arrays.ArrayBDStore`; a ``store_factory``
        must then return column-protocol stores (array or disk).
    """

    def __init__(
        self,
        graph: Graph,
        num_mappers: int,
        store_factory: Optional[StoreFactory] = None,
        backend: str = "dicts",
    ) -> None:
        if num_mappers < 1:
            raise ConfigurationError(f"num_mappers must be >= 1, got {num_mappers}")
        self._graph = graph.copy()
        self._num_mappers = num_mappers
        self._partitions = partition_sources(self._graph.vertex_list(), num_mappers)
        self._mappers: List[IncrementalBetweenness] = []
        for partition in self._partitions:
            store = store_factory(partition, self._graph) if store_factory else None
            self._mappers.append(
                IncrementalBetweenness(
                    self._graph,
                    store=store,
                    sources=list(partition.sources),
                    backend=backend,
                )
            )
        self._new_vertex_round_robin = 0

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def num_mappers(self) -> int:
        """Number of mappers (partitions)."""
        return self._num_mappers

    @property
    def graph(self) -> Graph:
        """The driver's view of the current graph (do not mutate)."""
        return self._graph

    @property
    def partitions(self) -> Sequence[SourcePartition]:
        """The source partitions."""
        return tuple(self._partitions)

    @property
    def mappers(self) -> Sequence[IncrementalBetweenness]:
        """The per-partition framework instances."""
        return tuple(self._mappers)

    def vertex_betweenness(self) -> VertexScores:
        """Reduced (global) vertex betweenness scores."""
        return merge_partial_scores(m.vertex_betweenness() for m in self._mappers)

    def edge_betweenness(self) -> EdgeScores:
        """Reduced (global) edge betweenness scores."""
        return merge_partial_scores(m.edge_betweenness() for m in self._mappers)

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def add_edge(self, u: Vertex, v: Vertex) -> MapReduceUpdateReport:
        """Add an edge across all mappers."""
        return self.apply(EdgeUpdate.addition(u, v))

    def remove_edge(self, u: Vertex, v: Vertex) -> MapReduceUpdateReport:
        """Remove an edge across all mappers."""
        return self.apply(EdgeUpdate.removal(u, v))

    def apply(self, update: EdgeUpdate) -> MapReduceUpdateReport:
        """Apply one update on every mapper and time each of them."""
        u, v = update.endpoints
        if update.is_addition:
            new_vertices = [w for w in (u, v) if not self._graph.has_vertex(w)]
            self._graph.add_edge(u, v)
            # A brand-new vertex becomes a new source; assign it to one
            # mapper round-robin so partitions stay balanced.
            for vertex in new_vertices:
                owner = self._mappers[
                    self._new_vertex_round_robin % self._num_mappers
                ]
                owner.add_source(vertex)
                self._new_vertex_round_robin += 1
        else:
            self._graph.remove_edge(u, v)

        report = MapReduceUpdateReport(update=update)
        for mapper in self._mappers:
            result = mapper.apply(update)
            report.mapper_results.append(result)
            report.mapper_seconds.append(result.elapsed_seconds or 0.0)

        merge_timer = Timer()
        with merge_timer.measure():
            # The reduce step of Figure 4: group partial scores by element id
            # and sum them.  The merged dictionaries are discarded here (the
            # mappers remain the source of truth); the point is to account
            # for the merge cost tM of the capacity model.
            merge_partial_scores(m.vertex_betweenness() for m in self._mappers)
            merge_partial_scores(m.edge_betweenness() for m in self._mappers)
        report.merge_seconds = merge_timer.total
        return report

    def process_stream(self, updates: Iterable[EdgeUpdate]) -> List[MapReduceUpdateReport]:
        """Apply a whole update stream, one report per update."""
        return [self.apply(update) for update in updates]
