"""Online-update replay: can the framework keep up with edge arrivals?

The online experiments of the paper (Figure 8, Table 5) replay real edge
arrivals with their timestamps and compare, for every arriving edge, the
time needed to refresh the betweenness scores against the inter-arrival
time.  An update "misses" its deadline when the system is still busy when
the next edge arrives; Table 5 reports the fraction of missed edges and the
average delay as the number of mappers grows.

This module performs that replay.  The per-update processing time can come
from an actual run of the (single-machine) framework scaled through the
capacity model of Section 5.3, which is how a cluster of ``p`` mappers is
simulated without a cluster: the measured per-source time on one machine is
divided across ``p`` workers and the merge cost added back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.framework import IncrementalBetweenness
from repro.core.updates import EdgeUpdate
from repro.exceptions import ConfigurationError
from repro.graph.graph import Graph
from repro.parallel.executor import ProcessParallelBetweenness
from repro.parallel.scaling import OnlineCapacityModel


@dataclass(frozen=True)
class OnlineUpdateRecord:
    """Outcome of one replayed edge arrival.

    ``processing_time`` is the time of the *processing unit* the update
    belonged to: the update itself when replaying one at a time, or the
    whole enclosing batch when ``batch_size > 1`` (all members of a batch
    start and complete together, so the batch time is the quantity the
    deadline accounting uses — do not sum it across members of one batch).
    """

    update: EdgeUpdate
    interarrival_time: float
    processing_time: float
    delay: float

    @property
    def missed(self) -> bool:
        """True when the update was not finished before the next arrival."""
        return self.delay > 0.0


@dataclass
class OnlineReplayResult:
    """Aggregate outcome of an online replay (one Table 5 row)."""

    num_mappers: int
    records: List[OnlineUpdateRecord] = field(default_factory=list)
    batch_size: int = 1

    @property
    def num_updates(self) -> int:
        """Number of replayed arrivals."""
        return len(self.records)

    @property
    def num_missed(self) -> int:
        """Arrivals whose processing finished after the next arrival."""
        return sum(1 for record in self.records if record.missed)

    @property
    def missed_fraction(self) -> float:
        """Fraction of missed arrivals (the "% missed" column of Table 5)."""
        if not self.records:
            return 0.0
        return self.num_missed / len(self.records)

    @property
    def average_delay(self) -> float:
        """Average delay of the missed arrivals, in seconds (0 when none)."""
        delays = [record.delay for record in self.records if record.missed]
        if not delays:
            return 0.0
        return sum(delays) / len(delays)

    def as_table_row(self) -> tuple:
        """Return ``(mappers, % missed, average delay)`` as in Table 5."""
        return (self.num_mappers, 100.0 * self.missed_fraction, self.average_delay)


def simulate_online_updates(
    graph: Graph,
    updates: Sequence[EdgeUpdate],
    num_mappers: int = 1,
    merge_time: float = 0.0,
    framework: Optional[IncrementalBetweenness] = None,
    time_scale: float = 1.0,
    batch_size: int = 1,
    backend: str = "dicts",
) -> OnlineReplayResult:
    """Replay timestamped ``updates`` on ``graph`` and account for deadlines.

    Parameters
    ----------
    graph:
        Graph as of the start of the replay.
    updates:
        Timestamped updates (additions and/or removals), in arrival order.
        Every update must carry a timestamp.
    num_mappers:
        Number of simulated workers ``p``.  The update is actually processed
        once, on a single machine; its measured per-source cost is then
        divided across ``p`` workers through the capacity model
        ``tU = tS * n/p + tM``.
    merge_time:
        The model's ``tM`` (seconds).
    framework:
        Optionally reuse an existing framework instance (must have been
        built on ``graph``); a fresh in-memory one is created otherwise.
    time_scale:
        Multiplier applied to inter-arrival times, handy for exploring
        "what if edges arrived k times faster" scenarios.
    batch_size:
        Process arrivals in batches of up to this many updates through the
        batched pipeline
        (:meth:`~repro.core.framework.IncrementalBetweenness.apply_updates`).
        A batch starts processing only once its last member has arrived, so
        batching trades per-update latency for amortised ``BD`` sweeps; the
        per-update records account for that waiting honestly.
    backend:
        Compute backend (``"dicts"`` or ``"arrays"``) of the framework
        built here; ignored when an existing ``framework`` is passed in.

    Notes
    -----
    The simulation uses a single-server queue per the paper's description: if
    the previous update is still being processed when a new edge arrives, the
    new update waits; the reported delay of an update is the time between its
    arrival and the moment its processing completes, minus nothing — i.e. a
    delay of zero means it finished before the next arrival.
    """
    if num_mappers < 1:
        raise ConfigurationError(f"num_mappers must be >= 1, got {num_mappers}")
    _check_batch_size(batch_size)
    arrivals = _relative_arrivals(updates, time_scale)
    ibc = (
        framework
        if framework is not None
        else IncrementalBetweenness(graph, backend=backend)
    )

    def measure(chunk: Sequence[EdgeUpdate]) -> float:
        outcome = ibc.apply_updates(chunk)
        pair_sweeps = max(1, outcome.sources_processed)
        model = OnlineCapacityModel(
            time_per_source=(outcome.elapsed_seconds or 0.0) / pair_sweeps,
            num_sources=pair_sweeps,
            merge_time=merge_time,
        )
        return model.update_time(num_mappers)

    return _replay(updates, arrivals, num_mappers, batch_size, measure)


def replay_online_updates_parallel(
    graph: Graph,
    updates: Sequence[EdgeUpdate],
    num_workers: int = 1,
    batch_size: int = 1,
    time_scale: float = 1.0,
    store: str = "memory",
    use_cpu_time: bool = True,
    source_store_path=None,
    backend: str = "dicts",
) -> OnlineReplayResult:
    """Measured online replay on the real process-parallel executor.

    Unlike :func:`simulate_online_updates`, which processes every update on
    one machine and *derives* cluster time from the capacity model, this
    replay runs each batch on :class:`ProcessParallelBetweenness` worker
    processes and uses their measured times directly.

    Parameters
    ----------
    num_workers:
        Worker processes (real mappers).
    batch_size:
        Updates per executor round; see :func:`simulate_online_updates`.
    store:
        Per-worker ``BD`` store kind (``"memory"`` or ``"disk"``).
    use_cpu_time:
        Account the slowest worker's *CPU* time as the processing time
        (default), which models every mapper owning a dedicated core — the
        paper's shared-nothing cluster — even when this host timeshares the
        workers over fewer physical cores.  Pass ``False`` to account raw
        worker wall-clock instead.
    source_store_path:
        Optional durable :class:`~repro.storage.disk.DiskBDStore` file each
        worker reopens to seed its partition's records, skipping the Brandes
        bootstrap (see :class:`ProcessParallelBetweenness`).
    backend:
        Compute backend every worker runs its partition on (``"dicts"`` or
        ``"arrays"``), forwarded to :class:`ProcessParallelBetweenness`.
    """
    _check_batch_size(batch_size)
    arrivals = _relative_arrivals(updates, time_scale)
    with ProcessParallelBetweenness(
        graph,
        num_workers=num_workers,
        store=store,
        source_store_path=source_store_path,
        backend=backend,
    ) as cluster:

        def measure(chunk: Sequence[EdgeUpdate]) -> float:
            report = cluster.apply_batch(chunk)
            if use_cpu_time:
                return report.max_cpu_seconds
            return report.wall_clock_seconds

        return _replay(updates, arrivals, num_workers, batch_size, measure)


def _check_batch_size(batch_size: int) -> None:
    """Reject a bad batch size before any expensive bootstrap runs."""
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")


def _relative_arrivals(
    updates: Sequence[EdgeUpdate], time_scale: float
) -> List[float]:
    """Validate the stream and convert timestamps to relative arrival times."""
    if not updates:
        raise ConfigurationError("need at least one update to replay")
    if any(update.timestamp is None for update in updates):
        raise ConfigurationError("every replayed update needs a timestamp")
    first_arrival = updates[0].timestamp
    return [(update.timestamp - first_arrival) * time_scale for update in updates]


def _replay(
    updates: Sequence[EdgeUpdate],
    arrivals: Sequence[float],
    num_mappers: int,
    batch_size: int,
    measure,
) -> OnlineReplayResult:
    """Single-server queueing accounting shared by both replay flavours.

    ``measure(chunk)`` applies one batch and returns its processing time in
    (simulated or measured) seconds.  A batch becomes runnable when its last
    member arrives; every member completes when the batch does, and is late
    when that completion falls after the member's own next-arrival deadline.
    Callers validate ``batch_size`` before their bootstrap work.
    """
    result = OnlineReplayResult(num_mappers=num_mappers, batch_size=batch_size)
    busy_until = 0.0
    for chunk_start in range(0, len(updates), batch_size):
        chunk = list(updates[chunk_start : chunk_start + batch_size])
        ready = arrivals[chunk_start + len(chunk) - 1]
        processing_time = measure(chunk)
        start_time = max(ready, busy_until)
        completion = start_time + processing_time
        busy_until = completion

        for offset, update in enumerate(chunk):
            index = chunk_start + offset
            interarrival = (
                float("inf") if index == 0 else arrivals[index] - arrivals[index - 1]
            )
            # An update is "on time" when it completes before the next
            # arrival; the last update of the stream cannot be late.
            if index + 1 < len(updates):
                deadline = arrivals[index + 1]
            else:
                deadline = completion + 1.0
            result.records.append(
                OnlineUpdateRecord(
                    update=update,
                    interarrival_time=interarrival,
                    processing_time=processing_time,
                    delay=max(0.0, completion - deadline),
                )
            )
    return result
