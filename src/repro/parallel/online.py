"""Online-update replay: can the framework keep up with edge arrivals?

The online experiments of the paper (Figure 8, Table 5) replay real edge
arrivals with their timestamps and compare, for every arriving edge, the
time needed to refresh the betweenness scores against the inter-arrival
time.  An update "misses" its deadline when the system is still busy when
the next edge arrives; Table 5 reports the fraction of missed edges and the
average delay as the number of mappers grows.

This module performs that replay.  The per-update processing time can come
from an actual run of the (single-machine) framework scaled through the
capacity model of Section 5.3, which is how a cluster of ``p`` mappers is
simulated without a cluster: the measured per-source time on one machine is
divided across ``p`` workers and the merge cost added back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.framework import IncrementalBetweenness
from repro.core.updates import EdgeUpdate
from repro.exceptions import ConfigurationError
from repro.graph.graph import Graph
from repro.parallel.scaling import OnlineCapacityModel


@dataclass(frozen=True)
class OnlineUpdateRecord:
    """Outcome of one replayed edge arrival."""

    update: EdgeUpdate
    interarrival_time: float
    processing_time: float
    delay: float

    @property
    def missed(self) -> bool:
        """True when the update was not finished before the next arrival."""
        return self.delay > 0.0


@dataclass
class OnlineReplayResult:
    """Aggregate outcome of an online replay (one Table 5 row)."""

    num_mappers: int
    records: List[OnlineUpdateRecord] = field(default_factory=list)

    @property
    def num_updates(self) -> int:
        """Number of replayed arrivals."""
        return len(self.records)

    @property
    def num_missed(self) -> int:
        """Arrivals whose processing finished after the next arrival."""
        return sum(1 for record in self.records if record.missed)

    @property
    def missed_fraction(self) -> float:
        """Fraction of missed arrivals (the "% missed" column of Table 5)."""
        if not self.records:
            return 0.0
        return self.num_missed / len(self.records)

    @property
    def average_delay(self) -> float:
        """Average delay of the missed arrivals, in seconds (0 when none)."""
        delays = [record.delay for record in self.records if record.missed]
        if not delays:
            return 0.0
        return sum(delays) / len(delays)

    def as_table_row(self) -> tuple:
        """Return ``(mappers, % missed, average delay)`` as in Table 5."""
        return (self.num_mappers, 100.0 * self.missed_fraction, self.average_delay)


def simulate_online_updates(
    graph: Graph,
    updates: Sequence[EdgeUpdate],
    num_mappers: int = 1,
    merge_time: float = 0.0,
    framework: Optional[IncrementalBetweenness] = None,
    time_scale: float = 1.0,
) -> OnlineReplayResult:
    """Replay timestamped ``updates`` on ``graph`` and account for deadlines.

    Parameters
    ----------
    graph:
        Graph as of the start of the replay.
    updates:
        Timestamped updates (additions and/or removals), in arrival order.
        Every update must carry a timestamp.
    num_mappers:
        Number of simulated workers ``p``.  The update is actually processed
        once, on a single machine; its measured per-source cost is then
        divided across ``p`` workers through the capacity model
        ``tU = tS * n/p + tM``.
    merge_time:
        The model's ``tM`` (seconds).
    framework:
        Optionally reuse an existing framework instance (must have been
        built on ``graph``); a fresh in-memory one is created otherwise.
    time_scale:
        Multiplier applied to inter-arrival times, handy for exploring
        "what if edges arrived k times faster" scenarios.

    Notes
    -----
    The simulation uses a single-server queue per the paper's description: if
    the previous update is still being processed when a new edge arrives, the
    new update waits; the reported delay of an update is the time between its
    arrival and the moment its processing completes, minus nothing — i.e. a
    delay of zero means it finished before the next arrival.
    """
    if not updates:
        raise ConfigurationError("need at least one update to replay")
    if any(update.timestamp is None for update in updates):
        raise ConfigurationError("every replayed update needs a timestamp")
    if num_mappers < 1:
        raise ConfigurationError(f"num_mappers must be >= 1, got {num_mappers}")

    ibc = framework if framework is not None else IncrementalBetweenness(graph)
    result = OnlineReplayResult(num_mappers=num_mappers)

    # Queueing state: the (simulated) time at which the system becomes free.
    busy_until = 0.0
    previous_arrival: Optional[float] = None
    first_arrival = updates[0].timestamp

    for index, update in enumerate(updates):
        arrival = (update.timestamp - first_arrival) * time_scale
        if previous_arrival is None:
            interarrival = float("inf")
        else:
            interarrival = arrival - previous_arrival
        previous_arrival = arrival

        outcome = ibc.apply(update)
        num_sources = max(1, outcome.sources_processed)
        time_per_source = (outcome.elapsed_seconds or 0.0) / num_sources
        model = OnlineCapacityModel(
            time_per_source=time_per_source,
            num_sources=num_sources,
            merge_time=merge_time,
        )
        processing_time = model.update_time(num_mappers)

        start_time = max(arrival, busy_until)
        completion = start_time + processing_time
        busy_until = completion

        # An update is "on time" when it completes before the next arrival;
        # for the last update there is no next arrival, so the deadline is
        # its own arrival plus its inter-arrival time estimate.
        if index + 1 < len(updates):
            deadline = (updates[index + 1].timestamp - first_arrival) * time_scale
        else:
            deadline = completion + 1.0  # the last update cannot be late
        delay = max(0.0, completion - deadline)

        result.records.append(
            OnlineUpdateRecord(
                update=update,
                interarrival_time=interarrival,
                processing_time=processing_time,
                delay=delay,
            )
        )
    return result
