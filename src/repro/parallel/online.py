"""Online-update replay: can the framework keep up with edge arrivals?

The online experiments of the paper (Figure 8, Table 5) replay real edge
arrivals with their timestamps and compare, for every arriving edge, the
time needed to refresh the betweenness scores against the inter-arrival
time.  An update "misses" its deadline when the system is still busy when
the next edge arrives; Table 5 reports the fraction of missed edges and the
average delay as the number of mappers grows.

Both replay flavours are built on the unified session API: the stream is
driven through :meth:`repro.api.BetweennessSession.stream` and the deadline
accounting is an event **subscriber** (:class:`OnlineDeadlineLedger`)
consuming the emitted :class:`~repro.api.events.BatchApplied` events — not
a parallel reimplementation of the update loop.  What differs between the
flavours is only where processing time comes from:

* :func:`simulate_online_updates` — the update is actually processed once,
  on a single machine, and its measured cost is divided across ``p``
  simulated mappers through the capacity model of Section 5.3
  (``tU = tS * n/p + tM``);
* :func:`replay_online_updates_parallel` — the batch runs on the real
  multiprocessing executor and the slowest worker's measured time is used
  directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.core.framework import IncrementalBetweenness
from repro.core.updates import EdgeUpdate
from repro.exceptions import ConfigurationError
from repro.graph.graph import Graph
from repro.parallel.scaling import OnlineCapacityModel


@dataclass(frozen=True)
class OnlineUpdateRecord:
    """Outcome of one replayed edge arrival.

    ``processing_time`` is the time of the *processing unit* the update
    belonged to: the update itself when replaying one at a time, or the
    whole enclosing batch when ``batch_size > 1`` (all members of a batch
    start and complete together, so the batch time is the quantity the
    deadline accounting uses — do not sum it across members of one batch).
    """

    update: EdgeUpdate
    interarrival_time: float
    processing_time: float
    delay: float

    @property
    def missed(self) -> bool:
        """True when the update was not finished before the next arrival."""
        return self.delay > 0.0


@dataclass
class OnlineReplayResult:
    """Aggregate outcome of an online replay (one Table 5 row)."""

    num_mappers: int
    records: List[OnlineUpdateRecord] = field(default_factory=list)
    batch_size: int = 1

    @property
    def num_updates(self) -> int:
        """Number of replayed arrivals."""
        return len(self.records)

    @property
    def num_missed(self) -> int:
        """Arrivals whose processing finished after the next arrival."""
        return sum(1 for record in self.records if record.missed)

    @property
    def missed_fraction(self) -> float:
        """Fraction of missed arrivals (the "% missed" column of Table 5)."""
        if not self.records:
            return 0.0
        return self.num_missed / len(self.records)

    @property
    def average_delay(self) -> float:
        """Average delay of the missed arrivals, in seconds (0 when none)."""
        delays = [record.delay for record in self.records if record.missed]
        if not delays:
            return 0.0
        return sum(delays) / len(delays)

    def as_table_row(self) -> tuple:
        """Return ``(mappers, % missed, average delay)`` as in Table 5."""
        return (self.num_mappers, 100.0 * self.missed_fraction, self.average_delay)


class OnlineDeadlineLedger:
    """Session subscriber performing the single-server deadline accounting.

    Subscribed to a session and fed by its :class:`BatchApplied` events, it
    reproduces the paper's queueing semantics: a batch becomes runnable when
    its last member arrives, every member completes when the batch does, and
    a member is late when that completion falls after its own next-arrival
    deadline.  ``processing_time_of`` maps one event to the batch's
    processing time in (simulated or measured) seconds — the only thing the
    two replay flavours disagree about.
    """

    def __init__(
        self,
        arrivals: Sequence[float],
        num_mappers: int,
        batch_size: int,
        processing_time_of: Callable[[object], float],
    ) -> None:
        self._arrivals = list(arrivals)
        self._processing_time_of = processing_time_of
        self._busy_until = 0.0
        self._position = 0
        self.result = OnlineReplayResult(
            num_mappers=num_mappers, batch_size=batch_size
        )

    # The subscriber protocol: the session hands every event here; only
    # completed batches matter for the accounting.
    def attach(self, session) -> None:  # pragma: no cover - nothing to grab
        pass

    def on_event(self, event) -> None:
        from repro.api.events import BatchApplied

        if not isinstance(event, BatchApplied) or not event.updates:
            return
        chunk = event.updates
        chunk_start = self._position
        self._position += len(chunk)
        arrivals = self._arrivals
        ready = arrivals[self._position - 1]
        processing_time = self._processing_time_of(event)
        start_time = max(ready, self._busy_until)
        completion = start_time + processing_time
        self._busy_until = completion

        for offset, update in enumerate(chunk):
            index = chunk_start + offset
            interarrival = (
                float("inf") if index == 0 else arrivals[index] - arrivals[index - 1]
            )
            # An update is "on time" when it completes before the next
            # arrival; the last update of the stream cannot be late.
            if index + 1 < len(arrivals):
                deadline = arrivals[index + 1]
            else:
                deadline = completion + 1.0
            self.result.records.append(
                OnlineUpdateRecord(
                    update=update,
                    interarrival_time=interarrival,
                    processing_time=processing_time,
                    delay=max(0.0, completion - deadline),
                )
            )


def simulate_online_updates(
    graph: Graph,
    updates: Sequence[EdgeUpdate],
    num_mappers: int = 1,
    merge_time: float = 0.0,
    framework: Optional[IncrementalBetweenness] = None,
    time_scale: float = 1.0,
    batch_size: int = 1,
    backend: str = "dicts",
    store: str = "memory://",
) -> OnlineReplayResult:
    """Replay timestamped ``updates`` on ``graph`` and account for deadlines.

    Parameters
    ----------
    graph:
        Graph as of the start of the replay.
    updates:
        Timestamped updates (additions and/or removals), in arrival order.
        Every update must carry a timestamp.
    num_mappers:
        Number of simulated workers ``p``.  The update is actually processed
        once, on a single machine; its measured per-source cost is then
        divided across ``p`` workers through the capacity model
        ``tU = tS * n/p + tM``.
    merge_time:
        The model's ``tM`` (seconds).
    framework:
        Optionally reuse an existing engine instance (must have been built
        on ``graph``); it is wrapped in a session as-is.  A fresh serial
        session is opened otherwise.
    time_scale:
        Multiplier applied to inter-arrival times, handy for exploring
        "what if edges arrived k times faster" scenarios.
    batch_size:
        Process arrivals in batches of up to this many updates.  A batch
        starts processing only once its last member has arrived, so
        batching trades per-update latency for amortised ``BD`` sweeps; the
        per-update records account for that waiting honestly.
    backend:
        Compute backend (``"dicts"`` or ``"arrays"``) of the session opened
        here; ignored when an existing ``framework`` is passed in.
    store:
        Store URI for the session's ``BD[.]`` records (the single machine
        that really processes each update); also accepts the legacy
        ``"memory"`` / ``"disk"`` kinds.  Ignored when ``framework`` is
        passed in.

    Notes
    -----
    The simulation uses a single-server queue per the paper's description: if
    the previous update is still being processed when a new edge arrives, the
    new update waits; the reported delay of an update is the time between its
    arrival and the moment its processing completes, minus nothing — i.e. a
    delay of zero means it finished before the next arrival.
    """
    # Imported lazily: the api layer imports this package's executors, so a
    # module-level import would be circular.
    from repro.api.config import BetweennessConfig
    from repro.api.session import BetweennessSession

    if num_mappers < 1:
        raise ConfigurationError(f"num_mappers must be >= 1, got {num_mappers}")
    _check_batch_size(batch_size)
    arrivals = _relative_arrivals(updates, time_scale)

    if framework is not None:
        session = BetweennessSession.from_framework(framework)
    else:
        session = BetweennessSession(
            graph,
            BetweennessConfig.for_graph(
                graph,
                backend=backend,
                batch_size=batch_size,
                store=_store_uri(store),
            ),
        )

    def measure(event) -> float:
        outcome = event.result
        pair_sweeps = max(1, outcome.sources_processed)
        model = OnlineCapacityModel(
            time_per_source=(outcome.elapsed_seconds or 0.0) / pair_sweeps,
            num_sources=pair_sweeps,
            merge_time=merge_time,
        )
        return model.update_time(num_mappers)

    ledger = session.subscribe(
        OnlineDeadlineLedger(arrivals, num_mappers, batch_size, measure)
    )
    for _ in session.stream(updates, batch_size=batch_size):
        pass
    return ledger.result


def replay_online_updates_parallel(
    graph: Graph,
    updates: Sequence[EdgeUpdate],
    num_workers: int = 1,
    batch_size: int = 1,
    time_scale: float = 1.0,
    store: str = "memory",
    use_cpu_time: bool = True,
    source_store_path=None,
    backend: str = "dicts",
    shared_memory: bool = False,
    recv_timeout=None,
) -> OnlineReplayResult:
    """Measured online replay on the real process-parallel executor.

    Unlike :func:`simulate_online_updates`, which processes every update on
    one machine and *derives* cluster time from the capacity model, this
    replay opens a ``process``-executor session (one restricted framework
    per worker process) and uses the workers' measured times directly.

    Parameters
    ----------
    num_workers:
        Worker processes (real mappers).
    batch_size:
        Updates per executor round; see :func:`simulate_online_updates`.
    store:
        Per-worker ``BD`` store: a store URI (``memory://``, ``disk://``;
        path-less, since each worker owns a private temporary store) or one
        of the legacy kinds ``"memory"`` / ``"disk"``.
    use_cpu_time:
        Account the slowest worker's *CPU* time as the processing time
        (default), which models every mapper owning a dedicated core — the
        paper's shared-nothing cluster — even when this host timeshares the
        workers over fewer physical cores.  Pass ``False`` to account raw
        worker wall-clock instead.
    source_store_path:
        Optional durable :class:`~repro.storage.disk.DiskBDStore` file each
        worker reopens to seed its partition's records, skipping the Brandes
        bootstrap.
    backend:
        Compute backend every worker runs its partition on (``"dicts"`` or
        ``"arrays"``).
    shared_memory:
        Seed workers from shared-memory segments and dispatch batches as
        ring descriptors instead of pickled snapshots (arrays backend).
    recv_timeout:
        Per-reply worker timeout in seconds (``None`` waits forever).
    """
    from repro.api.config import BetweennessConfig
    from repro.api.session import BetweennessSession

    _check_batch_size(batch_size)
    arrivals = _relative_arrivals(updates, time_scale)
    config = BetweennessConfig(
        backend=backend,
        directed=graph.directed,
        batch_size=batch_size,
        executor="process",
        workers=num_workers,
        store=_store_uri(store),
        seed_store_path=(
            str(source_store_path) if source_store_path is not None else None
        ),
        shared_memory=shared_memory,
        recv_timeout=recv_timeout,
    )

    def measure(event) -> float:
        report = event.result
        if use_cpu_time:
            return report.max_cpu_seconds
        return report.wall_clock_seconds

    with BetweennessSession(graph, config) as session:
        ledger = session.subscribe(
            OnlineDeadlineLedger(arrivals, num_workers, batch_size, measure)
        )
        for _ in session.stream(updates):
            pass
        return ledger.result


def _store_uri(store: str) -> str:
    """Accept a store URI or one of the legacy ``memory``/``disk`` kinds."""
    if ":" in store:
        return store
    return f"{store}://"


def _check_batch_size(batch_size: int) -> None:
    """Reject a bad batch size before any expensive bootstrap runs."""
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")


def _relative_arrivals(
    updates: Sequence[EdgeUpdate], time_scale: float
) -> List[float]:
    """Validate the stream and convert timestamps to relative arrival times."""
    if not updates:
        raise ConfigurationError("need at least one update to replay")
    if any(update.timestamp is None for update in updates):
        raise ConfigurationError("every replayed update needs a timestamp")
    first_arrival = updates[0].timestamp
    return [(update.timestamp - first_arrival) * time_scale for update in updates]
