"""Scaling and online-capacity models (Sections 5.2 and 5.3).

The algorithm is embarrassingly parallel over sources, so with ``p`` workers
the per-update time is

    tU = tS * n / p + tM

where ``tS`` is the average time to repair one source and ``tM`` the merge
time.  :class:`OnlineCapacityModel` encapsulates that formula, answers
"how many workers keep the system online for an arrival rate F" (Section
5.3), and drives the strong-/weak-scaling projections of Figure 7 from
per-source timings measured on a single machine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.exceptions import ConfigurationError
from repro.utils.validation import require_non_negative, require_positive


@dataclass(frozen=True)
class OnlineCapacityModel:
    """The paper's per-update timing model ``tU = tS * n/p + tM``.

    Attributes
    ----------
    time_per_source:
        ``tS`` — average seconds to process one source for one update.
    num_sources:
        ``n`` — number of sources (vertices).
    merge_time:
        ``tM`` — seconds to merge the partial scores.
    """

    time_per_source: float
    num_sources: int
    merge_time: float = 0.0

    def update_time(self, num_workers: int) -> float:
        """Predicted time ``tU`` to produce updated scores with ``p`` workers."""
        if num_workers < 1:
            raise ConfigurationError(f"num_workers must be >= 1, got {num_workers}")
        sources_per_worker = math.ceil(self.num_sources / num_workers)
        return self.time_per_source * sources_per_worker + self.merge_time

    def is_online(self, num_workers: int, interarrival_time: float) -> bool:
        """Can ``p`` workers keep up with updates arriving every ``tI`` seconds?"""
        return self.update_time(num_workers) < interarrival_time

    def required_workers(self, interarrival_time: float) -> int:
        """Minimum ``p`` such that ``update_time(p) < tI`` (Section 5.3).

        The continuous model ``p0 = tS * n / (tI - tM)`` is only a *lower
        bound*: the actual per-worker share is ``ceil(n / p)`` sources, and
        :meth:`is_online` demands a strict inequality, so the continuous
        solution can land exactly on ``tU == tI`` (e.g. ``tS=0.01, n=100,
        tM=0, tI=0.5`` gives ``p0=2`` with ``tU = 0.01 * 50 = 0.5 == tI``
        — not online).  Starting from ``ceil(p0)`` (no smaller ``p`` can
        satisfy even the continuous bound) we therefore walk up to the
        first ``p`` whose *actual* :meth:`update_time` is strictly under
        ``tI``; monotonicity of ``ceil(n / p)`` makes that the global
        minimum, and the guard below guarantees termination (``p = n``
        always works since ``tS + tM < tI``).

        Raises :class:`ConfigurationError` when even infinitely many workers
        cannot keep up, i.e. when the serial part ``tS + tM`` already reaches
        the inter-arrival time.
        """
        require_positive("interarrival_time", interarrival_time)
        if interarrival_time <= self.time_per_source + self.merge_time:
            raise ConfigurationError(
                "inter-arrival time is smaller than the inherent serial part "
                f"tS + tM = {self.time_per_source + self.merge_time:.6f}s"
            )
        needed = self.time_per_source * self.num_sources / (
            interarrival_time - self.merge_time
        )
        workers = max(1, math.ceil(needed))
        while not self.is_online(workers, interarrival_time):
            workers += 1
        return workers


def required_workers(
    time_per_source: float,
    num_sources: int,
    interarrival_time: float,
    merge_time: float = 0.0,
) -> int:
    """Convenience wrapper around :meth:`OnlineCapacityModel.required_workers`."""
    model = OnlineCapacityModel(
        time_per_source=require_non_negative("time_per_source", time_per_source),
        num_sources=num_sources,
        merge_time=require_non_negative("merge_time", merge_time),
    )
    return model.required_workers(interarrival_time)


@dataclass(frozen=True)
class ScalingMeasurement:
    """One point of a strong- or weak-scaling curve (Figure 7)."""

    num_workers: int
    num_updates: int
    seconds_per_update: float

    @property
    def total_seconds(self) -> float:
        """Total time to process the whole workload at this parallelism."""
        return self.seconds_per_update * self.num_updates


def strong_scaling(
    model: OnlineCapacityModel,
    worker_counts: Sequence[int],
    num_updates: int,
) -> List[ScalingMeasurement]:
    """Fixed workload, increasing parallelism (Figure 7 a-b).

    Returns the projected per-update wall-clock time for each worker count.
    """
    measurements = []
    for workers in worker_counts:
        measurements.append(
            ScalingMeasurement(
                num_workers=workers,
                num_updates=num_updates,
                seconds_per_update=model.update_time(workers),
            )
        )
    return measurements


def weak_scaling(
    model: OnlineCapacityModel,
    worker_counts: Sequence[int],
    updates_per_worker_ratio: float,
) -> Dict[int, ScalingMeasurement]:
    """Workload grows proportionally with parallelism (Figure 7 c-d).

    For each worker count ``p`` the workload is ``ratio * p`` updates; with
    ideal weak scaling the total time stays flat as ``p`` grows.
    """
    require_positive("updates_per_worker_ratio", updates_per_worker_ratio)
    results: Dict[int, ScalingMeasurement] = {}
    for workers in worker_counts:
        num_updates = max(1, round(updates_per_worker_ratio * workers))
        results[workers] = ScalingMeasurement(
            num_workers=workers,
            num_updates=num_updates,
            seconds_per_update=model.update_time(workers),
        )
    return results
