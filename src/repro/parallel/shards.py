"""First-class shards: fault-tolerant partitioned execution.

:class:`~repro.parallel.executor.ProcessParallelBetweenness` treats its
partitions as anonymous pipe endpoints: a dead worker loses the partition's
state and (before the poll-with-timeout fix) hung the driver forever.  This
module promotes the partition to a first-class **shard** with durable
identity:

* each shard owns a per-shard directory under the ``shard://`` root holding
  its durable record store and checkpoint sidecar
  (:class:`~repro.storage.shard.ShardLayout`);
* the :class:`ShardCoordinator` dispatches batches, monitors worker health
  (poll with liveness checks and an optional receive timeout instead of a
  blocking ``Pipe.recv``), and keeps an in-memory **replay log** of the
  batches applied since the last checkpoint round;
* when a worker dies, the coordinator re-seeds a *replacement* from that
  shard's sidecar and replays only the logged batches the sidecar predates
  — the other shards never stop, and the world never restarts.

Recovery is **bit-identical** by construction: the sidecar carries the
worker's graph adjacency in exact iteration order
(:meth:`~repro.graph.Graph.adjacency_payload`) and the store's source
insertion order (``shard_meta["source_order"]``), and the replayed batches
reuse the exact adoption decisions of the original dispatch, so the
replacement accumulates every float in the same order the dead worker would
have.  The chaos suite (``tests/test_shard_chaos.py``) asserts ``==``
equality of final scores after seeded mid-stream kills.

Workers compute in RAM and touch disk only at checkpoint rounds: the round
writes a fresh cursor-stamped store file, then atomically replaces the
sidecar (the commit point), then prunes stores of older rounds — a crash at
any instant leaves the previous round fully intact.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.core.checkpoint import FrameworkCheckpoint, load_checkpoint, save_checkpoint
from repro.core.framework import IncrementalBetweenness
from repro.core.updates import EdgeUpdate, UpdateKind, batches, validate_batch
from repro.exceptions import (
    ConfigurationError,
    StoreCorruptedError,
    UpdateError,
    WorkerFailedError,
)
from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.parallel.dataplane import (
    LabelTable,
    RingReader,
    UpdateRing,
    decode_rows,
    encode_batch,
)
from repro.parallel.executor import ParallelBatchReport, _build_worker_framework
from repro.parallel.mapreduce import merge_partial_scores
from repro.storage.arrays import ArrayBDStore
from repro.storage.buffers import (
    get_allocator,
    reclaim_process_segments,
    shm_available,
)
from repro.storage.disk import DiskBDStore
from repro.storage.index import VertexIndex
from repro.storage.memory import InMemoryBDStore
from repro.storage.partition import partition_sources
from repro.storage.shard import (
    ShardLayout,
    ShardManifest,
    load_manifest,
    pick_shard,
    prune_stale_stores,
)
from repro.types import EdgeScores, Vertex, VertexScores, validate_backend
from repro.utils.timing import Timer

PathLike = Union[str, Path]

#: A coordinator event hook: ``notify(kind, **fields)`` with kinds
#: ``"worker_failed"``, ``"shard_recovered"`` and ``"checkpoint"``.  Plain
#: callables keep this layer free of any dependency on :mod:`repro.api`;
#: the session adapts them into typed events.
NotifyHook = Callable[..., None]


# --------------------------------------------------------------------------- #
# Worker process
# --------------------------------------------------------------------------- #
def _write_shard_checkpoint(
    framework: IncrementalBetweenness,
    shard_dir: Path,
    shard_id: int,
    num_shards: int,
    cursor: int,
) -> None:
    """Persist one shard's state for batch ``cursor`` (crash-consistent).

    Write order is what makes a kill at any point recoverable: the stamped
    store file is written and renamed into place first, the sidecar rename
    commits the round, and only then are older store files pruned.
    """
    source_order = list(framework.store.sources())
    graph = framework.graph
    store_path = shard_dir / f"store-{cursor:08d}.bin"
    store_tmp = Path(str(store_path) + ".tmp")
    if store_tmp.exists():
        store_tmp.unlink()
    durable = DiskBDStore(
        graph.vertex_list(),
        path=str(store_tmp),
        sources=source_order,
        directed=graph.directed,
    )
    try:
        for source in source_order:
            durable.put(framework.store.get(source))
        durable.flush()
        generation = durable.generation
    finally:
        durable.close()
    os.replace(store_tmp, store_path)

    checkpoint = framework.build_checkpoint(
        batch_cursor=cursor,
        shard_meta={
            "shard_id": shard_id,
            "num_shards": num_shards,
            "source_order": source_order,
        },
        store_path=str(store_path.resolve()),
        store_generation=generation,
    )
    sidecar = shard_dir / "checkpoint.bin"
    sidecar_tmp = Path(str(sidecar) + ".tmp")
    save_checkpoint(sidecar_tmp, checkpoint)
    os.replace(sidecar_tmp, sidecar)  # the commit point
    prune_stale_stores(shard_dir, cursor)


def _resume_shard_framework(
    checkpoint_path: PathLike, backend: str
) -> Tuple[IncrementalBetweenness, FrameworkCheckpoint]:
    """Rebuild a shard's framework from its sidecar + stamped store.

    The records are loaded from the durable store into a fresh RAM store in
    the sidecar's recorded ``source_order``, and the graph comes from the
    order-exact adjacency payload — together they make the replacement's
    float accumulation order identical to the dead worker's.
    """
    ckpt = load_checkpoint(checkpoint_path)
    meta = ckpt.shard_meta
    if meta is None or ckpt.adjacency is None or ckpt.store_path is None:
        raise StoreCorruptedError(
            f"{checkpoint_path} is not a shard checkpoint sidecar"
        )
    graph = Graph.from_adjacency_payload(ckpt.adjacency, directed=ckpt.directed)
    source_order = meta["source_order"]
    with DiskBDStore.open(ckpt.store_path) as durable:
        if (
            ckpt.store_generation is not None
            and durable.generation != ckpt.store_generation
        ):
            raise ConfigurationError(
                f"shard store {ckpt.store_path} is at generation "
                f"{durable.generation} but its sidecar was written at "
                f"generation {ckpt.store_generation}; the shard directory "
                "holds mixed state"
            )
        missing = [s for s in source_order if s not in durable]
        if missing:
            raise StoreCorruptedError(
                f"shard store {ckpt.store_path} lacks records for sources "
                f"{sorted(map(repr, missing))}"
            )
        records = [durable.get(source) for source in source_order]
    if backend == "arrays":
        store = ArrayBDStore(
            graph.vertex_list(),
            row_capacity=max(1, len(source_order)),
            directed=graph.directed,
        )
    else:
        store = InMemoryBDStore()
    store.load_snapshot(records)
    framework = IncrementalBetweenness.resume(
        checkpoint_path, store=store, backend=backend, checkpoint=ckpt
    )
    return framework, ckpt


def _shard_worker_main(connection, payload: dict) -> None:
    """Entry point of one shard worker process.

    Protocol (all tuples over the pipe):

    * ``("apply", cursor, batch, adopt)`` → ``("applied", cursor, result,
      cpu_seconds)``
    * ``("apply_ring", cursor, start, length, new_labels, adopt_ids,
      rotated)`` → ``("applied", cursor, result, cpu_seconds)`` — the
      shared-memory variant: the batch is read back out of the
      coordinator's update ring instead of crossing the pipe
    * ``("checkpoint", cursor)`` → ``("checkpointed", cursor, seconds)``
    * ``("collect",)`` → ``("scores", vertex_partial, edge_partial)``
    * ``("stop",)`` → ``("stopped",)``

    ``payload["chaos"]`` is test-only fault injection: ``{"cursor": k,
    "when": "before"|"after"}`` SIGKILLs the process at batch ``k`` either
    on receipt or after applying but before replying (state computed, then
    lost — the worst case recovery must cover).
    """
    shard_id = payload["shard_id"]
    shard_dir = Path(payload["shard_dir"])
    num_shards = payload["num_shards"]
    backend = payload["backend"]
    chaos = payload.get("chaos")
    shm = payload.get("shm")
    framework = None
    ring_reader = None
    label_table = None
    try:
        timer = Timer()
        with timer.measure():
            if payload["mode"] == "resume":
                framework, _ = _resume_shard_framework(
                    payload["checkpoint_path"], backend
                )
            else:
                framework = _build_worker_framework(
                    {
                        "vertices": payload.get("vertices"),
                        "edges": payload.get("edges"),
                        "directed": payload["directed"],
                        "sources": payload["sources"],
                        "store": "memory",
                        "backend": backend,
                        "snapshot": None,
                        "store_path": None,
                        "shm": shm,
                    }
                )
            if shm is not None and shm.get("ring") is not None:
                ring_reader = RingReader(shm["ring"])
                label_table = LabelTable(shm["labels"])
        connection.send(("ready", timer.total))
        while True:
            message = connection.recv()
            command = message[0]
            if command in ("apply", "apply_ring"):
                if command == "apply":
                    _, cursor, batch, adopt = message
                else:
                    _, cursor, start, length, new_labels, adopt_ids, rotated = (
                        message
                    )
                    if rotated is not None:
                        ring_reader.reattach(rotated)
                    if new_labels:
                        label_table.extend(new_labels)
                    batch = decode_rows(
                        ring_reader.read(start, length), label_table
                    )
                    adopt = [label_table.label(i) for i in adopt_ids or ()]
                if chaos and cursor == chaos["cursor"]:
                    if chaos.get("when", "after") == "before":
                        os.kill(os.getpid(), signal.SIGKILL)
                cpu_start = time.process_time()
                result = framework.apply_updates(batch, adopt=adopt or None)
                cpu_seconds = time.process_time() - cpu_start
                if chaos and cursor == chaos["cursor"]:
                    # die with the batch applied in RAM but unacknowledged:
                    # the work is lost and must be replayed onto the
                    # replacement from the shard checkpoint.
                    os.kill(os.getpid(), signal.SIGKILL)
                connection.send(("applied", cursor, result, cpu_seconds))
            elif command == "checkpoint":
                _, cursor = message
                round_timer = Timer()
                with round_timer.measure():
                    _write_shard_checkpoint(
                        framework, shard_dir, shard_id, num_shards, cursor
                    )
                connection.send(("checkpointed", cursor, round_timer.total))
            elif command == "collect":
                connection.send(
                    (
                        "scores",
                        framework.vertex_betweenness(),
                        framework.edge_betweenness(),
                    )
                )
            elif command == "stop":
                connection.send(("stopped",))
                return
            else:
                connection.send(("error", f"unknown command {command!r}"))
    except EOFError:  # coordinator went away; nothing left to do
        return
    except Exception as exc:  # surface worker failures to the coordinator
        try:
            connection.send(("error", repr(exc)))
        except (BrokenPipeError, OSError):
            pass
    finally:
        if ring_reader is not None:
            ring_reader.release()
        if framework is not None:
            framework.store.close()
        connection.close()


@dataclass
class _WorkerHandle:
    shard_id: int
    process: "multiprocessing.Process"
    connection: object


# --------------------------------------------------------------------------- #
# Coordinator
# --------------------------------------------------------------------------- #
class ShardCoordinator:
    """Dispatch batches to shard workers; survive their deaths.

    Parameters
    ----------
    graph:
        Initial graph, replicated into every worker.  ``None`` only on the
        :meth:`resume` path, where it is rebuilt from the shard sidecars.
    layout:
        The resolved :class:`~repro.storage.shard.ShardLayout` (root
        directory, shard count, checkpoint cadence), usually from
        ``ShardLayout.from_uri("shard:///root?shards=8&checkpoint_every=4")``.
    backend:
        Compute backend of every worker (``"dicts"`` or ``"arrays"``).
    recv_timeout:
        Optional cap in seconds on waiting for a live worker's reply;
        process death is detected within ~50ms regardless.  ``None``
        (default) waits as long as the worker stays alive — a big batch is
        not a failure.
    shared_memory:
        When true the coordinator runs the zero-copy data plane: workers
        attach the initial graph from shared CSR segments instead of
        unpickling edge lists, and per-batch dispatch sends ``(offset,
        length)`` descriptors into a shared update ring instead of pickled
        update lists.  Scores are bit-identical either way.  Replacement
        workers seeded from a sidecar keep using the ring for new batches
        (replay itself stays on the classic pickled path, since replayed
        slices may predate a ring rotation).
    notify:
        Optional :data:`NotifyHook` receiving ``worker_failed`` /
        ``shard_recovered`` / ``checkpoint`` notifications.
    config:
        Optional session-config dict persisted in the manifest so
        ``resume_session`` can restore the owning session from disk alone.
    chaos:
        Test-only fault injection, ``{shard_id: {"cursor": k, "when":
        "before"|"after"}}``; forwarded into the matching workers' payloads.

    Examples
    --------
    >>> layout = ShardLayout.from_uri("shard:///tmp/bc?shards=2")  # doctest: +SKIP
    >>> with ShardCoordinator(graph, layout) as coordinator:       # doctest: +SKIP
    ...     coordinator.apply_batch([EdgeUpdate.addition(0, 2)])
    ...     scores = coordinator.vertex_betweenness()
    """

    _MAX_RECOVERIES_PER_COMMAND = 3

    def __init__(
        self,
        graph: Optional[Graph],
        layout: ShardLayout,
        backend: str = "dicts",
        start_method: Optional[str] = None,
        recv_timeout: Optional[float] = None,
        shared_memory: bool = False,
        notify: Optional[NotifyHook] = None,
        config: Optional[Dict] = None,
        chaos: Optional[Dict[int, Dict]] = None,
        _manifest: Optional[ShardManifest] = None,
    ) -> None:
        validate_backend(backend)
        if layout.num_shards < 1:
            raise ConfigurationError(
                f"a shard ensemble needs >= 1 shard, got {layout.num_shards}"
            )
        if shared_memory and not shm_available():
            raise ConfigurationError(
                "shared_memory=True requires multiprocessing.shared_memory, "
                "which this platform does not provide"
            )
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else "spawn"
        self._context = multiprocessing.get_context(start_method)
        self._layout = layout
        self._backend = backend
        self._recv_timeout = recv_timeout
        self._shared_memory = bool(shared_memory)
        self.notify = notify
        self._config = config
        self._chaos = dict(chaos or {})
        self._handles: List[Optional[_WorkerHandle]] = [None] * layout.num_shards
        self._log: Dict[int, Tuple[List[EdgeUpdate], List[List[Vertex]]]] = {}
        self._closed = False
        # Zero-copy data plane (populated only when shared_memory is on).
        self._label_table: Optional[LabelTable] = None
        self._ring: Optional[UpdateRing] = None
        self._graph_seed_buffers: List = []

        try:
            if _manifest is not None:
                self._init_from_manifest(_manifest)
            else:
                if graph is None:
                    raise ConfigurationError(
                        "ShardCoordinator needs an initial graph (or use "
                        "ShardCoordinator.resume to restore one from disk)"
                    )
                self._init_fresh(graph)
        except BaseException:
            self.close(checkpoint=False)
            raise

    def _init_fresh(self, graph: Graph) -> None:
        layout = self._layout
        if layout.manifest_path.exists():
            raise ConfigurationError(
                f"shard root {layout.root} is already initialised; resume it "
                "with ShardCoordinator.resume / repro.api.resume_session, or "
                "point the shard:// URI at a fresh directory"
            )
        layout.root.mkdir(parents=True, exist_ok=True)
        self._graph = graph.copy()
        partitions = partition_sources(
            self._graph.vertex_list(), layout.num_shards
        )
        self._shard_sizes = [len(p.sources) for p in partitions]
        self._assignment: List[Tuple[Vertex, int]] = []
        self._cursor = 0
        self._last_round = -1
        vertices = self._graph.vertex_list()
        edges = self._graph.edge_list()
        graph_payload = None
        if self._shared_memory:
            self._build_data_plane(vertices)
            allocator = get_allocator("shm", hint="csrg")
            csr = CSRGraph.from_graph(self._graph, VertexIndex(vertices))
            self._graph_seed_buffers, graph_payload = csr.export_compiled(
                allocator
            )
        for partition in partitions:
            shard_id = partition.worker_id
            layout.shard_dir(shard_id).mkdir(parents=True, exist_ok=True)
            payload = {
                "mode": "fresh",
                "vertices": None if self._shared_memory else vertices,
                "edges": None if self._shared_memory else edges,
                "directed": self._graph.directed,
                "sources": list(partition.sources),
                "backend": self._backend,
                "shard_id": shard_id,
                "num_shards": layout.num_shards,
                "shard_dir": str(layout.shard_dir(shard_id)),
                "chaos": self._chaos.get(shard_id),
            }
            if self._shared_memory:
                payload["shm"] = {
                    "labels": self._label_table.labels(),
                    "graph": graph_payload,
                    "ring": self._ring.payload(),
                }
            self._spawn(shard_id, payload)
        self._init_seconds = [
            self._expect(i, "ready")[1] for i in range(layout.num_shards)
        ]
        # Round 0: make the bootstrap durable immediately, so a worker that
        # dies before the first periodic round still has a seed to recover
        # from (and `resume` works from the very first moment).
        self._checkpoint_round()

    def _init_from_manifest(self, manifest: ShardManifest) -> None:
        layout = self._layout
        self._shard_sizes = list(manifest.shard_sizes)
        self._assignment = [tuple(entry) for entry in manifest.assignment]
        self._cursor = manifest.batch_cursor
        self._last_round = manifest.batch_cursor
        graph: Optional[Graph] = None
        for shard_id in range(layout.num_shards):
            sidecar = layout.checkpoint_path(shard_id)
            if not sidecar.exists():
                raise ConfigurationError(
                    f"shard root {layout.root} has no checkpoint for shard "
                    f"{shard_id} ({sidecar})"
                )
            ckpt = load_checkpoint(sidecar)
            meta = ckpt.shard_meta or {}
            if meta.get("shard_id") != shard_id:
                raise StoreCorruptedError(
                    f"{sidecar} belongs to shard {meta.get('shard_id')!r}, "
                    f"not {shard_id}"
                )
            if ckpt.batch_cursor != manifest.batch_cursor:
                # Never silently mix shard states from different rounds: a
                # restarted coordinator has no replay log, so a lagging (or
                # leading) sidecar cannot be replayed forward here.
                raise ConfigurationError(
                    f"shard {shard_id} checkpoint is at batch "
                    f"{ckpt.batch_cursor} but the coordinator manifest is at "
                    f"batch {manifest.batch_cursor}: the ensemble's shards "
                    "disagree and a restart cannot replay the gap — refusing "
                    "to mix stale and fresh shard state"
                )
            if graph is None:
                if ckpt.adjacency is None:
                    raise StoreCorruptedError(
                        f"{sidecar} lacks the adjacency payload"
                    )
                graph = Graph.from_adjacency_payload(
                    ckpt.adjacency, directed=ckpt.directed
                )
                if self._shared_memory:
                    # The resume path re-seeds state from the sidecars, so
                    # only the dispatch half of the plane (ring + labels) is
                    # shared; labels start from the restored graph's vertex
                    # order, which every sidecar recorded identically.
                    self._build_data_plane(graph.vertex_list())
            payload = {
                "mode": "resume",
                "checkpoint_path": str(sidecar),
                "backend": self._backend,
                "shard_id": shard_id,
                "num_shards": layout.num_shards,
                "shard_dir": str(layout.shard_dir(shard_id)),
                "chaos": self._chaos.get(shard_id),
            }
            if self._shared_memory:
                payload["shm"] = {
                    "labels": self._label_table.labels(),
                    "ring": self._ring.payload(),
                }
            self._spawn(shard_id, payload)
        self._graph = graph
        self._init_seconds = [
            self._expect(i, "ready")[1] for i in range(layout.num_shards)
        ]

    @classmethod
    def resume(
        cls,
        root: PathLike,
        backend: Optional[str] = None,
        start_method: Optional[str] = None,
        recv_timeout: Optional[float] = None,
        shared_memory: bool = False,
        notify: Optional[NotifyHook] = None,
        config: Optional[Dict] = None,
    ) -> "ShardCoordinator":
        """Restore a coordinator from a shard root, using only the disk state.

        Shard count, cadence, orientation and backend come from the
        manifest; each worker re-seeds itself from its shard's sidecar.
        Every sidecar must sit at the manifest's batch cursor — anything
        else means the root mixes state from different rounds and is
        refused (see :meth:`_init_from_manifest`).
        """
        root = Path(root)
        if root.name == "manifest.bin":
            root = root.parent
        manifest = load_manifest(root)
        layout = ShardLayout(
            root=root,
            num_shards=manifest.num_shards,
            checkpoint_every=manifest.checkpoint_every,
        )
        return cls(
            graph=None,
            layout=layout,
            backend=backend if backend is not None else manifest.backend,
            start_method=start_method,
            recv_timeout=recv_timeout,
            shared_memory=shared_memory,
            notify=notify,
            config=config if config is not None else manifest.config,
            _manifest=manifest,
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def layout(self) -> ShardLayout:
        """The ensemble's disk layout."""
        return self._layout

    @property
    def num_shards(self) -> int:
        """Number of shards (= worker processes)."""
        return self._layout.num_shards

    @property
    def graph(self) -> Graph:
        """The coordinator's view of the current graph (do not mutate)."""
        return self._graph

    @property
    def shared_memory(self) -> bool:
        """Whether the zero-copy data plane is active."""
        return self._shared_memory

    @property
    def batch_cursor(self) -> int:
        """Number of batches applied so far."""
        return self._cursor

    @property
    def last_checkpoint_cursor(self) -> int:
        """Batch cursor of the last completed checkpoint round."""
        return self._last_round

    @property
    def init_seconds(self) -> List[float]:
        """Per-shard bootstrap (or resume) times."""
        return list(self._init_seconds)

    def shard_of(self, vertex: Vertex) -> Optional[int]:
        """Which shard adopted a stream-born ``vertex`` (None if not born)."""
        for candidate, shard_id in self._assignment:
            if candidate == vertex:
                return shard_id
        return None

    def vertex_betweenness(self) -> VertexScores:
        """Reduced (global) vertex betweenness scores."""
        vertex_partials, _ = self._collect()
        return merge_partial_scores(vertex_partials)

    def edge_betweenness(self) -> EdgeScores:
        """Reduced (global) edge betweenness scores."""
        _, edge_partials = self._collect()
        return merge_partial_scores(edge_partials)

    def betweenness(self) -> Tuple[VertexScores, EdgeScores]:
        """Both reduced score dictionaries from a single collect round."""
        vertex_partials, edge_partials = self._collect()
        return merge_partial_scores(vertex_partials), merge_partial_scores(
            edge_partials
        )

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def add_edge(self, u: Vertex, v: Vertex) -> ParallelBatchReport:
        """Add an edge across all shards."""
        return self.apply_batch([EdgeUpdate.addition(u, v)])

    def remove_edge(self, u: Vertex, v: Vertex) -> ParallelBatchReport:
        """Remove an edge across all shards."""
        return self.apply_batch([EdgeUpdate.removal(u, v)])

    def apply(self, update: EdgeUpdate) -> ParallelBatchReport:
        """Apply a single update across all shards."""
        return self.apply_batch([update])

    def apply_batch(self, updates: Iterable[EdgeUpdate]) -> ParallelBatchReport:
        """Apply one batch on every shard, recovering any that die mid-way.

        Stream-born vertices are adopted by the least-loaded shard (ties to
        the lowest id) through :func:`~repro.storage.shard.pick_shard`; the
        decisions are appended to the replay log with the batch, so a
        recovering worker replays them verbatim, and persisted in the
        manifest at checkpoint rounds, so they survive coordinator restarts.
        """
        self._ensure_open()
        batch = list(updates)
        if not batch:
            return ParallelBatchReport()

        births = validate_batch(self._graph, batch)
        adopt_per_shard: List[List[Vertex]] = [[] for _ in range(self.num_shards)]
        for vertex in births:
            shard_id = pick_shard(self._shard_sizes)
            adopt_per_shard[shard_id].append(vertex)
            self._shard_sizes[shard_id] += 1
            self._assignment.append((vertex, shard_id))
        cursor = self._cursor
        self._log[cursor] = (batch, adopt_per_shard)

        timer = Timer()
        with timer.measure():
            if self._shared_memory:
                # Descriptor-passing dispatch: the rows go into the shared
                # ring once, and each shard receives only (start, length)
                # plus this batch's newly minted labels.  The replay log
                # above keeps the classic pickled form — recovery must work
                # even after the ring rotated past the logged slice.
                rows, new_labels = encode_batch(self._label_table, batch)
                start, length, rotated = self._ring.append(rows)
                adopt_ids = [
                    [self._label_table.id_of(v) for v in adopt]
                    for adopt in adopt_per_shard
                ]
                replies = self._broadcast(
                    lambda i: (
                        "apply_ring",
                        cursor,
                        start,
                        length,
                        new_labels,
                        adopt_ids[i],
                        rotated,
                    ),
                    "applied",
                )
            else:
                replies = self._broadcast(
                    lambda i: ("apply", cursor, batch, adopt_per_shard[i]),
                    "applied",
                )

        for update in batch:  # keep the coordinator's graph in sync
            u, v = update.endpoints
            if update.kind is UpdateKind.ADDITION:
                self._graph.add_edge(u, v)
            else:
                self._graph.remove_edge(u, v)
        self._cursor = cursor + 1
        if self._cursor - self._last_round >= self._layout.checkpoint_every:
            self._checkpoint_round()

        return ParallelBatchReport(
            updates=batch,
            worker_seconds=[reply[2].elapsed_seconds or 0.0 for reply in replies],
            worker_cpu_seconds=[reply[3] for reply in replies],
            worker_results=[reply[2] for reply in replies],
            elapsed_seconds=timer.total,
        )

    def process_stream(
        self, updates: Iterable[EdgeUpdate], batch_size: int = 1
    ) -> List[ParallelBatchReport]:
        """Apply a stream in consecutive batches of at most ``batch_size``."""
        return [self.apply_batch(chunk) for chunk in batches(updates, batch_size)]

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def checkpoint(self) -> Path:
        """Run a checkpoint round now; returns the manifest path."""
        self._ensure_open()
        return self._checkpoint_round()

    def _checkpoint_round(self) -> Path:
        cursor = self._cursor
        self._broadcast(lambda i: ("checkpoint", cursor), "checkpointed")
        manifest = ShardManifest(
            num_shards=self.num_shards,
            checkpoint_every=self._layout.checkpoint_every,
            backend=self._backend,
            directed=self._graph.directed,
            batch_cursor=cursor,
            assignment=[list(entry) for entry in self._assignment],
            shard_sizes=list(self._shard_sizes),
            config=self._config,
        )
        path = self._layout.write_manifest(manifest)
        self._last_round = cursor
        # Everything up to the round is durable on every shard; the log only
        # needs to cover batches a recovering worker could be behind by.
        self._log = {c: entry for c, entry in self._log.items() if c >= cursor}
        self._notify("checkpoint", path=str(path), batch_cursor=cursor)
        return path

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self, checkpoint: bool = True) -> None:
        """Shut the workers down (idempotent).

        By default a final checkpoint round makes the latest batches
        durable first (best-effort), so ``resume`` continues from where the
        stream stopped rather than from the last periodic round.
        """
        if self._closed:
            return
        if checkpoint and self._cursor > self._last_round:
            try:
                self._checkpoint_round()
            except Exception:  # noqa: BLE001 - shutdown must proceed
                pass
        self._closed = True
        for handle in self._handles:
            if handle is None:
                continue
            try:
                handle.connection.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for handle in self._handles:
            if handle is None:
                continue
            try:
                if handle.connection.poll(5.0):
                    handle.connection.recv()
            except (EOFError, OSError):
                pass
            handle.connection.close()
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():  # pragma: no cover - defensive
                handle.process.terminate()
                handle.process.join(timeout=1.0)
        self._release_data_plane()

    def _release_data_plane(self) -> None:
        """Unlink every plane segment the coordinator owns (idempotent)."""
        for buffer in self._graph_seed_buffers:
            buffer.release()
        self._graph_seed_buffers = []
        if self._ring is not None:
            self._ring.release()
            self._ring = None
        self._label_table = None
        if self._shared_memory:
            for handle in self._handles:
                if handle is not None and handle.process.pid is not None:
                    reclaim_process_segments(handle.process.pid)

    def _build_data_plane(self, vertices) -> None:
        self._label_table = LabelTable(vertices)
        self._ring = UpdateRing(hint="ring")

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Internals: dispatch and recovery
    # ------------------------------------------------------------------ #
    def _ensure_open(self) -> None:
        if self._closed:
            raise ConfigurationError("the shard coordinator has been closed")

    def _notify(self, kind: str, **fields) -> None:
        if self.notify is not None:
            self.notify(kind, **fields)

    def _spawn(self, shard_id: int, payload: dict) -> None:
        parent_end, child_end = self._context.Pipe()
        process = self._context.Process(
            target=_shard_worker_main, args=(child_end, payload), daemon=True
        )
        process.start()
        child_end.close()
        self._handles[shard_id] = _WorkerHandle(shard_id, process, parent_end)

    def _teardown_handle(self, shard_id: int) -> None:
        handle = self._handles[shard_id]
        if handle is None:
            return
        self._handles[shard_id] = None
        try:
            handle.connection.close()
        except OSError:  # pragma: no cover - defensive
            pass
        if handle.process.is_alive():
            handle.process.terminate()
        handle.process.join(timeout=5.0)
        if self._shared_memory and handle.process.pid is not None:
            # A SIGKILLed worker never ran its atexit hooks; any segments it
            # owned (none today, but cheap to guarantee) are reclaimed here
            # so /dev/shm cannot leak across recoveries.
            reclaim_process_segments(handle.process.pid)

    def _send(self, shard_id: int, message) -> None:
        handle = self._handles[shard_id]
        if handle is None:
            raise WorkerFailedError(f"shard {shard_id} has no live worker")
        try:
            handle.connection.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerFailedError(
                f"shard {shard_id} worker is unreachable: {exc}"
            ) from exc

    def _recv(self, shard_id: int):
        handle = self._handles[shard_id]
        if handle is None:
            raise WorkerFailedError(f"shard {shard_id} has no live worker")
        deadline = (
            time.monotonic() + self._recv_timeout
            if self._recv_timeout is not None
            else None
        )
        while True:
            try:
                if handle.connection.poll(0.05):
                    return handle.connection.recv()
            except (EOFError, OSError) as exc:
                raise WorkerFailedError(
                    f"shard {shard_id} worker closed its pipe "
                    f"(exit code {handle.process.exitcode})"
                ) from exc
            if not handle.process.is_alive():
                # Drain a reply that raced the death before declaring it.
                try:
                    if handle.connection.poll(0):
                        return handle.connection.recv()
                except (EOFError, OSError):
                    pass
                raise WorkerFailedError(
                    f"shard {shard_id} worker died "
                    f"(exit code {handle.process.exitcode})"
                )
            if deadline is not None and time.monotonic() > deadline:
                raise WorkerFailedError(
                    f"shard {shard_id} worker did not reply within "
                    f"{self._recv_timeout}s"
                )

    def _expect(self, shard_id: int, expected: str):
        message = self._recv(shard_id)
        if message[0] == "error":
            # A worker-side exception is deterministic application state
            # (both sides validated the same batch), not a process failure:
            # recovery would just replay into the same error.
            self.close(checkpoint=False)
            raise UpdateError(f"shard {shard_id} worker failed: {message[1]}")
        if message[0] != expected:  # pragma: no cover - protocol invariant
            self.close(checkpoint=False)
            raise UpdateError(
                f"unexpected shard {shard_id} reply {message[0]!r} "
                f"(wanted {expected!r})"
            )
        return message

    def _broadcast(self, message_for: Callable[[int], tuple], expected: str):
        """Send a command to every shard and gather replies by shard id.

        Replies are indexed by shard, never by completion order, so the
        reduce step downstream sums partials in stable partition order no
        matter which worker answered first.
        """
        for shard_id in range(self.num_shards):
            try:
                self._send(shard_id, message_for(shard_id))
            except WorkerFailedError as exc:
                self._recover_shard(shard_id, exc)
                self._send(shard_id, message_for(shard_id))
        return [
            self._await_reply(shard_id, message_for, expected)
            for shard_id in range(self.num_shards)
        ]

    def _await_reply(
        self, shard_id: int, message_for: Callable[[int], tuple], expected: str
    ):
        for attempt in range(self._MAX_RECOVERIES_PER_COMMAND + 1):
            try:
                return self._expect(shard_id, expected)
            except WorkerFailedError as exc:
                if attempt == self._MAX_RECOVERIES_PER_COMMAND:
                    self.close(checkpoint=False)
                    raise WorkerFailedError(
                        f"shard {shard_id}: giving up after {attempt} "
                        f"recovery attempts ({exc})"
                    ) from exc
                try:
                    self._recover_shard(shard_id, exc)
                    self._send(shard_id, message_for(shard_id))
                except WorkerFailedError:
                    # The replacement died too; count another attempt.
                    self._teardown_handle(shard_id)
        raise AssertionError("unreachable")  # pragma: no cover

    def _recover_shard(self, shard_id: int, failure: Exception) -> None:
        """Re-seed a replacement worker from the shard's checkpoint + replay."""
        self._notify(
            "worker_failed",
            shard=shard_id,
            error=str(failure),
            batch_cursor=self._cursor,
        )
        timer = Timer()
        with timer.measure():
            self._teardown_handle(shard_id)
            sidecar = self._layout.checkpoint_path(shard_id)
            if not sidecar.exists():
                raise WorkerFailedError(
                    f"shard {shard_id} has no checkpoint sidecar to recover "
                    f"from ({sidecar})"
                )
            ckpt = load_checkpoint(sidecar)
            start = ckpt.batch_cursor
            if start is None or start > self._cursor:
                raise ConfigurationError(
                    f"shard {shard_id} checkpoint is at batch {start} but "
                    f"the coordinator is at batch {self._cursor}: the shard "
                    "directory holds state from a different run — refusing "
                    "to mix"
                )
            missing = [c for c in range(start, self._cursor) if c not in self._log]
            if missing:
                raise ConfigurationError(
                    f"shard {shard_id} checkpoint at batch {start} predates "
                    f"the coordinator's retained replay log (missing batches "
                    f"{missing}); the shard cannot be replayed forward"
                )
            replacement = {
                "mode": "resume",
                "checkpoint_path": str(sidecar),
                "backend": self._backend,
                "shard_id": shard_id,
                "num_shards": self.num_shards,
                "shard_dir": str(self._layout.shard_dir(shard_id)),
                "chaos": None,
            }
            if self._shared_memory:
                # Seed the replacement with the *current* table and ring so
                # it can serve ring dispatch from the next batch on; the
                # table already contains any in-flight batch's labels, so
                # the coming announcement is an idempotent no-op.
                replacement["shm"] = {
                    "labels": self._label_table.labels(),
                    "ring": self._ring.payload(),
                }
            self._spawn(shard_id, replacement)
            self._expect(shard_id, "ready")
            # Replay only what the sidecar predates, with the original
            # adoption decisions — the other shards are untouched.
            for cursor in range(start, self._cursor):
                batch, adopt_per_shard = self._log[cursor]
                self._send(
                    shard_id, ("apply", cursor, batch, adopt_per_shard[shard_id])
                )
                self._expect(shard_id, "applied")
        self._notify(
            "shard_recovered",
            shard=shard_id,
            replayed_batches=self._cursor - start,
            seconds=timer.total,
        )

    def _collect(self) -> Tuple[List[VertexScores], List[EdgeScores]]:
        self._ensure_open()
        replies = self._broadcast(lambda i: ("collect",), "scores")
        vertex_partials = [reply[1] for reply in replies]
        edge_partials = [reply[2] for reply in replies]
        return vertex_partials, edge_partials
