"""Betweenness-as-a-service: the async HTTP/SSE front end.

The serving subsystem ROADMAP item 2 asked for: multi-tenant, named,
checkpoint-backed :class:`~repro.api.session.BetweennessSession`\\ s behind
an HTTP API with live server-sent-event streams of centrality changes.

Layers (each importable on a bare install; FastAPI is optional):

* :mod:`repro.service.registry` — the transport-neutral core: session
  directories under a service root, per-session single-writer workers,
  restart recovery;
* :mod:`repro.service.routes` — handlers + the one routing table;
* :mod:`repro.service.events` — session events → bounded per-client SSE
  queues (drop-oldest + ``lagged`` markers);
* :mod:`repro.service.app` — FastAPI/ASGI transport
  (``pip install repro-online-betweenness[service]``);
* :mod:`repro.service.server` — dependency-free asyncio HTTP transport;
* :mod:`repro.service.client` — dependency-free asyncio client (used by
  the test suite and ``benchmarks/bench_service.py``).

Start serving with ``repro serve --root /var/lib/repro`` (picks FastAPI +
uvicorn when installed, the built-in server otherwise).
"""

from repro.service.app import HAVE_FASTAPI, create_app, require_fastapi
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.errors import (
    AuthenticationFailed,
    InvalidJSONBody,
    ServiceError,
    SessionClosed,
    SessionExists,
    SessionNotFound,
    SessionUnavailable,
    UpdateRejected,
    ValidationFailed,
)
from repro.service.events import ClientStream, EventBridge, encode_event
from repro.service.registry import (
    ManagedSession,
    ServiceSettings,
    SessionRegistry,
)
from repro.service.server import ServiceServer

__all__ = [
    "AuthenticationFailed",
    "ClientStream",
    "EventBridge",
    "HAVE_FASTAPI",
    "InvalidJSONBody",
    "ManagedSession",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "ServiceServer",
    "ServiceSettings",
    "SessionClosed",
    "SessionExists",
    "SessionNotFound",
    "SessionRegistry",
    "SessionUnavailable",
    "UpdateRejected",
    "ValidationFailed",
    "create_app",
    "encode_event",
    "require_fastapi",
]
