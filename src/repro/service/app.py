"""FastAPI/ASGI front end over the service core (``repro[service]`` extra).

This is the production transport: an ASGI app factory you can hand to any
ASGI server (``uvicorn repro.service.app:create_default_app``) or run via
``repro serve``.  It installs the exact same transport-neutral routing
table as the fallback server in :mod:`repro.service.server` — FastAPI
contributes the ASGI plumbing, the OpenAPI docs page and the streaming
machinery, while request validation, auth and error envelopes live in the
shared core, so a client cannot tell the two transports apart.

FastAPI is an *optional* dependency: importing this module is always safe
(the core package must work on a bare install); calling :func:`create_app`
without ``fastapi`` installed raises a clear
:class:`~repro.exceptions.ConfigurationError` telling you what to install.
"""

from __future__ import annotations

import os
from typing import Any, Optional

from repro.exceptions import ConfigurationError
from repro.service.errors import InvalidJSONBody, ServiceError
from repro.service.events import sse_frame
from repro.service.registry import ServiceSettings, SessionRegistry
from repro.service.routes import (
    ROUTES,
    EventStreamResult,
    JSONResult,
    Route,
    ServiceRequest,
    check_auth,
)

try:  # pragma: no cover - exercised only with the extra installed
    import fastapi as _fastapi
except ImportError:  # pragma: no cover
    _fastapi = None

#: Whether the optional FastAPI transport is importable.
HAVE_FASTAPI = _fastapi is not None


def require_fastapi() -> None:
    """Raise a clear error when the ``service`` extra is not installed."""
    if not HAVE_FASTAPI:
        raise ConfigurationError(
            "the FastAPI transport needs the optional service extra: "
            "pip install 'repro-online-betweenness[service]' "
            "(or use the dependency-free fallback: repro serve --impl asyncio)"
        )


def create_app(
    settings: ServiceSettings, registry: Optional[SessionRegistry] = None
):
    """Build the ASGI application serving ``settings.root``.

    The registry restores every on-disk session at ASGI startup and closes
    them all — final checkpoints included — at shutdown, so an orderly
    restart loses nothing and a SIGKILL loses at most the batches since
    the last checkpoint cadence.
    """
    require_fastapi()
    from contextlib import asynccontextmanager

    from fastapi import FastAPI, Request
    from fastapi.responses import JSONResponse, StreamingResponse

    registry = registry or SessionRegistry(settings)

    @asynccontextmanager
    async def lifespan(_app):
        await registry.startup()
        try:
            yield
        finally:
            await registry.close_all()

    app = FastAPI(
        title="repro betweenness service",
        description=(
            "Online betweenness centrality as a service: named, "
            "checkpoint-backed sessions with live SSE score-change events."
        ),
        lifespan=lifespan,
    )
    app.state.registry = registry

    async def _to_request(route: Route, request: Request) -> ServiceRequest:
        body: Any = None
        if request.method in ("POST", "PUT", "PATCH"):
            raw = await request.body()
            if raw:
                try:
                    body = await request.json()
                except Exception:
                    raise InvalidJSONBody() from None
        return ServiceRequest(
            method=request.method,
            path=request.url.path,
            path_params={k: str(v) for k, v in request.path_params.items()},
            query={k: v for k, v in request.query_params.items()},
            body=body,
            headers={k.lower(): v for k, v in request.headers.items()},
        )

    def _make_endpoint(route: Route):
        async def endpoint(request: Request):
            service_request = await _to_request(route, request)
            if route.auth:
                check_auth(registry, service_request)
            result = await route.handler(registry, service_request)
            if isinstance(result, EventStreamResult):
                async def frames():
                    try:
                        yield b": connected\n\n"
                        async for frame in result.stream.frames(
                            keepalive=result.keepalive
                        ):
                            yield sse_frame(frame)
                    finally:
                        result.release()

                return StreamingResponse(
                    frames(),
                    media_type="text/event-stream",
                    headers={"cache-control": "no-cache"},
                )
            assert isinstance(result, JSONResult)
            return JSONResponse(
                status_code=result.status, content=result.payload
            )

        endpoint.__name__ = route.handler.__name__
        endpoint.__doc__ = route.handler.__doc__
        return endpoint

    for route in ROUTES:
        app.add_api_route(
            route.pattern,
            _make_endpoint(route),
            methods=[route.method],
            name=route.handler.__name__,
        )

    @app.exception_handler(ServiceError)
    async def service_error_handler(_request, exc: ServiceError):
        return JSONResponse(
            status_code=exc.status_code, content=exc.payload()
        )

    return app


def create_default_app():
    """App factory for ``uvicorn repro.service.app:create_default_app``.

    Reads ``REPRO_SERVICE_ROOT`` (default ``./service-root``) and
    ``REPRO_SERVICE_API_KEY`` from the environment — the factory form
    exists so plain ``uvicorn --factory`` deployments need no Python glue.
    """
    settings = ServiceSettings(
        root=os.environ.get("REPRO_SERVICE_ROOT", "service-root"),
        api_key=os.environ.get("REPRO_SERVICE_API_KEY"),
    )
    return create_app(settings)
