"""Dependency-free asyncio client for the betweenness service.

A deliberately small HTTP/1.1 + SSE client over raw asyncio streams, so
tests, the load generator in ``benchmarks/bench_service.py`` and bare-bones
deployments need neither ``httpx`` nor ``requests``.  One
:class:`ServiceClient` holds one keep-alive connection and must be used
sequentially (open several clients for concurrency — that is exactly what
the load generator does); SSE subscriptions each open their own dedicated
connection.

Example::

    async with ServiceClient("127.0.0.1", 8750, api_key="s3cret") as client:
        await client.create_session(
            "demo", edges=[[0, 1], [1, 2]], config={"backend": "arrays"}
        )
        await client.post_updates("demo", [("add", 0, 2)])
        status, payload = await client.get("/sessions/demo/top_k", {"k": 3})
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator, Dict, Iterable, List, Optional, Tuple
from urllib.parse import quote

from repro.exceptions import ReproError


class ServiceClientError(ReproError):
    """A non-2xx response, surfaced with the server's structured error."""

    def __init__(self, status: int, payload: Any):
        error = (payload or {}).get("error", {}) if isinstance(payload, dict) else {}
        message = error.get("message", f"HTTP {status}")
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload
        self.code = error.get("code")


class ServiceClient:
    """One sequential keep-alive connection to the service."""

    def __init__(
        self, host: str, port: int, api_key: Optional[str] = None
    ) -> None:
        self.host = host
        self.port = port
        self.api_key = api_key
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    # -- lifecycle ------------------------------------------------------ #
    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = self._writer = None

    async def _connection(
        self,
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        assert self._reader is not None and self._writer is not None
        return self._reader, self._writer

    # -- core request --------------------------------------------------- #
    async def request(
        self,
        method: str,
        path: str,
        body: Any = None,
        query: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Any]:
        """One request/response exchange; returns ``(status, payload)``."""
        target = path + _encode_query(query)
        payload = b"" if body is None else json.dumps(body).encode("utf-8")
        headers = [
            f"{method} {target} HTTP/1.1",
            f"host: {self.host}:{self.port}",
            "connection: keep-alive",
        ]
        if payload:
            headers.append("content-type: application/json")
        headers.append(f"content-length: {len(payload)}")
        if self.api_key is not None:
            headers.append(f"x-api-key: {self.api_key}")
        wire = ("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + payload
        for attempt in (0, 1):
            reader, writer = await self._connection()
            try:
                writer.write(wire)
                await writer.drain()
                return await self._read_response(reader)
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.IncompleteReadError,
            ):
                # A keep-alive peer may have dropped the idle connection;
                # retry exactly once on a fresh one.
                await self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    async def _read_response(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Any]:
        status_line = await reader.readline()
        if not status_line:
            raise asyncio.IncompleteReadError(b"", None)
        status = int(status_line.split(b" ", 2)[1])
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            key, _, value = line.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        raw = await reader.readexactly(length) if length else b""
        payload = json.loads(raw) if raw else None
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return status, payload

    # -- convenience verbs ---------------------------------------------- #
    async def get(
        self, path: str, query: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Any]:
        return await self.request("GET", path, query=query)

    async def expect(
        self,
        method: str,
        path: str,
        body: Any = None,
        query: Optional[Dict[str, Any]] = None,
        status: int = 200,
    ) -> Any:
        """Like :meth:`request` but raises unless ``status`` comes back."""
        got, payload = await self.request(method, path, body=body, query=query)
        if got != status:
            raise ServiceClientError(got, payload)
        return payload

    # -- typed helpers --------------------------------------------------- #
    async def create_session(
        self,
        name: str,
        edges: Iterable[Iterable[Any]] = (),
        vertices: Iterable[Any] = (),
        directed: bool = False,
        config: Optional[Dict[str, Any]] = None,
        checkpoint_every: Optional[int] = None,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "name": name,
            "graph": {
                "edges": [list(edge) for edge in edges],
                "vertices": list(vertices),
                "directed": directed,
            },
            "config": config or {},
        }
        if checkpoint_every is not None:
            body["checkpoint_every"] = checkpoint_every
        return await self.expect("POST", "/sessions", body, status=201)

    async def post_updates(
        self, name: str, updates: Iterable[Tuple[str, Any, Any]]
    ) -> Dict[str, Any]:
        body = {"updates": [list(u) for u in updates]}
        return await self.expect(
            "POST", f"/sessions/{quote(name)}/updates", body
        )

    async def top_k(
        self, name: str, k: int = 10, edges: bool = False
    ) -> Dict[str, Any]:
        return await self.expect(
            "GET",
            f"/sessions/{quote(name)}/top_k",
            query={"k": k, "edges": str(edges).lower()},
        )

    async def scores(self, name: str, edges: bool = False) -> Dict[str, Any]:
        return await self.expect(
            "GET",
            f"/sessions/{quote(name)}/scores",
            query={"edges": str(edges).lower()},
        )

    async def delete_session(
        self, name: str, purge: bool = False
    ) -> Dict[str, Any]:
        return await self.expect(
            "DELETE",
            f"/sessions/{quote(name)}",
            query={"purge": str(purge).lower()},
        )

    # -- SSE ------------------------------------------------------------- #
    async def events(
        self, name: str, max_frames: Optional[int] = None
    ) -> AsyncIterator[Dict[str, Any]]:
        """Subscribe to a session's SSE stream (dedicated connection).

        Yields decoded frame dicts; keepalive comments are skipped.  The
        generator ends when the server closes the stream or after
        ``max_frames`` frames.
        """
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            headers = [
                f"GET /sessions/{quote(name)}/events HTTP/1.1",
                f"host: {self.host}:{self.port}",
                "accept: text/event-stream",
            ]
            if self.api_key is not None:
                headers.append(f"x-api-key: {self.api_key}")
            writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("latin-1"))
            await writer.drain()
            status_line = await reader.readline()
            status = int(status_line.split(b" ", 2)[1])
            response_headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                key, _, value = line.decode("latin-1").partition(":")
                response_headers[key.strip().lower()] = value.strip()
            if status != 200:
                length = int(response_headers.get("content-length", "0") or "0")
                raw = await reader.readexactly(length) if length else b""
                raise ServiceClientError(
                    status, json.loads(raw) if raw else None
                )
            delivered = 0
            data_lines: List[str] = []
            while max_frames is None or delivered < max_frames:
                line = await reader.readline()
                if not line:
                    break
                text = line.decode("utf-8").rstrip("\r\n")
                if text.startswith("data:"):
                    data_lines.append(text[5:].lstrip())
                elif text == "" and data_lines:
                    yield json.loads("\n".join(data_lines))
                    data_lines = []
                    delivered += 1
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


def _encode_query(query: Optional[Dict[str, Any]]) -> str:
    if not query:
        return ""
    parts = [
        f"{quote(str(key))}={quote(str(value))}"
        for key, value in query.items()
        if value is not None
    ]
    return "?" + "&".join(parts) if parts else ""
