"""Typed service errors mapping onto structured HTTP responses.

Every error the service raises deliberately derives from
:class:`ServiceError`, which carries an HTTP status code and a stable
machine-readable ``code`` slug.  Both transports (the FastAPI app and the
dependency-free asyncio server) translate a raised ``ServiceError`` into
the same JSON envelope::

    {"error": {"code": "session_not_found", "message": "..."}}

so clients never see a stack trace for a bad request — a 4xx is part of
the API surface, not an accident.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.exceptions import ReproError


class ServiceError(ReproError):
    """Base class of every deliberate service-level failure."""

    status_code = 500
    code = "internal_error"

    def __init__(self, message: str, *, details: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.message = message
        self.details = dict(details) if details else None

    def payload(self) -> Dict[str, Any]:
        """The JSON body served for this error."""
        error: Dict[str, Any] = {"code": self.code, "message": self.message}
        if self.details:
            error["details"] = self.details
        return {"error": error}


class AuthenticationFailed(ServiceError):
    """The request is missing or carries a wrong API key."""

    status_code = 401
    code = "authentication_failed"


class InvalidJSONBody(ServiceError):
    """The request body could not be parsed as JSON at all."""

    status_code = 400
    code = "invalid_json"

    def __init__(self) -> None:
        super().__init__("request body is not valid JSON")


class ValidationFailed(ServiceError):
    """The request body or query string does not describe a valid operation.

    Covers both malformed payloads (missing keys, wrong types) and payloads
    that fail the library's own configuration validation — the underlying
    :class:`~repro.exceptions.ConfigurationError` message is surfaced
    verbatim in ``message`` so the client learns *which* knob was wrong.
    """

    status_code = 422
    code = "validation_failed"


class SessionNotFound(ServiceError):
    """No live session is registered under the requested name."""

    status_code = 404
    code = "session_not_found"

    def __init__(self, name: str):
        super().__init__(f"no session named {name!r}", details={"name": name})
        self.name = name


class SessionExists(ServiceError):
    """A session with the requested name already exists."""

    status_code = 409
    code = "session_exists"

    def __init__(self, name: str):
        super().__init__(
            f"a session named {name!r} already exists", details={"name": name}
        )
        self.name = name


class SessionClosed(ServiceError):
    """The session exists on disk but was closed; it no longer serves."""

    status_code = 409
    code = "session_closed"

    def __init__(self, name: str):
        super().__init__(
            f"session {name!r} was closed; delete it with ?purge=true and "
            "recreate it to serve again",
            details={"name": name},
        )
        self.name = name


class SessionUnavailable(ServiceError):
    """The session exists on disk but could not be restored at startup."""

    status_code = 409
    code = "session_unavailable"

    def __init__(self, name: str, reason: str):
        super().__init__(
            f"session {name!r} failed to restore: {reason}",
            details={"name": name, "reason": reason},
        )
        self.name = name


class UpdateRejected(ServiceError):
    """An edge update in the batch cannot be applied to the current graph.

    409 rather than 422: the request was well-formed, it just conflicts
    with the session's current graph state (duplicate edge, unknown edge on
    removal, self loop).  The batch is applied atomically — a rejected
    batch leaves the scores untouched.
    """

    status_code = 409
    code = "update_rejected"
