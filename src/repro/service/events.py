"""Bridge from session events to per-client server-sent-event streams.

A :class:`~repro.api.session.BetweennessSession` publishes typed events
synchronously, on whatever thread applied the batch.  An HTTP client
consumes them asynchronously, over a connection that may be slow or gone.
This module is the adapter between the two worlds:

* :class:`EventBridge` is a session subscriber.  It encodes each event
  into a JSON-able *frame* and fans it out to every open
  :class:`ClientStream`.  It never raises into the session and never
  blocks the writer.
* :class:`ClientStream` is a bounded, thread-safe frame queue with
  **drop-oldest** overflow: when a client cannot keep up, the oldest
  undelivered frames are discarded and the client receives a ``lagged``
  frame telling it how many it missed — one slow consumer can never stall
  the update path or grow memory without bound.  Clients that need every
  frame can re-read authoritative state (``/scores``) after a ``lagged``
  marker.

Frame schema (all frames carry ``type``; events carry ``sequence``)::

    {"type": "bootstrap_completed", "sequence": 0, "num_vertices": ..., ...}
    {"type": "batch_applied", "sequence": 3, "batch_index": 0,
     "updates": [{"kind": "add", "u": ..., "v": ...}, ...],
     "num_updates": 2}
    {"type": "checkpoint_written", "sequence": 4, "path": "..."}
    {"type": "worker_failed", "sequence": 9, "shard": 1, "error": "...",
     "batch_cursor": 7}
    {"type": "shard_recovered", "sequence": 10, "shard": 1,
     "replayed_batches": 3, "seconds": 0.12}
    {"type": "session_closed", "sequence": 11}
    {"type": "lagged", "dropped": 17}
"""

from __future__ import annotations

import asyncio
import json
import threading
from collections import deque
from typing import Any, AsyncIterator, Dict, List, Optional

from repro.api.events import (
    BatchApplied,
    BootstrapCompleted,
    CheckpointWritten,
    SessionClosed,
    SessionEvent,
    ShardRecovered,
    UpdateApplied,
    WorkerFailed,
)

#: Default per-client queue bound (frames, not bytes).
DEFAULT_QUEUE_SIZE = 256


def _encode_update(update) -> Dict[str, Any]:
    return {"kind": update.kind.value, "u": update.u, "v": update.v}


def encode_event(event: SessionEvent) -> Optional[Dict[str, Any]]:
    """The JSON-able frame for ``event``, or ``None`` for internal events.

    Engine result objects are deliberately *not* serialized wholesale —
    they hold store handles and per-source internals.  The frame carries
    what a network consumer can act on: which updates landed, where the
    checkpoint went, which shard failed or recovered.
    """
    if isinstance(event, BatchApplied):
        return {
            "type": "batch_applied",
            "sequence": event.sequence,
            "batch_index": event.batch_index,
            "num_updates": len(event.updates),
            "updates": [_encode_update(u) for u in event.updates],
        }
    if isinstance(event, UpdateApplied):
        return {
            "type": "update_applied",
            "sequence": event.sequence,
            "update": _encode_update(event.update),
        }
    if isinstance(event, CheckpointWritten):
        return {
            "type": "checkpoint_written",
            "sequence": event.sequence,
            "path": event.path,
        }
    if isinstance(event, WorkerFailed):
        return {
            "type": "worker_failed",
            "sequence": event.sequence,
            "shard": event.shard,
            "error": event.error,
            "batch_cursor": event.batch_cursor,
        }
    if isinstance(event, ShardRecovered):
        return {
            "type": "shard_recovered",
            "sequence": event.sequence,
            "shard": event.shard,
            "replayed_batches": event.replayed_batches,
            "seconds": event.seconds,
        }
    if isinstance(event, BootstrapCompleted):
        return {
            "type": "bootstrap_completed",
            "sequence": event.sequence,
            "num_vertices": event.num_vertices,
            "num_edges": event.num_edges,
            "num_sources": event.num_sources,
        }
    if isinstance(event, SessionClosed):
        return {"type": "session_closed", "sequence": event.sequence}
    return None


class ClientStream:
    """One client's bounded frame queue; producer on any thread, consumer
    on the event loop.

    ``push`` is wait-free for the producer: with the queue full, the
    oldest frame is dropped and a lag counter incremented.  The consumer
    drains in FIFO order and sees one ``{"type": "lagged", "dropped": n}``
    frame (ahead of the frames that survived) for every overflow episode.
    """

    def __init__(
        self, loop: asyncio.AbstractEventLoop, maxsize: int = DEFAULT_QUEUE_SIZE
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self._loop = loop
        self._maxsize = maxsize
        self._frames: deque = deque()
        self._lock = threading.Lock()
        self._dropped = 0
        self._closed = False
        self._wakeup = asyncio.Event()

    def push(self, frame: Dict[str, Any]) -> None:
        """Enqueue ``frame``; never blocks, never raises to the producer."""
        with self._lock:
            if self._closed:
                return
            if len(self._frames) >= self._maxsize:
                self._frames.popleft()
                self._dropped += 1
            self._frames.append(frame)
        self._loop.call_soon_threadsafe(self._wakeup.set)

    def close(self) -> None:
        """Mark the stream finished; the consumer drains what is queued."""
        with self._lock:
            self._closed = True
        try:
            self._loop.call_soon_threadsafe(self._wakeup.set)
        except RuntimeError:  # loop already gone at interpreter teardown
            pass

    @property
    def closed(self) -> bool:
        return self._closed

    def _drain(self) -> tuple:
        with self._lock:
            frames = list(self._frames)
            self._frames.clear()
            dropped, self._dropped = self._dropped, 0
            return frames, dropped, self._closed

    async def frames(
        self, keepalive: Optional[float] = None
    ) -> AsyncIterator[Optional[Dict[str, Any]]]:
        """Yield frames in order until the stream closes.

        When ``keepalive`` is set and no frame arrives within that many
        seconds, ``None`` is yielded so the transport can emit an SSE
        comment and detect dead connections.
        """
        while True:
            if keepalive is None:
                await self._wakeup.wait()
            else:
                try:
                    await asyncio.wait_for(self._wakeup.wait(), keepalive)
                except asyncio.TimeoutError:
                    yield None
                    continue
            self._wakeup.clear()
            frames, dropped, closed = self._drain()
            if dropped:
                yield {"type": "lagged", "dropped": dropped}
            for frame in frames:
                yield frame
            if closed:
                return


class EventBridge:
    """Session subscriber that fans frames out to every open client stream.

    One bridge serves one session; client streams are opened per SSE
    connection.  The bridge is deliberately paranoid: encoding or delivery
    problems for one client are swallowed (that client just misses the
    frame) — the session's update path must never pay for a broken
    consumer.
    """

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        queue_size: int = DEFAULT_QUEUE_SIZE,
    ) -> None:
        self._loop = loop
        self._queue_size = queue_size
        self._clients: List[ClientStream] = []
        self._lock = threading.Lock()
        self._events_seen = 0

    # -- session subscriber protocol ---------------------------------- #
    def on_event(self, event: SessionEvent) -> None:
        frame = encode_event(event)
        if frame is None:
            return
        self._events_seen += 1
        with self._lock:
            clients = list(self._clients)
        for client in clients:
            try:
                client.push(frame)
            except Exception:  # noqa: BLE001 - a client must never hurt the writer
                pass

    # -- client management -------------------------------------------- #
    def open_stream(self) -> ClientStream:
        """Register and return a fresh client stream."""
        stream = ClientStream(self._loop, self._queue_size)
        with self._lock:
            self._clients.append(stream)
        return stream

    def discard(self, stream: ClientStream) -> None:
        """Unregister ``stream`` (idempotent) and close it."""
        with self._lock:
            try:
                self._clients.remove(stream)
            except ValueError:
                pass
        stream.close()

    def close(self) -> None:
        """Close every client stream (the session is going away)."""
        with self._lock:
            clients, self._clients = list(self._clients), []
        for stream in clients:
            stream.close()

    @property
    def num_clients(self) -> int:
        with self._lock:
            return len(self._clients)

    @property
    def events_seen(self) -> int:
        return self._events_seen


def sse_frame(frame: Optional[Dict[str, Any]]) -> bytes:
    """Wire encoding of one frame (or a keepalive comment for ``None``)."""
    if frame is None:
        return b": keepalive\n\n"
    data = json.dumps(frame, separators=(",", ":"), default=str)
    kind = frame.get("type", "message")
    lines = [f"event: {kind}"]
    sequence = frame.get("sequence")
    if sequence is not None:
        lines.append(f"id: {sequence}")
    lines.append(f"data: {data}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")
