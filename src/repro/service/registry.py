"""Named, checkpoint-backed session management over a service root.

The registry is the service's transport-neutral core: everything the HTTP
layer can do — create a session from a posted config, apply update
batches, read scores, stream events, delete — is a registry method, so the
FastAPI app and the dependency-free fallback server are equally thin
adapters over it (and unit tests need no sockets at all).

Durability model
----------------
Each named session owns one directory under ``<root>/sessions/<name>/``::

    <root>/sessions/<name>/
        service.json        # name, executor, resume target, closed marker
        checkpoint.bin      # serial sessions: the sidecar (config embedded)
        store.bin           # serial sessions on disk:// stores
        shards/             # shard sessions: the whole shard:// ensemble

Clients never name server filesystem paths: a posted config may choose a
store *scheme* (``memory://``, ``arrays://``, ``disk://``, ``shard://``)
and knobs like ``?mmap=`` or ``shards=``, but the registry owns where the
bytes live.  Sessions are always checkpoint-backed (an initial checkpoint
is written at create time and a final one at close), so a SIGKILLed
server restores every session — scores bit-identical — from the service
root alone via :meth:`SessionRegistry.restore_all`.

Write path
----------
All updates for a session flow through one **single-writer asyncio
worker**: concurrent POSTs enqueue jobs and await their futures, the
worker applies them strictly in arrival order on an executor thread, so
``apply_batch`` calls never interleave and the event stream stays gap
free.  Reads run directly on executor threads — the session's internal
lock guarantees they observe a consistent batch boundary.
"""

from __future__ import annotations

import asyncio
import json
import re
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.api.config import BetweennessConfig
from repro.api.session import BetweennessSession, resume_session
from repro.core.updates import EdgeUpdate, UpdateKind
from repro.exceptions import (
    ConfigurationError,
    GraphError,
    ReproError,
    UpdateError,
)
from repro.graph.graph import Graph
from repro.service.errors import (
    SessionClosed,
    SessionExists,
    SessionNotFound,
    SessionUnavailable,
    ServiceError,
    UpdateRejected,
    ValidationFailed,
)
from repro.service.events import DEFAULT_QUEUE_SIZE, EventBridge

PathLike = Union[str, Path]

#: Session names are path components; keep them boring and traversal-proof.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Store schemes the service accepts (anything durable or RAM-resident the
#: checkpoint sidecar can embed).  The registry rewrites paths, so these
#: are *schemes*, never locations.
_ALLOWED_SCHEMES = ("memory", "arrays", "disk", "shard")

_SERVICE_FILE = "service.json"
_CHECKPOINT_FILE = "checkpoint.bin"
_STORE_FILE = "store.bin"
_SHARD_DIR = "shards"


@dataclass(frozen=True)
class ServiceSettings:
    """Everything the serving layer needs, in one frozen object.

    ``api_key=None`` disables authentication (development mode); when set,
    every request except ``/healthz`` must present it via ``X-API-Key`` or
    ``Authorization: Bearer``.
    """

    root: Path
    api_key: Optional[str] = None
    max_sessions: int = 64
    event_queue_size: int = DEFAULT_QUEUE_SIZE
    default_checkpoint_every: int = 1
    keepalive_seconds: float = 15.0

    def __post_init__(self) -> None:
        # Resolved so the store/checkpoint URIs derived from it are always
        # absolute (a relative path inside a URI would re-anchor on cwd).
        object.__setattr__(self, "root", Path(self.root).resolve())
        if self.max_sessions < 1:
            raise ConfigurationError(
                f"max_sessions must be >= 1, got {self.max_sessions}"
            )
        if self.event_queue_size < 1:
            raise ConfigurationError(
                f"event_queue_size must be >= 1, got {self.event_queue_size}"
            )
        if self.default_checkpoint_every < 1:
            raise ConfigurationError(
                "default_checkpoint_every must be >= 1, got "
                f"{self.default_checkpoint_every}"
            )

    @property
    def sessions_root(self) -> Path:
        return self.root / "sessions"


def _require(payload: Dict[str, Any], key: str, kind, what: str):
    if key not in payload:
        raise ValidationFailed(f"{what} is missing required field {key!r}")
    value = payload[key]
    if not isinstance(value, kind):
        raise ValidationFailed(
            f"field {key!r} of {what} must be "
            f"{getattr(kind, '__name__', kind)}, got {type(value).__name__}"
        )
    return value


def _vertex_value(value, where: str):
    if isinstance(value, bool) or not isinstance(value, (str, int)):
        raise ValidationFailed(
            f"{where}: vertices must be JSON strings or integers, got "
            f"{type(value).__name__}"
        )
    return value


def parse_graph_payload(payload: Any) -> Graph:
    """Build the initial :class:`Graph` from the posted ``graph`` object.

    Shape: ``{"edges": [[u, v], ...], "vertices": [...], "directed": bool}``
    — ``vertices`` (isolated vertices allowed) and ``directed`` optional.
    """
    if not isinstance(payload, dict):
        raise ValidationFailed(
            f"'graph' must be an object, got {type(payload).__name__}"
        )
    directed = payload.get("directed", False)
    if not isinstance(directed, bool):
        raise ValidationFailed("'graph.directed' must be a boolean")
    unknown = set(payload) - {"edges", "vertices", "directed"}
    if unknown:
        raise ValidationFailed(
            f"unknown graph fields {sorted(unknown)}; expected edges, "
            "vertices, directed"
        )
    graph = Graph(directed=directed)
    for vertex in payload.get("vertices", ()):
        graph.add_vertex(_vertex_value(vertex, "'graph.vertices'"))
    edges = payload.get("edges", ())
    if not isinstance(edges, list):
        raise ValidationFailed("'graph.edges' must be a list of [u, v] pairs")
    for index, edge in enumerate(edges):
        if not isinstance(edge, (list, tuple)) or len(edge) != 2:
            raise ValidationFailed(
                f"'graph.edges[{index}]' must be a [u, v] pair, got {edge!r}"
            )
        u = _vertex_value(edge[0], f"'graph.edges[{index}]'")
        v = _vertex_value(edge[1], f"'graph.edges[{index}]'")
        try:
            graph.add_edge(u, v)
        except GraphError as exc:
            raise ValidationFailed(f"'graph.edges[{index}]': {exc}") from exc
    return graph


def parse_updates_payload(payload: Any) -> List[EdgeUpdate]:
    """Decode the posted batch: ``{"updates": [{"kind","u","v"}|["add",u,v]]}``."""
    if not isinstance(payload, dict):
        raise ValidationFailed("request body must be a JSON object")
    raw = _require(payload, "updates", list, "update batch")
    if not raw:
        raise ValidationFailed("'updates' must hold at least one update")
    updates: List[EdgeUpdate] = []
    for index, item in enumerate(raw):
        where = f"'updates[{index}]'"
        if isinstance(item, dict):
            kind = item.get("kind")
            u, v = item.get("u"), item.get("v")
        elif isinstance(item, (list, tuple)) and len(item) == 3:
            kind, u, v = item
        else:
            raise ValidationFailed(
                f"{where} must be {{'kind','u','v'}} or ['add'|'remove', u, v]"
            )
        if kind not in ("add", "remove"):
            raise ValidationFailed(
                f"{where}: kind must be 'add' or 'remove', got {kind!r}"
            )
        u = _vertex_value(u, where)
        v = _vertex_value(v, where)
        updates.append(
            EdgeUpdate(
                UpdateKind.ADDITION if kind == "add" else UpdateKind.REMOVAL,
                u,
                v,
            )
        )
    return updates


class ManagedSession:
    """One named session: engine + single-writer worker + event bridge."""

    def __init__(
        self,
        name: str,
        directory: Path,
        session: BetweennessSession,
        bridge: EventBridge,
        loop: asyncio.AbstractEventLoop,
        checkpoint_every: Optional[int],
    ) -> None:
        self.name = name
        self.directory = directory
        self.session = session
        self.bridge = bridge
        self._loop = loop
        self._checkpoint_every = checkpoint_every
        self._batches_since_checkpoint = 0
        self._queue: asyncio.Queue = asyncio.Queue()
        self._closing = False
        self._close_task: Optional[asyncio.Task] = None
        self._worker = loop.create_task(self._run(), name=f"session-{name}")

    # -- single-writer worker ------------------------------------------ #
    async def _run(self) -> None:
        while True:
            job = await self._queue.get()
            if job is None:
                break
            updates, future = job
            if future.cancelled():
                continue
            try:
                summary = await self._loop.run_in_executor(
                    None, self._apply_sync, updates
                )
            except ReproError as exc:
                if not future.cancelled():
                    future.set_exception(self._map_update_error(exc))
            except Exception as exc:  # noqa: BLE001 - surfaced to the caller
                if not future.cancelled():
                    future.set_exception(exc)
            else:
                if not future.cancelled():
                    future.set_result(summary)

    def _apply_sync(self, updates: List[EdgeUpdate]) -> Dict[str, Any]:
        """Runs on an executor thread; the only writer of this session."""
        self.session.apply_batch(updates)
        batch_index = self.session.batches_applied - 1
        durable = False
        if self.session.config.executor == "shard":
            # The coordinator runs its own rounds at the URI's cadence and
            # persists its batch cursor, so the batch is replay-durable.
            durable = True
        elif self._checkpoint_every is not None:
            self._batches_since_checkpoint += 1
            if self._batches_since_checkpoint >= self._checkpoint_every:
                self.session.checkpoint()
                self._batches_since_checkpoint = 0
                durable = True
        return {
            "applied": len(updates),
            "batch_index": batch_index,
            "num_vertices": self.session.graph.num_vertices,
            "num_edges": self.session.graph.num_edges,
            "durable": durable,
        }

    @staticmethod
    def _map_update_error(exc: ReproError) -> Exception:
        if isinstance(exc, ServiceError):
            return exc
        if isinstance(exc, (UpdateError, GraphError)):
            return UpdateRejected(str(exc))
        return exc

    # -- async surface (event-loop side) ------------------------------- #
    async def apply_updates(self, updates: List[EdgeUpdate]) -> Dict[str, Any]:
        """Enqueue one batch and await its application (FIFO, never
        interleaved with other batches of this session)."""
        if self._closing:
            raise SessionClosed(self.name)
        future: asyncio.Future = self._loop.create_future()
        await self._queue.put((updates, future))
        return await future

    async def read(self, fn, *args, **kwargs):
        """Run a blocking session read on an executor thread."""
        if self._closing:
            raise SessionClosed(self.name)
        return await self._loop.run_in_executor(
            None, lambda: fn(*args, **kwargs)
        )

    async def close(self, checkpoint: bool = True) -> None:
        """Drain the worker, optionally checkpoint, release the engine.

        Idempotent; concurrent callers all await the one shutdown task, so
        the final checkpoint can never race the engine teardown.
        """
        if self._close_task is None:
            self._closing = True
            await self._queue.put(None)
            self._close_task = self._loop.create_task(
                self._do_close(checkpoint)
            )
        await asyncio.shield(self._close_task)

    async def _do_close(self, checkpoint: bool) -> None:
        await self._worker
        await self._loop.run_in_executor(None, self._close_sync, checkpoint)

    def _close_sync(self, checkpoint: bool) -> None:
        try:
            if (
                checkpoint
                and not self.session.closed
                and self.session.config.executor == "serial"
            ):
                # A fresh final sidecar even off-cadence; the shard
                # executor's close() below runs its own final round.
                self.session.checkpoint()
        finally:
            self.session.close()
            self.bridge.close()

    # -- info ----------------------------------------------------------- #
    def info(self) -> Dict[str, Any]:
        graph = self.session.graph
        return {
            "name": self.name,
            "executor": self.session.config.executor,
            "backend": self.session.config.backend,
            "store": self.session.config.store,
            "directed": self.session.config.directed,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "batches_applied": self.session.batches_applied,
            "subscribers": self.bridge.num_clients,
        }


class SessionRegistry:
    """All live sessions of one service process, rooted in one directory."""

    def __init__(self, settings: ServiceSettings) -> None:
        self.settings = settings
        self._sessions: Dict[str, ManagedSession] = {}
        self._restore_failures: Dict[str, str] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._create_lock: Optional[asyncio.Lock] = None

    # -- lifecycle ------------------------------------------------------ #
    async def startup(self) -> Dict[str, Any]:
        """Bind to the running loop and restore every session on disk."""
        self._loop = asyncio.get_running_loop()
        self._create_lock = asyncio.Lock()
        self.settings.sessions_root.mkdir(parents=True, exist_ok=True)
        restored, skipped = [], []
        for directory in sorted(self.settings.sessions_root.iterdir()):
            meta_path = directory / _SERVICE_FILE
            if not meta_path.is_file():
                continue
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as exc:
                self._restore_failures[directory.name] = (
                    f"unreadable {_SERVICE_FILE}: {exc}"
                )
                continue
            name = meta.get("name", directory.name)
            if meta.get("closed"):
                skipped.append(name)
                continue
            try:
                await self._loop.run_in_executor(
                    None, self._restore_one, directory, meta
                )
                restored.append(name)
            except ReproError as exc:
                # A mangled session must not take the whole service down;
                # it is reported per name (requests for it get a 409).
                self._restore_failures[name] = str(exc)
        return {
            "restored": restored,
            "closed_on_disk": skipped,
            "failed": dict(self._restore_failures),
        }

    def _restore_one(self, directory: Path, meta: Dict[str, Any]) -> None:
        name = meta.get("name", directory.name)
        target = directory / meta.get("resume_target", _CHECKPOINT_FILE)
        session = resume_session(target)
        self._adopt(name, directory, session, meta.get("checkpoint_every"))

    def _adopt(
        self,
        name: str,
        directory: Path,
        session: BetweennessSession,
        checkpoint_every: Optional[int],
    ) -> ManagedSession:
        assert self._loop is not None
        bridge = EventBridge(self._loop, self.settings.event_queue_size)
        session.subscribe(bridge)
        managed = ManagedSession(
            name, directory, session, bridge, self._loop, checkpoint_every
        )
        self._sessions[name] = managed
        return managed

    async def close_all(self, checkpoint: bool = True) -> None:
        """Shut every session down (final checkpoints included)."""
        sessions = list(self._sessions.values())
        self._sessions.clear()
        for managed in sessions:
            await managed.close(checkpoint=checkpoint)

    # -- create / delete ------------------------------------------------ #
    async def create(self, payload: Any) -> Dict[str, Any]:
        """Create a named session from a posted JSON payload.

        Shape::

            {"name": "social",
             "graph": {"edges": [[u, v], ...], "directed": false},
             "config": {...BetweennessConfig fields, paths server-owned...},
             "checkpoint_every": 1}
        """
        if self._loop is None:
            raise ServiceError("registry not started")
        if not isinstance(payload, dict):
            raise ValidationFailed("request body must be a JSON object")
        name = _require(payload, "name", str, "session payload")
        if not _NAME_RE.match(name):
            raise ValidationFailed(
                f"session name {name!r} is invalid (letters, digits, '.', "
                "'_', '-'; at most 64 characters; must not start with a "
                "punctuation character)"
            )
        unknown = set(payload) - {"name", "graph", "config", "checkpoint_every"}
        if unknown:
            raise ValidationFailed(
                f"unknown session fields {sorted(unknown)}; expected name, "
                "graph, config, checkpoint_every"
            )
        graph = parse_graph_payload(payload.get("graph", {}))
        checkpoint_every = payload.get(
            "checkpoint_every", self.settings.default_checkpoint_every
        )
        if not isinstance(checkpoint_every, int) or checkpoint_every < 1:
            raise ValidationFailed(
                f"'checkpoint_every' must be an integer >= 1, got "
                f"{checkpoint_every!r}"
            )

        assert self._create_lock is not None
        async with self._create_lock:
            if name in self._sessions:
                raise SessionExists(name)
            if len(self._sessions) >= self.settings.max_sessions:
                raise ValidationFailed(
                    f"session limit reached ({self.settings.max_sessions}); "
                    "delete one first",
                )
            directory = self.settings.sessions_root / name
            if directory.exists():
                raise SessionExists(name)
            config = self._effective_config(
                payload.get("config", {}), graph, directory
            )
            directory.mkdir(parents=True)
            try:
                managed = await self._loop.run_in_executor(
                    None,
                    self._create_sync,
                    name,
                    directory,
                    graph,
                    config,
                    checkpoint_every,
                )
            except ReproError as exc:
                shutil.rmtree(directory, ignore_errors=True)
                if isinstance(exc, ServiceError):
                    raise
                raise ValidationFailed(str(exc)) from exc
            self._restore_failures.pop(name, None)
            return managed.info()

    def _create_sync(
        self,
        name: str,
        directory: Path,
        graph: Graph,
        config: BetweennessConfig,
        checkpoint_every: int,
    ) -> ManagedSession:
        session = BetweennessSession(graph, config)
        try:
            if config.executor == "serial":
                # Durable from birth: SIGKILL before the first batch must
                # still restore the session.  (A shard ensemble writes its
                # round-0 state when the coordinator boots.)
                session.checkpoint()
        except BaseException:
            session.close()
            raise
        meta = {
            "name": name,
            "executor": config.executor,
            "resume_target": (
                _SHARD_DIR if config.executor == "shard" else _CHECKPOINT_FILE
            ),
            "checkpoint_every": (
                checkpoint_every if config.executor == "serial" else None
            ),
            "closed": False,
            "config": config.to_dict(),
        }
        self._write_meta(directory, meta)
        return self._adopt(
            name,
            directory,
            session,
            checkpoint_every if config.executor == "serial" else None,
        )

    def _effective_config(
        self, posted: Any, graph: Graph, directory: Path
    ) -> BetweennessConfig:
        """The posted config with every path rewritten to server-owned
        locations under the session directory.

        Clients choose schemes and knobs; the server owns the filesystem.
        A posted path (or a client-set ``checkpoint_path`` /
        ``seed_store_path``) is refused rather than silently rewritten.
        """
        if not isinstance(posted, dict):
            raise ValidationFailed("'config' must be an object")
        posted = dict(posted)
        for forbidden in ("checkpoint_path", "checkpoint_every", "seed_store_path"):
            if posted.get(forbidden) is not None:
                raise ValidationFailed(
                    f"'config.{forbidden}' is server-owned; use the "
                    "top-level 'checkpoint_every' field for the cadence"
                )
            posted.pop(forbidden, None)
        executor = posted.get("executor", "serial")
        if executor not in ("serial", "shard"):
            raise ValidationFailed(
                "the service serves durable sessions only: "
                f"'config.executor' must be 'serial' or 'shard', got "
                f"{executor!r}"
            )
        store = posted.get("store", "memory://")
        if not isinstance(store, str):
            raise ValidationFailed("'config.store' must be a store URI string")
        scheme, _, rest = store.partition("://")
        if scheme not in _ALLOWED_SCHEMES:
            raise ValidationFailed(
                f"'config.store' scheme {scheme!r} is not servable; choose "
                f"one of {', '.join(s + '://' for s in _ALLOWED_SCHEMES)}"
            )
        path_part, _, query = rest.partition("?")
        if path_part:
            raise ValidationFailed(
                "'config.store' must not name a path — the service owns "
                f"session storage locations (got {store!r}); post the "
                f"scheme alone, e.g. '{scheme}://"
                + (f"?{query}'" if query else "'")
            )
        if scheme == "disk":
            store = f"disk://{directory / _STORE_FILE}"
            if query:
                store += f"?{query}"
        elif scheme == "shard":
            shard_root = directory / _SHARD_DIR
            params = [] if not query else query.split("&")
            keys = {p.partition("=")[0] for p in params}
            if "shards" not in keys:
                params.append(f"shards={posted.get('workers', 1)}")
            if "checkpoint_every" not in keys:
                # Default the ensemble cadence to the service-wide policy
                # so shard sessions are as replay-durable as serial ones.
                params.append(
                    f"checkpoint_every={self.settings.default_checkpoint_every}"
                )
            store = f"shard://{shard_root}?" + "&".join(params)
        posted["store"] = store
        posted.setdefault("directed", graph.directed)
        if executor == "serial":
            posted["checkpoint_path"] = str(directory / _CHECKPOINT_FILE)
        try:
            config = BetweennessConfig.from_dict(posted)
        except ConfigurationError as exc:
            raise ValidationFailed(str(exc)) from exc
        if config.directed != graph.directed:
            raise ValidationFailed(
                "'config.directed' contradicts 'graph.directed'"
            )
        return config

    async def delete(self, name: str, purge: bool = False) -> Dict[str, Any]:
        """Close ``name`` (with a final checkpoint); ``purge`` removes its
        directory so the name becomes reusable."""
        managed = self._sessions.pop(name, None)
        if managed is None:
            directory = self.settings.sessions_root / name
            if not directory.exists():
                raise SessionNotFound(name)
            # Closed (or restore-failed) session still on disk.
            if purge:
                await self._run_blocking(
                    shutil.rmtree, directory, ignore_errors=True
                )
                self._restore_failures.pop(name, None)
                return {"name": name, "closed": True, "purged": True}
            raise SessionClosed(name)
        await managed.close(checkpoint=True)
        if purge:
            await self._run_blocking(
                shutil.rmtree, managed.directory, ignore_errors=True
            )
        else:
            meta_path = managed.directory / _SERVICE_FILE
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                meta = {"name": name}
            meta["closed"] = True
            self._write_meta(managed.directory, meta)
        return {"name": name, "closed": True, "purged": purge}

    # -- access --------------------------------------------------------- #
    def get(self, name: str) -> ManagedSession:
        managed = self._sessions.get(name)
        if managed is not None:
            return managed
        if name in self._restore_failures:
            raise SessionUnavailable(name, self._restore_failures[name])
        if (self.settings.sessions_root / name).exists():
            raise SessionClosed(name)
        raise SessionNotFound(name)

    def list_sessions(self) -> List[Dict[str, Any]]:
        return [
            managed.info()
            for _, managed in sorted(self._sessions.items())
        ]

    @property
    def restore_failures(self) -> Dict[str, str]:
        return dict(self._restore_failures)

    async def _run_blocking(self, fn, *args, **kwargs):
        assert self._loop is not None
        return await self._loop.run_in_executor(
            None, lambda: fn(*args, **kwargs)
        )

    @staticmethod
    def _write_meta(directory: Path, meta: Dict[str, Any]) -> None:
        tmp = directory / (_SERVICE_FILE + ".tmp")
        tmp.write_text(
            json.dumps(meta, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        tmp.replace(directory / _SERVICE_FILE)
