"""Transport-neutral route handlers and the service's routing table.

The handlers below speak plain data: a :class:`ServiceRequest` in, a
:class:`JSONResult` (or :class:`EventStreamResult` for SSE) out, with
:mod:`repro.service.errors` raised for every deliberate 4xx.  Both
transports — the FastAPI app in :mod:`repro.service.app` and the
dependency-free asyncio server in :mod:`repro.service.server` — wire the
same :data:`ROUTES` table, so their wire behaviour cannot drift and unit
tests can exercise the whole API without opening a socket.

Endpoints (see ``docs/service.md`` for the full reference)::

    GET    /healthz                      liveness (no auth)
    GET    /sessions                     list live sessions
    POST   /sessions                     create from {name, graph, config}
    GET    /sessions/{name}              one session's stats
    DELETE /sessions/{name}[?purge=true] checkpoint-on-close (+ purge)
    POST   /sessions/{name}/updates      apply one edge-update batch
    GET    /sessions/{name}/top_k        k most central vertices/edges
    GET    /sessions/{name}/scores       betweenness scores (all or some)
    GET    /sessions/{name}/events       SSE stream of session events
"""

from __future__ import annotations

import hmac
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.service.errors import AuthenticationFailed, ValidationFailed
from repro.service.events import ClientStream, EventBridge
from repro.service.registry import (
    SessionRegistry,
    parse_updates_payload,
)

#: API version tag served by ``/healthz`` (wire format, not package version).
API_VERSION = "1"


@dataclass(frozen=True)
class ServiceRequest:
    """What a transport hands a handler: the parsed request."""

    method: str
    path: str
    path_params: Dict[str, str] = field(default_factory=dict)
    query: Dict[str, str] = field(default_factory=dict)
    body: Any = None
    headers: Dict[str, str] = field(default_factory=dict)  # lower-cased keys


@dataclass(frozen=True)
class JSONResult:
    """A plain JSON response."""

    status: int
    payload: Any


@dataclass(frozen=True)
class EventStreamResult:
    """An SSE response: the transport pumps ``stream`` until it closes.

    The transport *must* call ``release()`` when the client goes away so
    the bridge drops the queue.
    """

    stream: ClientStream
    bridge: EventBridge
    keepalive: float

    def release(self) -> None:
        self.bridge.discard(self.stream)


@dataclass(frozen=True)
class Route:
    method: str
    #: Path segments; ``{name}``-style segments capture one path component.
    pattern: str
    handler: Callable
    #: ``False`` only for the liveness probe.
    auth: bool = True

    @property
    def segments(self) -> Tuple[str, ...]:
        return tuple(s for s in self.pattern.split("/") if s)


def check_auth(registry: SessionRegistry, request: ServiceRequest) -> None:
    """Enforce the api-key policy for one request (no-op when unset)."""
    expected = registry.settings.api_key
    if expected is None:
        return
    presented = request.headers.get("x-api-key")
    if presented is None:
        authorization = request.headers.get("authorization", "")
        scheme, _, token = authorization.partition(" ")
        if scheme.lower() == "bearer" and token:
            presented = token.strip()
    if presented is None:
        raise AuthenticationFailed(
            "missing API key; send it as 'X-API-Key: <key>' or "
            "'Authorization: Bearer <key>'"
        )
    if not hmac.compare_digest(presented, expected):
        raise AuthenticationFailed("invalid API key")


def _query_int(query: Dict[str, str], key: str, default: int) -> int:
    raw = query.get(key)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValidationFailed(
            f"query parameter {key}={raw!r} is not an integer"
        ) from None


def _query_bool(query: Dict[str, str], key: str, default: bool = False) -> bool:
    raw = query.get(key)
    if raw is None:
        return default
    lowered = raw.lower()
    if lowered in ("true", "1", "yes"):
        return True
    if lowered in ("false", "0", "no"):
        return False
    raise ValidationFailed(
        f"query parameter {key}={raw!r} is not a boolean (use true/false)"
    )


# --------------------------------------------------------------------- #
# Handlers
# --------------------------------------------------------------------- #
async def healthz(registry: SessionRegistry, request: ServiceRequest):
    return JSONResult(
        200,
        {
            "status": "ok",
            "api_version": API_VERSION,
            "sessions": len(registry.list_sessions()),
            "restore_failures": registry.restore_failures,
        },
    )


async def list_sessions(registry: SessionRegistry, request: ServiceRequest):
    return JSONResult(200, {"sessions": registry.list_sessions()})


async def create_session(registry: SessionRegistry, request: ServiceRequest):
    info = await registry.create(request.body)
    return JSONResult(201, info)


async def get_session(registry: SessionRegistry, request: ServiceRequest):
    managed = registry.get(request.path_params["name"])
    return JSONResult(200, managed.info())


async def delete_session(registry: SessionRegistry, request: ServiceRequest):
    purge = _query_bool(request.query, "purge")
    outcome = await registry.delete(request.path_params["name"], purge=purge)
    return JSONResult(200, outcome)


async def post_updates(registry: SessionRegistry, request: ServiceRequest):
    managed = registry.get(request.path_params["name"])
    updates = parse_updates_payload(request.body)
    summary = await managed.apply_updates(updates)
    return JSONResult(200, summary)


async def get_top_k(registry: SessionRegistry, request: ServiceRequest):
    managed = registry.get(request.path_params["name"])
    k = _query_int(request.query, "k", 10)
    if k < 1:
        raise ValidationFailed(f"query parameter k must be >= 1, got {k}")
    edges = _query_bool(request.query, "edges")
    ranking = await managed.read(managed.session.top_k, k, edges=edges)
    top = [
        {"item": list(item) if edges else item, "score": score}
        for item, score in ranking
    ]
    return JSONResult(
        200,
        {
            "k": k,
            "edges": edges,
            "batches_applied": managed.session.batches_applied,
            "top": top,
        },
    )


async def get_scores(registry: SessionRegistry, request: ServiceRequest):
    """Betweenness scores, as ``[item, score]`` pairs.

    Vertex identifiers are arbitrary JSON scalars, so scores are served as
    pairs rather than an object (JSON object keys must be strings, which
    would silently collide ``1`` and ``"1"``).  ``?vertices=a,b`` filters
    (comma-separated, string-keyed graphs only); ``?edges=true`` returns
    edge scores as ``[[u, v], score]`` pairs.
    """
    managed = registry.get(request.path_params["name"])
    edges = _query_bool(request.query, "edges")
    wanted = request.query.get("vertices")
    if edges and wanted is not None:
        raise ValidationFailed(
            "the vertices filter only applies to vertex scores"
        )
    if edges:
        scores = await managed.read(managed.session.edge_betweenness)
        pairs = [[list(edge), score] for edge, score in scores.items()]
    else:
        scores = await managed.read(managed.session.vertex_betweenness)
        if wanted is not None:
            names = [v for v in wanted.split(",") if v != ""]
            missing = [v for v in names if v not in scores]
            if missing:
                raise ValidationFailed(
                    f"unknown vertices {missing!r}; note that the "
                    "comma-separated filter matches string vertex names "
                    "only — fetch all scores for integer-keyed graphs",
                    details={"unknown": missing},
                )
            pairs = [[v, scores[v]] for v in names]
        else:
            pairs = [[v, s] for v, s in scores.items()]
    return JSONResult(
        200,
        {
            "edges": edges,
            "batches_applied": managed.session.batches_applied,
            "scores": pairs,
        },
    )


async def open_events(registry: SessionRegistry, request: ServiceRequest):
    managed = registry.get(request.path_params["name"])
    stream = managed.bridge.open_stream()
    return EventStreamResult(
        stream=stream,
        bridge=managed.bridge,
        keepalive=registry.settings.keepalive_seconds,
    )


#: The one routing table both transports install.
ROUTES: List[Route] = [
    Route("GET", "/healthz", healthz, auth=False),
    Route("GET", "/sessions", list_sessions),
    Route("POST", "/sessions", create_session),
    Route("GET", "/sessions/{name}", get_session),
    Route("DELETE", "/sessions/{name}", delete_session),
    Route("POST", "/sessions/{name}/updates", post_updates),
    Route("GET", "/sessions/{name}/top_k", get_top_k),
    Route("GET", "/sessions/{name}/scores", get_scores),
    Route("GET", "/sessions/{name}/events", open_events),
]


def match_route(
    method: str, path: str
) -> Optional[Tuple[Route, Dict[str, str]]]:
    """Resolve ``(method, path)`` against :data:`ROUTES`.

    Returns the route and its captured path parameters, or ``None`` when no
    pattern matches (404).  Trailing slashes are tolerated.
    """
    segments = tuple(s for s in path.split("/") if s)
    for route in ROUTES:
        pattern = route.segments
        if route.method != method or len(pattern) != len(segments):
            continue
        params: Dict[str, str] = {}
        for expected, actual in zip(pattern, segments):
            if expected.startswith("{") and expected.endswith("}"):
                params[expected[1:-1]] = actual
            elif expected != actual:
                break
        else:
            return route, params
    return None
