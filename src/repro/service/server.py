"""Dependency-free asyncio HTTP/1.1 transport for the service.

The preferred front end is the FastAPI app in :mod:`repro.service.app`
(``pip install repro[service]``), but the service core must stay usable —
and testable — on a bare Python install.  This module is a minimal,
standard-library-only HTTP server speaking exactly the same wire API: it
routes through the same :data:`~repro.service.routes.ROUTES` table, emits
the same JSON envelopes and the same SSE frames.  It supports keep-alive,
Content-Length bodies and streaming responses; it deliberately does *not*
implement chunked request bodies, TLS or HTTP/2 — put a real ASGI server
(or a reverse proxy) in front for production edges.

Run it via ``repro serve --impl asyncio`` or programmatically::

    service = ServiceServer(ServiceSettings(root="/var/lib/repro"))
    asyncio.run(service.serve("127.0.0.1", 8750))
"""

from __future__ import annotations

import asyncio
import json
import traceback
from typing import Any, Dict, Optional, Set
from urllib.parse import unquote_plus

from repro.service.errors import InvalidJSONBody, ServiceError
from repro.service.events import sse_frame
from repro.service.registry import ServiceSettings, SessionRegistry
from repro.service.routes import (
    EventStreamResult,
    JSONResult,
    ServiceRequest,
    check_auth,
    match_route,
)

#: Largest accepted request body (16 MiB) — a graph of a few hundred
#: thousand edges; beyond that, load from a dataset server-side.
MAX_BODY_BYTES = 16 * 1024 * 1024
#: Largest accepted request line + header block.
MAX_HEADER_BYTES = 64 * 1024


def _json_bytes(payload: Any) -> bytes:
    return json.dumps(payload, separators=(",", ":"), default=str).encode(
        "utf-8"
    )


class ServiceServer:
    """One registry + one asyncio socket server."""

    def __init__(
        self,
        settings: ServiceSettings,
        registry: Optional[SessionRegistry] = None,
    ) -> None:
        self.settings = settings
        self.registry = registry or SessionRegistry(settings)
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set["asyncio.Task[None]"] = set()

    # -- lifecycle ------------------------------------------------------ #
    async def start(self, host: str = "127.0.0.1", port: int = 8750) -> int:
        """Restore sessions, bind the socket; returns the bound port."""
        await self.registry.startup()
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        bound = self._server.sockets[0].getsockname()[1]
        return bound

    async def serve(self, host: str = "127.0.0.1", port: int = 8750) -> None:
        """Start and serve until cancelled; closes every session on the
        way out (with final checkpoints)."""
        await self.start(host, port)
        assert self._server is not None
        try:
            async with self._server:
                await self._server.serve_forever()
        finally:
            await self.stop()

    async def stop(self) -> None:
        """Stop accepting, close sessions (final checkpoints included)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Closing the sessions ends every SSE stream gracefully; whatever
        # connections remain are idle keep-alives — cancel and drain them
        # so loop teardown never logs half-closed handler tasks.
        await self.registry.close_all()
        pending = [task for task in self._connections if not task.done()]
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    @property
    def port(self) -> Optional[int]:
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[1]

    # -- connection handling -------------------------------------------- #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                keep_alive = await self._dispatch(request, writer)
                if not keep_alive:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass
        except asyncio.CancelledError:
            # Only ``stop()`` cancels handler tasks; finish *uncancelled* so
            # asyncio's stream machinery never logs a half-closed handler.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[ServiceRequest]:
        try:
            request_line = await reader.readline()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            return None
        if not request_line or not request_line.strip():
            return None
        try:
            method, target, _version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        header_bytes = 0
        while True:
            line = await reader.readline()
            header_bytes += len(line)
            if header_bytes > MAX_HEADER_BYTES or not line:
                return None
            if line in (b"\r\n", b"\n"):
                break
            key, _, value = line.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        body: Any = None
        length = int(headers.get("content-length", "0") or "0")
        if length:
            if length > MAX_BODY_BYTES:
                return ServiceRequest(
                    method=method.upper(),
                    path="\x00too-large",  # sentinel: dispatched as a 413
                    headers=headers,
                )
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw)
            except json.JSONDecodeError:
                body = _INVALID_JSON
        path, _, query_string = target.partition("?")
        return ServiceRequest(
            method=method.upper(),
            path=path,
            query=_parse_query(query_string),
            body=body,
            headers=headers,
        )

    async def _dispatch(
        self, request: ServiceRequest, writer: asyncio.StreamWriter
    ) -> bool:
        """Route one request; returns whether to keep the connection."""
        if request.path == "\x00too-large":
            await self._write_json(
                writer,
                413,
                {
                    "error": {
                        "code": "payload_too_large",
                        "message": f"request body exceeds {MAX_BODY_BYTES} bytes",
                    }
                },
                keep_alive=False,
            )
            return False
        if request.body is _INVALID_JSON:
            exc = InvalidJSONBody()
            await self._write_json(writer, exc.status_code, exc.payload())
            return True
        matched = match_route(request.method, request.path)
        if matched is None:
            await self._write_json(
                writer,
                404,
                {
                    "error": {
                        "code": "not_found",
                        "message": (
                            f"no route for {request.method} {request.path}"
                        ),
                    }
                },
            )
            return True
        route, params = matched
        request = ServiceRequest(
            method=request.method,
            path=request.path,
            path_params=params,
            query=request.query,
            body=request.body,
            headers=request.headers,
        )
        try:
            if route.auth:
                check_auth(self.registry, request)
            result = await route.handler(self.registry, request)
        except ServiceError as exc:
            await self._write_json(writer, exc.status_code, exc.payload())
            return True
        except Exception:  # noqa: BLE001 - last-resort 500, never a hang
            traceback.print_exc()
            await self._write_json(
                writer,
                500,
                {
                    "error": {
                        "code": "internal_error",
                        "message": "unexpected server error",
                    }
                },
            )
            return True
        if isinstance(result, EventStreamResult):
            await self._write_event_stream(writer, result)
            return False  # the SSE connection is single-use
        assert isinstance(result, JSONResult)
        await self._write_json(writer, result.status, result.payload)
        return True

    # -- response writers ------------------------------------------------ #
    @staticmethod
    async def _write_json(
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        keep_alive: bool = True,
    ) -> None:
        body = _json_bytes(payload)
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            "content-type: application/json\r\n"
            f"content-length: {len(body)}\r\n"
            f"connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    async def _write_event_stream(
        self, writer: asyncio.StreamWriter, result: EventStreamResult
    ) -> None:
        head = (
            "HTTP/1.1 200 OK\r\n"
            "content-type: text/event-stream\r\n"
            "cache-control: no-cache\r\n"
            "connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + b": connected\n\n")
            await writer.drain()
            async for frame in result.stream.frames(
                keepalive=result.keepalive
            ):
                writer.write(sse_frame(frame))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            result.release()


_INVALID_JSON = object()

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
}


def _parse_query(query_string: str) -> Dict[str, str]:
    query: Dict[str, str] = {}
    if not query_string:
        return query
    for part in query_string.split("&"):
        if not part:
            continue
        key, _, value = part.partition("=")
        query[unquote_plus(key)] = unquote_plus(value)
    return query
