"""Storage backends for the per-source betweenness data ``BD[.]``.

Section 5.1 of the paper describes how the framework stays practical on
large graphs: the per-source data ``(d, sigma, delta)`` has fixed width once
the predecessor lists are dropped, so it can be laid out on disk in a
columnar binary format, read sequentially source by source, updated in
place, and skipped entirely (after peeking at just two distances) when an
update does not affect the source.

Three interchangeable backends implement the same :class:`BDStore`
interface:

* :class:`InMemoryBDStore` — the "MO" configuration (in memory, no
  predecessor lists);
* :class:`ArrayBDStore` — the columnar in-RAM store backing the array
  kernel (also a full :class:`BDStore`);
* :class:`DiskBDStore` — the "DO" configuration (on disk, no predecessor
  lists), using the columnar layout of Section 5.1.

Stores are addressed declaratively by **URI** (``memory://``, ``arrays://``,
``disk:///path?mmap=true``) through :func:`create_store`; third-party
backends plug in with :func:`register_store_scheme` (see
:mod:`repro.storage.factory` and ``docs/api.md``).
"""

from repro.storage.base import BDStore
from repro.storage.memory import InMemoryBDStore
from repro.storage.arrays import ArrayBDStore
from repro.storage.disk import DiskBDStore
from repro.storage.factory import (
    StoreRequest,
    StoreURI,
    create_store,
    parse_store_uri,
    register_store_scheme,
    registered_store_schemes,
)
from repro.storage.header import STORE_MAGIC, STORE_VERSION, StoreLayout
from repro.storage.index import VertexIndex
from repro.storage.partition import SourcePartition, partition_sources
from repro.storage.shard import ShardLayout, ShardManifest, pick_shard

__all__ = [
    "BDStore",
    "InMemoryBDStore",
    "ArrayBDStore",
    "DiskBDStore",
    "StoreURI",
    "StoreRequest",
    "create_store",
    "parse_store_uri",
    "register_store_scheme",
    "registered_store_schemes",
    "VertexIndex",
    "SourcePartition",
    "partition_sources",
    "ShardLayout",
    "ShardManifest",
    "pick_shard",
    "StoreLayout",
    "STORE_MAGIC",
    "STORE_VERSION",
]
