"""In-RAM columnar betweenness-data store backing the array kernel.

:class:`ArrayBDStore` keeps the per-source records in three dense 2-D numpy
matrices — one row per *owned source*, one column per vertex slot (the
column layout :class:`repro.storage.disk.DiskBDStore` maps from its record
file, minus the file).  It implements the full
:class:`repro.storage.base.BDStore` interface, so everything that works
against the in-memory dict store (snapshots, checkpoints, the parallel
drivers) works against it, *plus* the column protocol the array-native
kernel uses:

* :meth:`record_columns` with ``writable=True`` hands out the live row
  views, so an update sweep repairs records in place with zero copies and
  zero dictionary materialisation;
* :meth:`put_columns` bulk-writes a freshly computed record (the vectorized
  Brandes bootstrap path);
* :meth:`peek_distance_block` serves the Proposition 3.1 skip test for a
  whole batch and every source in one fancy-indexed gather.

Rows are indexed through a source → row mapping rather than by global
vertex slot, so a *restricted* instance (one mapper's partition) allocates
``owned_sources × capacity`` cells, not ``capacity × capacity`` — memory
stays proportional to the partition, exactly like the dict store.  Both
dimensions grow geometrically as stream-born vertices and adopted sources
arrive, mirroring the disk store's growth policy.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.brandes import SourceData
from repro.exceptions import (
    ConfigurationError,
    StoreClosedError,
    StoreCorruptedError,
)
from repro.storage.base import BDStore
from repro.storage.buffers import (
    GenerationStamp,
    ShmDescriptor,
    attach_bundle,
    get_allocator,
)
from repro.storage.codec import (
    DELTA_DTYPE,
    DISTANCE_DTYPE,
    SIGMA_DTYPE,
    decode_record_arrays,
    encode_record_arrays,
)
from repro.storage.index import VertexIndex
from repro.types import UNREACHABLE, Vertex

#: Headroom factor applied when a dimension outgrows its allocation.
GROWTH_FACTOR = 1.25


class ArrayBDStore(BDStore):
    """Dense columnar ``BD[.]`` store held in RAM.

    Parameters
    ----------
    vertices:
        Initial vertex set; every vertex receives a column slot.
    capacity:
        Column slots to pre-allocate; defaults to the vertex count with
        headroom.
    sources:
        Vertices that start as sources (identity records).  Defaults to
        *none* — the framework's bootstrap fills records in source order,
        which keeps :meth:`sources` iteration order identical to the dict
        backend's put order.  Pass an iterable (or ``None`` for "all
        vertices") to mirror :class:`~repro.storage.disk.DiskBDStore`'s
        construction.
    row_capacity:
        Source rows to pre-allocate.  A caller that knows how many sources
        it will own (the framework does) passes it to avoid incremental
        row growth during the bootstrap; otherwise rows grow geometrically
        on demand.
    directed:
        Declared orientation of the graph the records describe, or ``None``
        (default) for orientation-agnostic.  No layout changes either way —
        the flag only lets the framework refuse pairing the store with a
        graph of the other orientation, mirroring the disk store's header
        bit.
    allocator:
        ``"heap"`` (default — plain numpy, exactly the pre-seam behavior)
        or ``"shm"`` — the column matrices then live in named
        shared-memory segments this store owns, exportable to other
        processes via :meth:`export_column_descriptors`.  Growth
        re-allocates a *new generation* of segments, bumps the store's
        generation stamp and unlinks the old ones, so descriptors exported
        earlier are refused at attach time instead of silently pointing at
        dead or resized memory.
    """

    def __init__(
        self,
        vertices: Iterable[Vertex],
        capacity: Optional[int] = None,
        sources: Optional[Iterable[Vertex]] = (),
        row_capacity: Optional[int] = None,
        directed: Optional[bool] = None,
        allocator=None,
    ) -> None:
        self.directed = directed
        self._allocator = get_allocator(allocator, hint="arrays")
        self._generation = 0
        self._stamp = (
            GenerationStamp.create("arrays")
            if self._allocator.kind == "shm"
            else None
        )
        self._column_buffers: List = []
        self._index = VertexIndex(vertices)
        initial = len(self._index)
        if capacity is None:
            capacity = max(initial, int(initial * GROWTH_FACTOR), 16)
        if capacity < initial:
            raise StoreCorruptedError(
                f"capacity {capacity} is smaller than the vertex count {initial}"
            )
        self._capacity = capacity
        if sources is None:
            sources = self._index.vertices()
        source_list = list(sources)
        self._row_capacity = max(row_capacity or 0, len(source_list), 16)
        self._allocate(self._row_capacity, capacity)
        self._row_of: Dict[Vertex, int] = {}
        # Slot -> matrix row (-1 when the slot's vertex has no record yet);
        # the vectorized peek path indexes this directly instead of going
        # label dict -> row dict per source.
        self._row_of_slot = np.full(capacity, -1, dtype=np.int64)
        self._source_list: List[Vertex] = []
        self._closed = False
        for source in source_list:
            self.add_source(source)

    def _allocate(self, rows: int, columns: int) -> None:
        alloc = self._allocator
        dist = alloc.full((rows, columns), DISTANCE_DTYPE, UNREACHABLE)
        sigma = alloc.zeros((rows, columns), SIGMA_DTYPE)
        delta = alloc.zeros((rows, columns), DELTA_DTYPE)
        self._column_buffers = [dist, sigma, delta]
        self._dist = dist.array
        self._sigma = sigma.array
        self._delta = delta.array

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def vertex_index(self) -> VertexIndex:
        """The store's vertex/slot assignment (shared with the kernel)."""
        return self._index

    @property
    def capacity(self) -> int:
        """Number of allocated vertex (column) slots per record."""
        return self._capacity

    @property
    def columns_in_place(self) -> bool:
        """Writable column views alias the store (no write-back needed)."""
        return True

    @property
    def shared(self) -> bool:
        """Whether the column matrices live in shared-memory segments."""
        return bool(self._column_buffers) and self._column_buffers[0].shared

    @property
    def generation(self) -> int:
        """Segment generation; bumps whenever growth re-allocates columns."""
        return self._generation

    # ------------------------------------------------------------------ #
    # BDStore interface
    # ------------------------------------------------------------------ #
    def put(self, data: SourceData) -> None:
        self._ensure_open()
        if data.source not in self._index:
            self.register_vertex(data.source)
        distance, sigma, delta = encode_record_arrays(
            data, self._index, self._capacity
        )
        self.put_columns(data.source, distance, sigma, delta)

    def get(self, source: Vertex) -> SourceData:
        self._ensure_open()
        row = self._row(source)
        return decode_record_arrays(
            self._dist[row], self._sigma[row], self._delta[row],
            source, self._index,
        )

    def endpoint_distances(
        self, source: Vertex, u: Vertex, v: Vertex
    ) -> Tuple[Optional[int], Optional[int]]:
        self._ensure_open()
        distances = self._dist[self._row(source)]
        result: List[Optional[int]] = []
        for vertex in (u, v):
            if vertex not in self._index:
                result.append(None)
                continue
            value = int(distances[self._index.slot(vertex)])
            result.append(None if value == UNREACHABLE else value)
        return result[0], result[1]

    def add_source(self, source: Vertex) -> None:
        self._ensure_open()
        if source in self._row_of:
            return
        if source not in self._index:
            self.register_vertex(source)
        row = self._new_row(source)
        slot = self._index.slot(source)
        self._dist[row, slot] = 0
        self._sigma[row, slot] = 1
        self._delta[row, slot] = 0.0

    def register_vertex(self, vertex: Vertex) -> None:
        self._ensure_open()
        if vertex in self._index:
            return
        self._index.add(vertex)
        if len(self._index) > self._capacity:
            self._grow_columns()

    def sources(self) -> Iterator[Vertex]:
        self._ensure_open()
        return iter(list(self._source_list))

    def __len__(self) -> int:
        return len(self._source_list)

    def __contains__(self, source: Vertex) -> bool:
        return source in self._row_of

    def close(self) -> None:
        self._closed = True
        self._dist = self._sigma = self._delta = None  # type: ignore[assignment]
        for buffer in self._column_buffers:
            buffer.release()
        self._column_buffers = []
        if self._stamp is not None:
            self._stamp.release()
            self._stamp = None
        self._source_list = []
        self._row_of = {}
        self._row_of_slot = np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Shared-memory export / attach
    # ------------------------------------------------------------------ #
    def export_column_descriptors(self) -> dict:
        """Descriptor bundle another process can :meth:`attach` to.

        Only shm-allocated stores export; the bundle carries the segment
        descriptors (stamped with the current generation), the stamp
        segment's name, and the label-side metadata (vertex order, source
        order, capacities) needed to rebuild the row/column mappings
        exactly.  Everything is plain picklable data a few hundred bytes
        long — the whole point is that the matrices themselves stay put.
        """
        self._ensure_open()
        if not self.shared:
            raise ConfigurationError(
                "only shm-allocated array stores can export descriptors "
                "(construct with allocator='shm')"
            )
        return {
            "stamp": self._stamp.name,
            "generation": self._generation,
            "columns": [
                buffer.descriptor(self._generation).to_payload()
                for buffer in self._column_buffers
            ],
            "vertices": list(self._index.vertices()),
            "sources": list(self._source_list),
            "capacity": self._capacity,
            "row_capacity": self._row_capacity,
            "directed": self.directed,
        }

    @classmethod
    def attach(cls, payload: dict, writable: bool = True) -> "ArrayBDStore":
        """Map another process's exported column matrices as a live store.

        Refuses stale bundles (the owner's stamp no longer matches the
        descriptors' generation).  The attached store never unlinks the
        segments — that is the owner's job; :meth:`close` here only drops
        the local mappings.  If the attached store itself grows, growth
        re-allocates into private heap arrays, detaching naturally.
        """
        descriptors = [
            ShmDescriptor.from_payload(entry) for entry in payload["columns"]
        ]
        buffers = attach_bundle(
            descriptors, stamp_name=payload.get("stamp"), writable=writable
        )
        self = cls.__new__(cls)
        self.directed = payload.get("directed")
        self._allocator = get_allocator("heap")
        self._generation = int(payload.get("generation", 0))
        self._stamp = None
        self._column_buffers = list(buffers)
        self._dist, self._sigma, self._delta = (b.array for b in buffers)
        self._index = VertexIndex(payload["vertices"])
        self._capacity = int(payload["capacity"])
        self._row_capacity = int(payload["row_capacity"])
        self._row_of = {}
        self._row_of_slot = np.full(self._capacity, -1, dtype=np.int64)
        self._source_list = []
        self._closed = False
        for row, source in enumerate(payload["sources"]):
            self._row_of[source] = row
            self._row_of_slot[self._index.slot(source)] = row
            self._source_list.append(source)
        return self

    # ------------------------------------------------------------------ #
    # Column protocol (array kernel)
    # ------------------------------------------------------------------ #
    def record_columns(
        self, source: Vertex, writable: bool = False
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Live ``(distance, sigma, delta)`` row views of one record.

        The views alias the store, so with ``writable=True`` the caller's
        in-place repairs *are* the persisted record.
        """
        self._ensure_open()
        row = self._row(source)
        return self._dist[row], self._sigma[row], self._delta[row]

    def put_columns(
        self,
        source: Vertex,
        distance: np.ndarray,
        sigma: np.ndarray,
        delta: np.ndarray,
    ) -> None:
        """Bulk-write one record's columns (shorter-than-capacity allowed).

        Column slots beyond ``len(distance)`` keep their "unreachable"
        defaults, which is exactly what a record computed before later
        vertices were registered should contain.
        """
        self._ensure_open()
        if source not in self._index:
            self.register_vertex(source)
        row = self._row_of.get(source)
        if row is None:
            row = self._new_row(source)
        k = len(distance)
        self._dist[row, :k] = distance
        self._sigma[row, :k] = sigma
        self._delta[row, :k] = delta

    def record_written(self, source: Vertex) -> None:
        """Accounting hook after an in-place repair (no-op in RAM)."""
        self._ensure_open()

    def column_matrices(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Live ``(distance, sigma, delta)`` matrices, rows = sources.

        The arrays alias the store (capacity-padded columns included) and
        are *replaced* on row growth — callers must re-fetch after any
        :meth:`add_source` that may grow the matrices.  This is the bulk
        form of :meth:`record_columns` behind the kernel's cohort repair.
        """
        self._ensure_open()
        return self._dist, self._sigma, self._delta

    def row_of_source_slot(self, slot: int) -> int:
        """Matrix row of the source with vertex slot ``slot``."""
        self._ensure_open()
        row = int(self._row_of_slot[slot])
        if row < 0:
            raise KeyError(self._index.vertex(slot))
        return row

    def peek_distance_block(
        self, source_slots: Sequence[int], vertex_slots: Sequence[int]
    ) -> Optional[np.ndarray]:
        """Distances of ``vertex_slots`` from every slot in ``source_slots``.

        ``source_slots`` are global vertex slots (the kernel's currency);
        they are translated to matrix rows internally.  Returns a
        ``(len(source_slots), len(vertex_slots))`` int16 array — the
        vectorized form of :meth:`endpoint_distances` the kernel's batched
        skip test consumes.
        """
        self._ensure_open()
        src = np.asarray(source_slots, dtype=np.int64)
        rows = self._row_of_slot[src]
        if rows.size and int(rows.min()) < 0:
            missing = int(src[int(np.argmin(rows))])
            raise KeyError(self._index.vertex(missing))
        cols = np.asarray(vertex_slots, dtype=np.int64)
        return self._dist[rows[:, None], cols[None, :]]

    # ------------------------------------------------------------------ #
    # Growth
    # ------------------------------------------------------------------ #
    def _row(self, source: Vertex) -> int:
        try:
            return self._row_of[source]
        except KeyError:
            raise KeyError(source) from None

    def _new_row(self, source: Vertex) -> int:
        row = len(self._source_list)
        if row >= self._row_capacity:
            self._grow_rows()
        self._row_of[source] = row
        self._row_of_slot[self._index.slot(source)] = row
        self._source_list.append(source)
        return row

    def _grow_rows(self) -> None:
        old_rows = self._row_capacity
        new_rows = max(int(old_rows * GROWTH_FACTOR) + 1, old_rows + 1)
        old_buffers = self._column_buffers
        dist, sigma, delta = self._dist, self._sigma, self._delta
        self._allocate(new_rows, self._capacity)
        self._dist[:old_rows] = dist
        self._sigma[:old_rows] = sigma
        self._delta[:old_rows] = delta
        del dist, sigma, delta
        self._row_capacity = new_rows
        self._republish(old_buffers)

    def _grow_columns(self) -> None:
        old = self._capacity
        new_capacity = max(int(old * GROWTH_FACTOR) + 1, len(self._index))
        old_buffers = self._column_buffers
        dist, sigma, delta = self._dist, self._sigma, self._delta
        self._allocate(self._row_capacity, new_capacity)
        self._dist[:, :old] = dist
        self._sigma[:, :old] = sigma
        self._delta[:, :old] = delta
        del dist, sigma, delta
        grown = np.full(new_capacity, -1, dtype=np.int64)
        grown[:old] = self._row_of_slot
        self._row_of_slot = grown
        self._capacity = new_capacity
        self._republish(old_buffers)

    def _republish(self, old_buffers: List) -> None:
        """Retire a superseded allocation generation.

        The old buffers are released (owned segments unlinked) and the
        generation advances — both in the picklable counter that lands in
        future descriptors and, for shm stores, in the live stamp segment
        that invalidates descriptors exported before the growth.
        """
        for buffer in old_buffers:
            buffer.release()
        self._generation += 1
        if self._stamp is not None:
            self._stamp.bump()

    def _ensure_open(self) -> None:
        if self._closed:
            raise StoreClosedError("the array store has been closed")
