"""Abstract interface of a betweenness-data store."""

from __future__ import annotations

import abc
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.algorithms.brandes import SourceData
from repro.types import Vertex


class BDStore(abc.ABC):
    """Storage backend for the per-source betweenness data ``BD[.]``.

    A store holds one :class:`~repro.algorithms.brandes.SourceData` record
    per source vertex.  The incremental framework iterates over sources,
    peeks at the distances of the two updated endpoints (to apply the
    ``dd == 0`` skip without materialising the whole record), loads the full
    record for sources that need work, and saves the repaired record back.
    """

    # ------------------------------------------------------------------ #
    # Record access
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def put(self, data: SourceData) -> None:
        """Insert or overwrite the record of ``data.source``."""

    @abc.abstractmethod
    def get(self, source: Vertex) -> SourceData:
        """Load the full record of ``source`` (raises ``KeyError`` if absent)."""

    @abc.abstractmethod
    def endpoint_distances(
        self, source: Vertex, u: Vertex, v: Vertex
    ) -> Tuple[Optional[int], Optional[int]]:
        """Distances of ``u`` and ``v`` from ``source`` (None = unreachable).

        Implementations should make this much cheaper than :meth:`get`; the
        out-of-core store reads exactly two values from the distance column.
        """

    @abc.abstractmethod
    def add_source(self, source: Vertex) -> None:
        """Create the record of a brand-new vertex (reaching only itself)."""

    def register_vertex(self, vertex: Vertex) -> None:
        """Make the store aware of a vertex *without* making it a source.

        Records of existing sources may reference a newly arrived vertex
        (its distance, path count and dependency) even when another worker
        owns it as a source.  Positional stores (the on-disk columnar layout)
        need to allocate a column slot before such a record can be saved;
        dictionary-backed stores need to do nothing, which is the default.
        """

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[Vertex, SourceData]:
        """Materialise every record as a picklable ``{source: BD[s]}`` dict.

        Used to ship a partition of the store to a worker process (the
        distributed-cache step of the parallel embodiment) and to clone
        framework instances without re-running Brandes.  The returned
        records are independent copies: in-memory stores hand out live
        references from :meth:`get`, and a snapshot that aliased them would
        couple the clone's repairs to the original's.
        """
        result: Dict[Vertex, SourceData] = {}
        for source in self.sources():
            data = self.get(source)
            result[source] = SourceData(
                source=data.source,
                distance=dict(data.distance),
                sigma=dict(data.sigma),
                delta=dict(data.delta),
            )
        return result

    def load_snapshot(self, records: Iterable[SourceData]) -> None:
        """Bulk-insert records previously produced by :meth:`snapshot`."""
        for data in records:
            self.put(data)

    # ------------------------------------------------------------------ #
    # Enumeration
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def sources(self) -> Iterator[Vertex]:
        """Iterate over the sources that have a record."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of stored records."""

    @abc.abstractmethod
    def __contains__(self, source: Vertex) -> bool:
        """Whether ``source`` has a record."""

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release any resources held by the store (files, buffers)."""

    def __enter__(self) -> "BDStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
