"""Abstract interface of a betweenness-data store."""

from __future__ import annotations

import abc
from typing import Iterator, Optional, Tuple

from repro.algorithms.brandes import SourceData
from repro.types import Vertex


class BDStore(abc.ABC):
    """Storage backend for the per-source betweenness data ``BD[.]``.

    A store holds one :class:`~repro.algorithms.brandes.SourceData` record
    per source vertex.  The incremental framework iterates over sources,
    peeks at the distances of the two updated endpoints (to apply the
    ``dd == 0`` skip without materialising the whole record), loads the full
    record for sources that need work, and saves the repaired record back.
    """

    # ------------------------------------------------------------------ #
    # Record access
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def put(self, data: SourceData) -> None:
        """Insert or overwrite the record of ``data.source``."""

    @abc.abstractmethod
    def get(self, source: Vertex) -> SourceData:
        """Load the full record of ``source`` (raises ``KeyError`` if absent)."""

    @abc.abstractmethod
    def endpoint_distances(
        self, source: Vertex, u: Vertex, v: Vertex
    ) -> Tuple[Optional[int], Optional[int]]:
        """Distances of ``u`` and ``v`` from ``source`` (None = unreachable).

        Implementations should make this much cheaper than :meth:`get`; the
        out-of-core store reads exactly two values from the distance column.
        """

    @abc.abstractmethod
    def add_source(self, source: Vertex) -> None:
        """Create the record of a brand-new vertex (reaching only itself)."""

    # ------------------------------------------------------------------ #
    # Enumeration
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def sources(self) -> Iterator[Vertex]:
        """Iterate over the sources that have a record."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of stored records."""

    @abc.abstractmethod
    def __contains__(self, source: Vertex) -> bool:
        """Whether ``source`` has a record."""

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release any resources held by the store (files, buffers)."""

    def __enter__(self) -> "BDStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
